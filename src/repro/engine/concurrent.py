"""Self-timed execution *with* auto-concurrency.

The paper's model forbids auto-concurrency ("an actor is usually
mapped to a single processor which does not support concurrent
execution of code", Sec. 2).  Hardware actors and multi-threaded
software actors *can* overlap their own firings, so this module
provides the complementary engine: an actor may have any number of
ongoing firings, limited only by tokens and space.

Two semantic changes follow from overlapping firings:

* **Input reservation.**  Tokens are still released (their space
  freed) at the *end* of a firing, but they must now be *reserved* at
  the start — otherwise a second overlapping firing would count the
  first one's inputs again.  ``available`` tracks unreserved tokens;
  a channel's occupancy is ``available + consumption * busy(consumer)
  + production * busy(producer)``.
* **Multiset clocks.**  The per-actor state is the multiset of
  remaining execution times; states are compared with sorted tuples.

Everything else — ASAP determinism, the reduced state space, cycle
detection, deadlock/starvation handling, blocking tracking with
minimal deficits — mirrors :mod:`repro.engine.executor`.

The classical equivalence used to validate both engines: adding a
one-token rate-1 self-loop to every actor of a graph makes the
auto-concurrent execution identical to the serialised one (the token
is the "processor"); this is property-tested.
"""

from __future__ import annotations

from fractions import Fraction
from collections.abc import Mapping

from repro.engine.executor import ExecutionResult, _ActorInfo, _MAX_FIRINGS_PER_INSTANT
from repro.engine.schedule import Schedule
from repro.engine.state import ReducedState, SDFState
from repro.engine.statestore import StateStore
from repro.exceptions import CapacityError, EngineError, GraphError
from repro.graph.graph import SDFGraph

_DEFAULT_STALL_THRESHOLD = 50_000


class ConcurrentExecutor:
    """Runs one graph with auto-concurrent firings allowed.

    Accepts the same core options as
    :class:`~repro.engine.executor.Executor` (modes, schedule
    recording, blocking tracking, instant guard); processor
    constraints are intentionally not offered — mapping actors to
    processors is exactly what *removes* auto-concurrency.
    """

    def __init__(
        self,
        graph: SDFGraph,
        capacities: Mapping[str, int] | None = None,
        observe: str | None = None,
        *,
        mode: str = "event",
        record_schedule: bool = False,
        track_blocking: bool = False,
        max_instants: int | None = None,
        stall_threshold: int = _DEFAULT_STALL_THRESHOLD,
    ):
        if graph.num_actors == 0:
            raise GraphError("cannot execute an empty graph")
        if mode not in ("event", "tick"):
            raise EngineError(f"unknown execution mode {mode!r}")
        self.graph = graph
        self.mode = mode
        self.record_schedule = record_schedule
        self.track_blocking = track_blocking
        self.max_instants = max_instants
        self.stall_threshold = stall_threshold

        self.actor_names = graph.actor_names
        self.channel_names = graph.channel_names
        if observe is None:
            observe = self.actor_names[-1]
        if observe not in graph.actors:
            raise GraphError(f"unknown observed actor {observe!r}")
        self.observe = observe
        self._observe_idx = self.actor_names.index(observe)

        channel_index = {name: j for j, name in enumerate(self.channel_names)}
        self._initial_tokens = [graph.channels[name].initial_tokens for name in self.channel_names]
        self._capacities: list[int | None] = [None] * len(self.channel_names)
        if capacities is not None:
            for name, capacity in dict(capacities).items():
                if name not in channel_index:
                    raise CapacityError(f"capacity given for unknown channel {name!r}")
                if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 0:
                    raise CapacityError(f"channel {name!r}: capacity must be a non-negative int")
                if capacity < graph.channels[name].initial_tokens:
                    raise CapacityError(
                        f"channel {name!r}: capacity {capacity} is below its initial tokens"
                    )
                self._capacities[channel_index[name]] = capacity

        self._actors: list[_ActorInfo] = []
        for name in self.actor_names:
            actor = graph.actors[name]
            info = _ActorInfo(name, actor.execution_time)
            for channel in graph.incoming(name):
                info.inputs.append((channel_index[channel.name], channel.consumption))
            for channel in graph.outgoing(name):
                info.outputs.append((channel_index[channel.name], channel.production))
            self._actors.append(info)

        # For the occupancy computation: per channel, its producer and
        # consumer actor indices with the rates.
        self._producers: list[tuple[int, int]] = [(-1, 0)] * len(self.channel_names)
        self._consumers: list[tuple[int, int]] = [(-1, 0)] * len(self.channel_names)
        for idx, info in enumerate(self._actors):
            for channel, rate in info.outputs:
                self._producers[channel] = (idx, rate)
            for channel, rate in info.inputs:
                self._consumers[channel] = (idx, rate)

        self._reset()

    # ------------------------------------------------------------------
    def _reset(self) -> None:
        self.time = 0
        self.busy: list[list[int]] = [[] for _ in self._actors]
        self.available = list(self._initial_tokens)
        self.schedule = Schedule(self.graph) if self.record_schedule else None
        self._space_blocked: set[int] = set()
        self._token_blocked: set[int] = set()
        self._space_deficits: dict[int, int] = {}

    def state_key(self) -> SDFState:
        """Hashable execution state (multiset clocks + unreserved tokens).

        Packed into an :class:`SDFState` whose ``clocks`` component is
        the flattened per-actor sorted multiset with ``-1`` separators
        (unambiguous because remaining times are positive).
        """
        flattened: list[int] = []
        for times in self.busy:
            flattened.extend(sorted(times))
            flattened.append(-1)
        return SDFState(tuple(flattened), tuple(self.available))

    def _occupancy(self, channel: int) -> int:
        producer, production = self._producers[channel]
        consumer, consumption = self._consumers[channel]
        occupancy = self.available[channel]
        if producer >= 0:
            occupancy += production * len(self.busy[producer])
        if consumer >= 0:
            occupancy += consumption * len(self.busy[consumer])
        return occupancy

    def _complete_due_firings(self) -> int:
        observed = 0
        for idx, info in enumerate(self._actors):
            finishing = self.busy[idx].count(-1)
            if not finishing:
                continue
            self.busy[idx] = [t for t in self.busy[idx] if t != -1]
            for _ in range(finishing):
                for channel, rate in info.outputs:
                    self.available[channel] += rate
                # Reserved input tokens simply disappear (their space
                # was held as part of the occupancy until now).
            if idx == self._observe_idx:
                observed += finishing
        return observed

    def _can_start(self, idx: int, info: _ActorInfo) -> bool:
        collect = self.track_blocking
        token_failures: list[int] = []
        for channel, rate in info.inputs:
            if self.available[channel] < rate:
                if not collect:
                    return False
                token_failures.append(channel)
        space_failures: list[tuple[int, int]] = []
        for channel, rate in info.outputs:
            capacity = self._capacities[channel]
            if capacity is not None:
                deficit = self._occupancy(channel) + rate - capacity
                if deficit > 0:
                    if not collect:
                        return False
                    space_failures.append((channel, deficit))
        if token_failures:
            self._token_blocked.update(token_failures)
            return False
        if space_failures:
            for channel, deficit in space_failures:
                self._space_blocked.add(channel)
                known = self._space_deficits.get(channel)
                if known is None or deficit < known:
                    self._space_deficits[channel] = deficit
            return False
        return True

    def _start_enabled_firings(self) -> int:
        observed = 0
        fired = 0
        progress = True
        while progress:
            progress = False
            for idx, info in enumerate(self._actors):
                while self._can_start(idx, info):
                    fired += 1
                    if fired > _MAX_FIRINGS_PER_INSTANT:
                        raise EngineError(
                            "unbounded concurrent firing cascade in one instant"
                            " (zero-rate actor or unbounded channel?)"
                        )
                    for channel, rate in info.inputs:
                        self.available[channel] -= rate
                    if self.schedule is not None:
                        self.schedule.record(info.name, self.time, self.time + info.execution_time)
                    if info.execution_time == 0:
                        for channel, rate in info.outputs:
                            self.available[channel] += rate
                        if idx == self._observe_idx:
                            observed += 1
                        progress = True
                    else:
                        self.busy[idx].append(info.execution_time)
        return observed

    def _process_instant(self) -> int:
        observed = self._complete_due_firings()
        observed += self._start_enabled_firings()
        return observed

    def _advance_time(self) -> bool:
        remaining = [t for times in self.busy for t in times]
        if not remaining:
            return False
        delta = 1 if self.mode == "tick" else min(remaining)
        self.time += delta
        for idx, times in enumerate(self.busy):
            self.busy[idx] = [t - delta if t - delta > 0 else -1 for t in times]
        return True

    def run(self) -> ExecutionResult:
        """Execute to the periodic phase or deadlock (same contract as
        :meth:`repro.engine.executor.Executor.run`)."""
        self._reset()
        store: StateStore[tuple] = StateStore()
        records: list[ReducedState] = []
        full_store: StateStore[SDFState] | None = None
        instants_since_firing = 0
        last_firing_time: int | None = None
        first_firing_time: int | None = None
        instants = 0

        observed = self._process_instant()
        while True:
            if observed:
                if first_firing_time is None:
                    first_firing_time = self.time
                distance = self.time - (last_firing_time if last_firing_time is not None else 0)
                last_firing_time = self.time
                instants_since_firing = 0
                full_store = None
                record = ReducedState(self.state_key(), distance, observed)
                records.append(record)
                cycle_start = store.add((record.state, record.distance, record.firings))
                if cycle_start is not None:
                    cycle = records[cycle_start + 1 :]
                    duration = sum(r.distance for r in cycle)
                    firings = sum(r.firings for r in cycle)
                    return ExecutionResult(
                        observe=self.observe,
                        throughput=Fraction(firings, duration),
                        deadlocked=False,
                        deadlock_time=None,
                        first_firing_time=first_firing_time,
                        cycle_duration=duration,
                        firings_in_cycle=firings,
                        transient_states=cycle_start + 1,
                        cycle_states=len(cycle),
                        states_stored=len(store),
                        reduced_states=tuple(records),
                        schedule=self.schedule,
                        space_blocked=self._blocked(self._space_blocked),
                        token_blocked=self._blocked(self._token_blocked),
                        space_deficits=self._deficits(),
                    )
            else:
                instants_since_firing += 1
                if instants_since_firing >= self.stall_threshold:
                    if full_store is None:
                        full_store = StateStore()
                    if full_store.add(self.state_key()) is not None:
                        return self._stopped(first_firing_time, len(store), None)

            if not self._advance_time():
                return self._stopped(first_firing_time, len(store), self.time)
            instants += 1
            if self.max_instants is not None and instants > self.max_instants:
                raise EngineError(f"execution exceeded {self.max_instants} time instants")
            observed = self._process_instant()

    def _stopped(
        self, first_firing_time: int | None, states_stored: int, deadlock_time: int | None
    ) -> ExecutionResult:
        return ExecutionResult(
            observe=self.observe,
            throughput=Fraction(0),
            deadlocked=True,
            deadlock_time=deadlock_time,
            first_firing_time=first_firing_time,
            cycle_duration=0,
            firings_in_cycle=0,
            transient_states=states_stored,
            cycle_states=0,
            states_stored=states_stored,
            reduced_states=(),
            schedule=self.schedule,
            space_blocked=self._blocked(self._space_blocked),
            token_blocked=self._blocked(self._token_blocked),
            space_deficits=self._deficits(),
        )

    def _blocked(self, indices: set[int]) -> frozenset[str]:
        return frozenset(self.channel_names[index] for index in indices)

    def _deficits(self) -> dict[str, int]:
        return {self.channel_names[index]: deficit for index, deficit in self._space_deficits.items()}
