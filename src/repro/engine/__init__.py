"""Timed self-timed execution of SDF graphs.

This package implements the operational model of Secs. 2 and 6 of the
paper:

* an actor may start firing as soon as (a) its previous firing
  finished, (b) every input channel holds at least the consumption
  rate, and (c) every output channel has free space for the production
  rate — space is *claimed* for the whole duration of the firing;
* input tokens are consumed (their space released) and output tokens
  written at the *end* of the firing;
* all enabled actors fire immediately (self-timed / ASAP execution),
  which makes the execution deterministic and throughput-maximal for
  the given storage distribution (Sec. 5).

Because each channel has exactly one producer, the capacity claim can
be folded into the start condition ``tokens + production <= capacity``
without an explicit claim counter; during the firing nothing but the
unique producer could add tokens, so occupancy never exceeds the value
checked at the start.  The state of Definition 5 — actor clocks plus
channel quantities — therefore fully determines the execution.

Two equivalent drivers are provided: a paper-faithful tick-driven loop
(one iteration per time step, as in the generated code of Fig. 8) and
an event-driven loop that jumps to the next firing completion, which is
asymptotically faster for graphs with large execution times.

On top of the reference :class:`Executor`, :mod:`repro.engine.fastcore`
provides a compiled event-calendar kernel (:class:`FastKernel`) that
computes bit-for-bit identical results for uninstrumented runs; the
``engine="auto"`` knob of :func:`execute` (and of the analysis and
exploration entry points built on it) selects it automatically.

:mod:`repro.engine.backends` packages both kernels (plus a lock-step
batched numpy kernel) behind the :class:`ProbeBackend` registry — the
seam the exploration layers use to evaluate whole waves of capacity
vectors at once.
"""

from repro.engine.backends import (
    EvalResult,
    ProbeBackend,
    backend_for,
    backend_names,
    register_backend,
)
from repro.engine.concurrent import ConcurrentExecutor
from repro.engine.executor import ExecutionResult, Executor, execute
from repro.engine.fastcore import FastKernel, fast_execute, resolve_engine
from repro.engine.schedule import Schedule
from repro.engine.state import SDFState
from repro.engine.statestore import StateStore

__all__ = [
    "ConcurrentExecutor",
    "EvalResult",
    "ExecutionResult",
    "Executor",
    "FastKernel",
    "ProbeBackend",
    "SDFState",
    "Schedule",
    "StateStore",
    "backend_for",
    "backend_names",
    "execute",
    "fast_execute",
    "register_backend",
    "resolve_engine",
]
