"""Process-pool fan-out for independent throughput evaluations.

The design-space searches repeatedly ask "what is the throughput of
this graph under this storage distribution?" for *independent*
distributions — all members of one size slice, all frontier entries of
one size in the dependency-guided sweep.  Each answer is a cold-start
state-space execution that shares nothing with its neighbours, so the
batch parallelises perfectly.

:class:`ParallelProber` wraps a :class:`concurrent.futures.\
ProcessPoolExecutor` around this pattern:

* the (picklable) graph and observed actor are shipped **once** per
  worker through the pool initializer — tasks then carry only the
  capacity vector;
* ``workers=1`` (the default everywhere) never creates a pool and runs
  every task inline, byte-for-byte the serial path;
* the pool is **fault tolerant**: a worker killed mid-batch (OOM
  killer, container limits) or a probe exceeding ``probe_timeout``
  triggers a bounded number of pool restarts with exponential backoff;
  the failed batch is re-run in full — evaluations are pure, so the
  retry is exact.  Only when the restart budget is spent does the
  prober degrade to the inline path, and then it records *why* in
  :attr:`fallback_reason` instead of silently eating the failure.

Results are returned in task order, so callers observe the same
deterministic sequence as a serial scan.  The module-level worker
functions must stay importable at top level for ``spawn``-based
platforms.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from fractions import Fraction

from repro.graph.graph import SDFGraph

#: Raw result of one remote evaluation:
#: ``(throughput, states_stored, space_blocked, space_deficits)``.
RawEvaluation = tuple[Fraction, int, tuple[str, ...], tuple[tuple[str, int], ...]]

_worker_graph: SDFGraph | None = None
_worker_observe: str | None = None


def _init_worker(graph: SDFGraph, observe: str | None) -> None:
    """Pool initializer: pin the graph/observe pair in the worker."""
    global _worker_graph, _worker_observe
    _worker_graph = graph
    _worker_observe = observe


def _run_task(capacity_items: tuple[tuple[str, int], ...]) -> RawEvaluation:
    """Worker entry point: one executor run for one distribution."""
    assert _worker_graph is not None, "worker pool used before initialisation"
    return evaluate_raw(_worker_graph, dict(capacity_items), _worker_observe)


def evaluate_raw(
    graph: SDFGraph, capacities: dict[str, int], observe: str | None
) -> RawEvaluation:
    """One blocking-tracked executor run, reduced to a picklable tuple."""
    from repro.engine.executor import Executor

    result = Executor(graph, capacities, observe, track_blocking=True).run()
    return (
        result.throughput,
        result.states_stored,
        tuple(sorted(result.space_blocked)),
        tuple(sorted(result.space_deficits.items())),
    )


class ParallelProber:
    """Maps distributions to :data:`RawEvaluation` tuples, possibly in parallel.

    Parameters
    ----------
    graph / observe:
        Fixed for the prober's lifetime; shipped to workers once.
    workers:
        Pool size.  ``1`` (or less) never spawns processes.
    probe_timeout:
        Optional per-probe wall-clock limit in seconds.  A probe
        exceeding it is treated as a pool failure (the pool is torn
        down — a hung worker cannot be cancelled — and the batch
        retried on a fresh pool or inline).
    max_restarts:
        How many times a broken or timed-out pool is rebuilt before
        degrading to inline evaluation permanently.
    retry_backoff:
        Base sleep in seconds before a restart; doubles per
        consecutive restart of one batch.
    on_event:
        Optional callback ``(name, **data)`` — typically
        :meth:`repro.runtime.telemetry.TelemetryHub.emit` — notified on
        ``pool_restart`` and ``pool_fallback``.
    """

    def __init__(
        self,
        graph: SDFGraph,
        observe: str | None,
        workers: int = 1,
        *,
        probe_timeout: float | None = None,
        max_restarts: int = 1,
        retry_backoff: float = 0.05,
        on_event: Callable[..., None] | None = None,
    ):
        self.graph = graph
        self.observe = observe
        self.workers = max(1, int(workers))
        self.probe_timeout = probe_timeout
        self.max_restarts = max(0, int(max_restarts))
        self.retry_backoff = retry_backoff
        self._on_event = on_event
        self._pool: ProcessPoolExecutor | None = None
        self._pool_failed = False
        self._closed = False
        #: In-flight speculative probes, keyed by sorted capacity items.
        self._speculative: dict[tuple[tuple[str, int], ...], "Future[RawEvaluation]"] = {}
        self.batches = 0
        self.tasks = 0
        #: Pool rebuilds performed so far (across all batches).
        self.pool_restarts = 0
        #: Why the prober fell back to inline evaluation (``None`` while
        #: the pool is healthy); surfaced in
        #: :class:`~repro.buffers.evalcache.EvalStats`.
        self.fallback_reason: str | None = None

    @property
    def parallel(self) -> bool:
        """Whether tasks may actually fan out to worker processes."""
        return self.workers > 1 and not self._pool_failed and not self._closed

    def _emit(self, name: str, **data) -> None:
        if self._on_event is not None:
            self._on_event(name, **data)

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._pool is None and not self._pool_failed and not self._closed:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(self.graph, self.observe),
                )
            except (OSError, ValueError) as error:
                self._fail(f"pool unavailable: {type(error).__name__}: {error}")
        return self._pool

    def _discard_pool(self) -> None:
        """Tear the current pool down without waiting on its workers."""
        for future in self._speculative.values():
            future.cancel()
        self._speculative.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _fail(self, reason: str) -> None:
        self._pool_failed = True
        self._discard_pool()
        if self.fallback_reason is None:
            self.fallback_reason = reason
            self._emit("pool_fallback", reason=reason)

    def _map_on_pool(
        self, pool: ProcessPoolExecutor, items: Sequence[tuple]
    ) -> list[RawEvaluation]:
        if self.probe_timeout is None:
            chunksize = max(1, len(items) // (self.workers * 4))
            return list(pool.map(_run_task, items, chunksize=chunksize))
        # With a per-probe watchdog, submit individually so each future
        # carries its own deadline; order is preserved by construction.
        futures = [pool.submit(_run_task, item) for item in items]
        try:
            return [future.result(timeout=self.probe_timeout) for future in futures]
        finally:
            for future in futures:
                future.cancel()

    def map(self, capacities: Sequence[dict[str, int]]) -> list[RawEvaluation]:
        """Evaluate every distribution; results in input order.

        Pure evaluations make the retry loop exact: a batch that failed
        on a dying pool is simply re-run in full, and the caller sees
        results indistinguishable from a first-try success.
        """
        items = [tuple(sorted(c.items())) for c in capacities]
        if not items:
            return []
        restarts_this_batch = 0
        while self.workers > 1 and len(items) > 1 and not self._pool_failed:
            pool = self._ensure_pool()
            if pool is None:
                break
            try:
                results = self._map_on_pool(pool, items)
                self.batches += 1
                self.tasks += len(items)
                return results
            except (BrokenProcessPool, TimeoutError) as failure:
                kind = (
                    "probe timeout"
                    if isinstance(failure, TimeoutError)
                    else "worker died"
                )
                self._discard_pool()
                if restarts_this_batch < self.max_restarts:
                    delay = self.retry_backoff * (2**restarts_this_batch)
                    restarts_this_batch += 1
                    self.pool_restarts += 1
                    self._emit(
                        "pool_restart",
                        reason=kind,
                        attempt=restarts_this_batch,
                        backoff_s=delay,
                    )
                    if delay > 0:
                        time.sleep(delay)
                    continue
                self._fail(
                    f"{kind}; gave up after {restarts_this_batch} pool restart(s)"
                )
        return [evaluate_raw(self.graph, dict(item), self.observe) for item in items]

    # -- speculative probing -------------------------------------------------
    def speculate(self, capacities: Sequence[dict[str, int]]) -> int:
        """Submit fire-and-forget probes that soak up idle workers.

        Returns how many were actually submitted (already-in-flight
        duplicates are skipped).  Speculation is best-effort: it never
        creates a pool by itself beyond :meth:`_ensure_pool`'s normal
        path, never restarts a broken one, and its failures are
        invisible to the demand path — :meth:`harvest` / :meth:`claim`
        silently drop futures that errored.
        """
        if not self.parallel:
            return 0
        pool = self._ensure_pool()
        if pool is None:
            return 0
        issued = 0
        for caps in capacities:
            item = tuple(sorted(caps.items()))
            if item in self._speculative:
                continue
            try:
                self._speculative[item] = pool.submit(_run_task, item)
            except RuntimeError:  # pool concurrently shut down; give up quietly
                break
            issued += 1
        return issued

    def harvest(self) -> list[tuple[tuple[tuple[str, int], ...], RawEvaluation]]:
        """Completed speculative results, keyed by capacity items.

        Failed speculative probes are discarded without a restart — a
        lost speculation costs nothing but the wasted worker time.
        """
        ready = []
        for item, future in list(self._speculative.items()):
            if not future.done():
                continue
            del self._speculative[item]
            try:
                ready.append((item, future.result()))
            except Exception:  # noqa: BLE001 - speculative losses never fail the run
                pass
        return ready

    def claim(self, item: tuple[tuple[str, int], ...]) -> RawEvaluation | None:
        """Block on an in-flight speculative probe of *item*, if any.

        The demand path calls this on a cache miss so a distribution is
        never simulated twice; ``None`` (not in flight, or the probe
        failed) sends the caller down its normal execution path.
        """
        future = self._speculative.pop(item, None)
        if future is None:
            return None
        try:
            return future.result(timeout=self.probe_timeout)
        except Exception:  # noqa: BLE001 - fall back to a demand evaluation
            return None

    @property
    def speculative_in_flight(self) -> int:
        return len(self._speculative)

    def close(self) -> None:
        """Shut the worker pool down (idempotent, safe after failures)."""
        if self._closed:
            return
        self._closed = True
        for future in self._speculative.values():
            future.cancel()
        self._speculative.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelProber":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
