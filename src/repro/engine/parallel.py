"""Process-pool fan-out for independent throughput evaluations.

The design-space searches repeatedly ask "what is the throughput of
this graph under this storage distribution?" for *independent*
distributions — all members of one size slice, all frontier entries of
one size in the dependency-guided sweep.  Each answer is a cold-start
state-space execution that shares nothing with its neighbours, so the
batch parallelises perfectly.

:class:`ParallelProber` wraps a :class:`concurrent.futures.\
ProcessPoolExecutor` around this pattern:

* the (picklable) graph and observed actor are shipped **once** per
  worker through the pool initializer — tasks then carry only the
  capacity vector;
* ``workers=1`` (the default everywhere) never creates a pool and runs
  every task inline, byte-for-byte the serial path;
* a pool that cannot be created or that breaks mid-run (forbidden
  ``fork``, resource limits, a killed worker) degrades to the inline
  path instead of failing the exploration.

Results are returned in task order, so callers observe the same
deterministic sequence as a serial scan.  The module-level worker
functions must stay importable at top level for ``spawn``-based
platforms.
"""

from __future__ import annotations

from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from fractions import Fraction

from repro.graph.graph import SDFGraph

#: Raw result of one remote evaluation:
#: ``(throughput, states_stored, space_blocked, space_deficits)``.
RawEvaluation = tuple[Fraction, int, tuple[str, ...], tuple[tuple[str, int], ...]]

_worker_graph: SDFGraph | None = None
_worker_observe: str | None = None


def _init_worker(graph: SDFGraph, observe: str | None) -> None:
    """Pool initializer: pin the graph/observe pair in the worker."""
    global _worker_graph, _worker_observe
    _worker_graph = graph
    _worker_observe = observe


def _run_task(capacity_items: tuple[tuple[str, int], ...]) -> RawEvaluation:
    """Worker entry point: one executor run for one distribution."""
    assert _worker_graph is not None, "worker pool used before initialisation"
    return evaluate_raw(_worker_graph, dict(capacity_items), _worker_observe)


def evaluate_raw(
    graph: SDFGraph, capacities: dict[str, int], observe: str | None
) -> RawEvaluation:
    """One blocking-tracked executor run, reduced to a picklable tuple."""
    from repro.engine.executor import Executor

    result = Executor(graph, capacities, observe, track_blocking=True).run()
    return (
        result.throughput,
        result.states_stored,
        tuple(sorted(result.space_blocked)),
        tuple(sorted(result.space_deficits.items())),
    )


class ParallelProber:
    """Maps distributions to :data:`RawEvaluation` tuples, possibly in parallel.

    Parameters
    ----------
    graph / observe:
        Fixed for the prober's lifetime; shipped to workers once.
    workers:
        Pool size.  ``1`` (or less) never spawns processes.
    """

    def __init__(self, graph: SDFGraph, observe: str | None, workers: int = 1):
        self.graph = graph
        self.observe = observe
        self.workers = max(1, int(workers))
        self._pool: ProcessPoolExecutor | None = None
        self._pool_failed = False
        self.batches = 0
        self.tasks = 0

    @property
    def parallel(self) -> bool:
        """Whether tasks may actually fan out to worker processes."""
        return self.workers > 1 and not self._pool_failed

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._pool is None and not self._pool_failed:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(self.graph, self.observe),
                )
            except (OSError, ValueError):
                self._pool_failed = True
        return self._pool

    def map(self, capacities: Sequence[dict[str, int]]) -> list[RawEvaluation]:
        """Evaluate every distribution; results in input order."""
        items = [tuple(sorted(c.items())) for c in capacities]
        if not items:
            return []
        if self.workers > 1 and len(items) > 1:
            pool = self._ensure_pool()
            if pool is not None:
                chunksize = max(1, len(items) // (self.workers * 4))
                try:
                    results = list(pool.map(_run_task, items, chunksize=chunksize))
                    self.batches += 1
                    self.tasks += len(items)
                    return results
                except BrokenProcessPool:
                    # A worker died (OOM killer, container limits);
                    # finish the batch inline and stay serial from now on.
                    self._pool_failed = True
                    self._pool = None
        return [evaluate_raw(self.graph, dict(item), self.observe) for item in items]

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelProber":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
