"""Pluggable probe backends: one seam for every way to run a probe wave.

Every throughput probe of an exploration asks the same question —
"what is the exact throughput of this capacity vector?" — yet the
answer can be computed by very different machinery: the instrumented
reference :class:`~repro.engine.executor.Executor`, the compiled
per-graph :class:`~repro.engine.fastcore.FastKernel`, or (new here) a
numpy kernel that packs the event-calendar state of *many* simulations
into parallel arrays and steps them lock-step.  :class:`ProbeBackend`
is the protocol all of them implement:

``evaluate_batch(graph, vectors, observe) -> list[EvalResult]``
    Evaluate a wave of capacity vectors; results come back in input
    order.  Duplicates are permitted and evaluated independently, so
    a batch is semantically exactly ``[one probe per vector]``.

``name`` / ``capabilities``
    The registry key and a frozenset of feature tags.  The
    capabilities currently meaningful to the rest of the system:

    * ``"exact"`` — results are bit-identical to the reference
      executor (all built-in backends; a future approximate backend
      would drop this and be rejected by the config validation).
    * ``"blocking"`` — :class:`EvalResult`\\ s carry per-channel
      space-blocking information (only the reference executor
      collects it; ``engine="reference"`` requires it).
    * ``"compiled"`` — probes run on a per-graph compiled kernel
      (``engine="fast"`` requires it; counted as ``fast_runs``).
    * ``"lanes"`` — the backend evaluates a batch as parallel lanes
      of one vectorized simulation rather than a loop, so wide waves
      amortise per-instant cost across the batch.

Backends register themselves in a module-level registry
(:func:`register_backend`); :func:`backend_for` resolves a name and
raises :class:`~repro.exceptions.ConfigError` for unknown ones — the
config layer calls it at construction time so a typo can never
silently degrade a run to a different kernel.  The conformance
harness (``tests/engine/test_backend_conformance.py``) parametrizes
over :func:`backend_names`, so a newly registered backend inherits
the whole bit-identity suite without writing a single test.

The lock-step kernel
--------------------
:class:`BatchNumpyBackend` simulates ``L`` capacity vectors ("lanes")
of the same graph at once.  Per-lane state is one row of a few shared
arrays — ``tokens[L, channels]``, absolute ``completion[L, actors]``
times (``-1`` = idle) and a per-lane clock — and each iteration of the
driver loop advances *every* live lane by one time instant of its own
local clock (lanes are independent simulations; "lock-step" refers to
the iteration structure, not to a shared clock):

1. firings completing at the lane's current instant retire — one
   boolean mask and one integer matmul apply all token updates;
2. enabled firings start, as a fixpoint over zero-execution-time
   cascades: a candidate matrix ``idle & tokens-sufficient &
   space-sufficient`` is computed for all lanes at once, positive-
   duration candidates schedule their completion, zero-duration ones
   fire-and-finish immediately and the fixpoint repeats;
3. lanes whose observed actor completed a firing record a packed
   reduced-state key; a revisited key closes the periodic phase and
   the lane *retires early* — its result is stored and the state
   arrays are compacted to the surviving lanes, so a batch's cost is
   driven by its slowest lane only where lanes are actually live.

The firing rule, recording rule, stall/starvation detection and the
per-instant cascade guard mirror :class:`~repro.engine.fastcore
.FastKernel` exactly (which is itself property-tested bit-identical
to the reference executor); the simultaneous start of all enabled
firings is sound for the same confluence reason — each channel has a
unique producer and a unique consumer, so firing one enabled actor
can never disable another.
"""

from __future__ import annotations

import weakref
from fractions import Fraction
from typing import NamedTuple, Protocol, runtime_checkable
from collections.abc import Mapping, Sequence

import numpy as np

from repro.engine import ccore
from repro.engine import executor as _reference
from repro.engine.executor import (
    _DEFAULT_STALL_THRESHOLD,
    Executor,
    validate_capacities,
)
from repro.engine.fastcore import kernel_for
from repro.exceptions import ConfigError, EngineError, GraphError
from repro.graph.graph import SDFGraph

#: Stand-in capacity for unbounded channels in the integer arrays:
#: large enough that ``tokens + production`` can never reach it before
#: the per-instant cascade guard trips.
_UNBOUNDED = 2**62


class EvalResult(NamedTuple):
    """Outcome of one probe, engine-independent.

    Exactly the payload :class:`~repro.buffers.evalcache
    .EvaluationRecord` needs; ``space_blocked`` / ``space_deficits``
    are ``None`` unless the backend has the ``"blocking"`` capability.
    """

    throughput: Fraction
    states_stored: int
    deadlocked: bool
    space_blocked: frozenset[str] | None = None
    space_deficits: Mapping[str, int] | None = None

    @property
    def has_blocking(self) -> bool:
        return self.space_blocked is not None


@runtime_checkable
class ProbeBackend(Protocol):
    """What the evaluation layer requires of a probe backend."""

    name: str
    capabilities: frozenset[str]

    def evaluate_batch(
        self,
        graph: SDFGraph,
        vectors: Sequence[Mapping[str, int]],
        observe: str | None = None,
    ) -> list[EvalResult]:
        """Exact results for *vectors*, in input order."""
        ...


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BACKENDS: dict[str, ProbeBackend] = {}


def register_backend(backend: ProbeBackend, *, replace: bool = False) -> ProbeBackend:
    """Register *backend* under ``backend.name``; returns it.

    Re-registering a taken name is an error unless ``replace=True`` —
    shadowing a built-in silently is exactly the ambiguity the
    registry exists to prevent.
    """
    name = backend.name
    if not replace and name in _BACKENDS:
        raise ConfigError(f"probe backend {name!r} is already registered")
    _BACKENDS[name] = backend
    return backend


def backend_names() -> tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_BACKENDS)


def backend_for(name: str) -> ProbeBackend:
    """The registered backend called *name*.

    Raises :class:`~repro.exceptions.ConfigError` on unknown names so
    the failure surfaces at config construction, never mid-run.
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigError(
            f"unknown probe backend {name!r}; registered backends:"
            f" {', '.join(sorted(_BACKENDS))}"
        ) from None


def backend_availability(backend: ProbeBackend) -> str | None:
    """``None`` when *backend* can run on this host, else the reason.

    Backends advertise host constraints through an optional
    ``availability()`` method (the ``cc`` backend probes for a working
    C compiler); backends without one are always available.
    """
    probe = getattr(backend, "availability", None)
    if probe is None:
        return None
    return probe()


#: The capability tags the rest of the system interprets (see the
#: module docstring); :func:`capability_flags` renders exactly these.
KNOWN_CAPABILITIES = ("exact", "blocking", "compiled", "lanes")


def capability_flags(backend: ProbeBackend) -> dict[str, bool]:
    """``{capability: bool}`` over :data:`KNOWN_CAPABILITIES`.

    The one place the capability set is flattened to flags, so the CLI
    (``repro backends --json``) and the service (``GET /backends``)
    can never drift apart on which tags exist or how they are spelled.
    """
    return {tag: tag in backend.capabilities for tag in KNOWN_CAPABILITIES}


def backend_descriptions() -> list[dict]:
    """One JSON-friendly row per registered backend, registration order.

    The shared rendering behind ``GET /backends`` and the ``repro
    backends`` CLI verb: name, sorted capabilities (plus the same set
    as :func:`capability_flags` booleans), availability on *this* host
    and — when unavailable — the human-readable reason.
    """
    rows = []
    for name in backend_names():
        backend = _BACKENDS[name]
        reason = backend_availability(backend)
        rows.append(
            {
                "name": name,
                "capabilities": sorted(backend.capabilities),
                "flags": capability_flags(backend),
                "available": reason is None,
                "reason": reason,
            }
        )
    return rows


#: Preference order of ``backend="auto"``: the compiled C kernel where
#: a compiler exists, the numpy lane kernel otherwise, and the plain
#: compiled-Python kernel as the floor.  All exact — auto only ever
#: trades speed.
_AUTO_PREFERENCE = ("cc", "batch-numpy", "fastcore")


def resolve_backend(name: str | None, engine: str = "auto") -> str:
    """Resolve a config ``backend`` selector to a registered name.

    ``None`` keeps the legacy engine pairing (``"reference"`` for the
    reference engine, ``"fastcore"`` otherwise).  ``"auto"`` picks the
    best *available* backend on this host in :data:`_AUTO_PREFERENCE`
    order — except under ``engine="reference"``, which requires the
    blocking-instrumented reference backend.  Explicit names resolve to
    themselves after an availability check, so asking for a backend the
    host cannot run fails loudly instead of degrading silently.
    """
    if name is None:
        return "reference" if engine == "reference" else "fastcore"
    if name == "auto":
        if engine == "reference":
            return "reference"
        for candidate in _AUTO_PREFERENCE:
            if candidate not in _BACKENDS:
                continue
            if backend_availability(_BACKENDS[candidate]) is None:
                return candidate
        return "reference"
    reason = backend_availability(backend_for(name))
    if reason is not None:
        raise ConfigError(f"probe backend {name!r} is unavailable: {reason}")
    return name


# ---------------------------------------------------------------------------
# Loop backends over the existing engines
# ---------------------------------------------------------------------------


class ReferenceBackend:
    """Loop over the instrumented reference executor.

    The only backend collecting per-channel space-blocking data, which
    the dependency-guided strategy consumes; it is therefore also the
    oracle every other backend is conformance-tested against.
    """

    name = "reference"
    capabilities = frozenset({"exact", "blocking"})

    def evaluate_batch(
        self,
        graph: SDFGraph,
        vectors: Sequence[Mapping[str, int]],
        observe: str | None = None,
    ) -> list[EvalResult]:
        results = []
        for capacities in vectors:
            run = Executor(graph, capacities, observe, track_blocking=True).run()
            results.append(
                EvalResult(
                    run.throughput,
                    run.states_stored,
                    run.deadlocked,
                    run.space_blocked,
                    dict(run.space_deficits),
                )
            )
        return results


class FastcoreBackend:
    """Loop over the compiled per-graph event-calendar kernel."""

    name = "fastcore"
    capabilities = frozenset({"exact", "compiled"})

    def evaluate_batch(
        self,
        graph: SDFGraph,
        vectors: Sequence[Mapping[str, int]],
        observe: str | None = None,
    ) -> list[EvalResult]:
        kernel = kernel_for(graph, observe)
        results = []
        for capacities in vectors:
            run = kernel.run(capacities)
            results.append(EvalResult(run.throughput, run.states_stored, run.deadlocked))
        return results


# ---------------------------------------------------------------------------
# The numpy lock-step backend
# ---------------------------------------------------------------------------


class _LaneKernel:
    """Per-graph compiled arrays for the lock-step simulation."""

    def __init__(self, graph: SDFGraph, observe: str | None):
        if graph.num_actors == 0:
            raise GraphError("cannot execute an empty graph")
        if observe is None:
            observe = graph.actor_names[-1]
        if observe not in graph.actors:
            raise GraphError(f"unknown observed actor {observe!r}")
        self.graph = graph
        self.observe = observe
        names = graph.actor_names
        channels = graph.channel_names
        self.channel_index = {name: j for j, name in enumerate(channels)}
        n, m = len(names), len(channels)
        self.num_actors = n
        self.num_channels = m
        self.observe_idx = names.index(observe)
        self.initial_tokens = np.array(
            [graph.channels[name].initial_tokens for name in channels], dtype=np.int64
        )
        self.exec_times = np.array(
            [graph.actors[name].execution_time for name in names], dtype=np.int64
        )
        self.zero_time = self.exec_times == 0
        # Every channel has exactly one producer and one consumer, so
        # all rates are per-channel scalars and the enabling checks
        # collapse to (lanes, channels) elementwise work: a channel's
        # token shortfall can only block its unique consumer, a space
        # shortfall only its unique producer.
        actor_index = {name: i for i, name in enumerate(names)}
        self.cons_rate = np.array(
            [graph.channels[name].consumption for name in channels], dtype=np.int64
        )
        self.prod_rate = np.array(
            [graph.channels[name].production for name in channels], dtype=np.int64
        )
        self.producer = np.array(
            [actor_index[graph.channels[name].source] for name in channels],
            dtype=np.intp,
        )
        self.consumer = np.array(
            [actor_index[graph.channels[name].destination] for name in channels],
            dtype=np.intp,
        )
        # Scatter matrix folding per-channel block flags onto actors in
        # one small matmul: blocked = [tok_block | space_block] @ fold.
        # float32 is exact here (counts are bounded by 2 * channels).
        fold = np.zeros((2 * m, n), dtype=np.float32)
        for c in range(m):
            fold[c, self.consumer[c]] = 1.0
            fold[m + c, self.producer[c]] = 1.0
        self.fold = fold

    def run_lanes(
        self,
        capacity_rows: list[list[int | None]],
        *,
        stall_threshold: int = _DEFAULT_STALL_THRESHOLD,
    ) -> list[EvalResult]:
        """Simulate every capacity row to its periodic phase or deadlock."""
        lanes = len(capacity_rows)
        n, m = self.num_actors, self.num_channels
        observe_idx = self.observe_idx
        max_firings = _reference._MAX_FIRINGS_PER_INSTANT
        caps = np.array(
            [[_UNBOUNDED if cap is None else cap for cap in row] for row in capacity_rows],
            dtype=np.int64,
        )

        tokens = np.broadcast_to(self.initial_tokens, (lanes, m)).copy()
        completion = np.full((lanes, n), -1, dtype=np.int64)
        time = np.zeros(lanes, dtype=np.int64)
        # Per-lane Python bookkeeping: the reduced-state memo driving
        # cycle detection is inherently a hash structure.
        seen: list[dict[bytes, int]] = [dict() for _ in range(lanes)]
        distances: list[list[int]] = [[] for _ in range(lanes)]
        firing_counts: list[list[int]] = [[] for _ in range(lanes)]
        last_firing = np.zeros(lanes, dtype=np.int64)
        idle_streak = np.zeros(lanes, dtype=np.int64)
        full_seen: list[set[bytes] | None] = [None] * lanes
        origin = list(range(lanes))  # lane row -> input index
        results: list[EvalResult | None] = [None] * lanes

        cons_rate, prod_rate = self.cons_rate, self.prod_rate
        producer, consumer, fold = self.producer, self.consumer, self.fold
        exec_times, zero_time = self.exec_times, self.zero_time
        observe_zero = bool(zero_time[observe_idx])
        has_zero = bool(zero_time.any())
        flatnonzero = np.flatnonzero
        # Prefix buffers: rows past the live count are dead storage, so
        # compaction never has to copy them.
        scratch = np.empty((lanes, n + m + 2), dtype=np.int64)
        block_flags = np.empty((lanes, 2 * m), dtype=np.float32)
        instants = 0

        while origin:
            live = len(origin)
            # -- 1. complete due firings ------------------------------
            # Tokens move at the END of a firing: completing the
            # producer of a channel deposits, completing its consumer
            # withdraws — one fancy-indexed gather per side.
            due = completion == time[:, None]
            observed = due[:, observe_idx]
            tokens += due[:, producer] * prod_rate - due[:, consumer] * cons_rate
            completion[due] = -1

            # -- 2. start enabled firings -----------------------------
            if has_zero:
                observed = observed.astype(np.int64)
                fired = np.zeros(live, dtype=np.int64)
                while True:  # fixpoint over zero-time cascades
                    np.less(tokens, cons_rate, out=block_flags[:live, :m], casting="unsafe")
                    np.greater(
                        tokens + prod_rate, caps, out=block_flags[:live, m:], casting="unsafe"
                    )
                    blocked = block_flags[:live] @ fold  # (lanes, actors)
                    candidates = (completion < 0) & (blocked == 0.0)
                    if not candidates.any():
                        break
                    fired += candidates.sum(axis=1)
                    if (fired > max_firings).any():
                        raise EngineError(
                            f"more than {max_firings} firings in one time instant;"
                            " a zero-execution-time cascade diverges (unbounded channel?)"
                        )
                    starting = candidates & ~zero_time[None, :]
                    if starting.any():
                        until = time[:, None] + exec_times[None, :]
                        completion = np.where(starting, until, completion)
                    firing_now = candidates & zero_time[None, :]
                    if firing_now.any():
                        tokens += (
                            firing_now[:, producer] * prod_rate
                            - firing_now[:, consumer] * cons_rate
                        )
                        if observe_zero:
                            observed += firing_now[:, observe_idx]
                recorded = observed > 0
            else:
                # No zero-time actors: one round reaches the fixpoint
                # (starting a positive-duration firing moves no tokens,
                # so it cannot enable or disable anything else).
                np.less(tokens, cons_rate, out=block_flags[:live, :m], casting="unsafe")
                np.greater(
                    tokens + prod_rate, caps, out=block_flags[:live, m:], casting="unsafe"
                )
                blocked = block_flags[:live] @ fold
                candidates = (completion < 0) & (blocked == 0.0)
                if max_firings < n and int(candidates.sum()) > max_firings:
                    # Only reachable when a test patches the guard below
                    # the actor count; an instant fires each actor once.
                    raise EngineError(
                        f"more than {max_firings} firings in one time instant;"
                        " a zero-execution-time cascade diverges (unbounded channel?)"
                    )
                completion = np.where(
                    candidates, time[:, None] + exec_times[None, :], completion
                )
                recorded = observed

            # -- 3. record / stall bookkeeping ------------------------
            recorded_any = bool(recorded.any())
            # idle_streak <= instants, so the stall machinery is free
            # until a lane has survived `stall_threshold` instants.
            check_stall = instants >= stall_threshold - 1
            instants += 1
            if recorded_any or check_stall:
                busy = completion >= 0
                np.subtract(completion, time[:, None], out=scratch[:live, :n])
                np.multiply(scratch[:live, :n], busy, out=scratch[:live, :n])
                scratch[:live, n : n + m] = tokens
                scratch[:live, n + m] = time
                scratch[:live, n + m] -= last_firing
                scratch[:live, n + m + 1] = observed

            finished: list[int] = []
            if not recorded_any:
                idle_streak += 1
            else:
                np.add(idle_streak, 1, out=idle_streak, where=~recorded)
                for row in flatnonzero(recorded):
                    lane = origin[row]
                    distance = int(time[row] - last_firing[row])
                    count = int(observed[row])
                    last_firing[row] = time[row]
                    idle_streak[row] = 0
                    full_seen[row] = None
                    key = scratch[row].tobytes()
                    memo = seen[lane]
                    cycle_start = memo.get(key)
                    distances[lane].append(distance)
                    firing_counts[lane].append(count)
                    if cycle_start is not None:
                        duration = sum(distances[lane][cycle_start + 1 :])
                        firings = sum(firing_counts[lane][cycle_start + 1 :])
                        results[lane] = EvalResult(
                            Fraction(firings, duration), len(memo), False
                        )
                        finished.append(row)
                    else:
                        memo[key] = len(memo)
            if check_stall:
                for row in flatnonzero(idle_streak >= stall_threshold):
                    lane = origin[row]
                    store = full_seen[row]
                    if store is None:
                        store = full_seen[row] = set()
                    full_key = scratch[row, : n + m].tobytes()
                    if full_key in store:
                        # Loops without the observed actor ever firing
                        # again: starvation (throughput zero).
                        results[lane] = EvalResult(Fraction(0), len(seen[lane]), True)
                        finished.append(row)
                    else:
                        store.add(full_key)

            # -- 4. deadlocks + advance to each lane's next event -----
            next_event = np.where(completion >= 0, completion, _UNBOUNDED).min(axis=1)
            dead = next_event == _UNBOUNDED
            if dead.any():
                for row in flatnonzero(dead):
                    lane = origin[row]
                    if results[lane] is None:
                        results[lane] = EvalResult(Fraction(0), len(seen[lane]), True)
                        finished.append(row)

            if finished:
                keep = np.ones(live, dtype=bool)
                keep[finished] = False
                origin = [origin[row] for row in flatnonzero(keep)]
                if not origin:
                    break
                tokens = tokens[keep]
                completion = completion[keep]
                caps = caps[keep]
                last_firing = last_firing[keep]
                idle_streak = idle_streak[keep]
                full_seen = [full_seen[row] for row in flatnonzero(keep)]
                time = next_event[keep]
            else:
                time = next_event

        return results  # type: ignore[return-value]  # every lane retired above


class BatchNumpyBackend:
    """Vectorized lock-step simulation of whole probe waves."""

    name = "batch-numpy"
    capabilities = frozenset({"exact", "compiled", "lanes"})

    def __init__(self) -> None:
        # Weak per-graph kernel cache, mirroring fastcore._KERNELS:
        # {graph: (shape, {observe: kernel})}.
        self._kernels: "weakref.WeakKeyDictionary[SDFGraph, tuple[tuple[int, int], dict[str, _LaneKernel]]]" = (
            weakref.WeakKeyDictionary()
        )

    def _kernel(self, graph: SDFGraph, observe: str | None) -> _LaneKernel:
        shape = (graph.num_actors, graph.num_channels)
        cached = self._kernels.get(graph)
        if cached is None or cached[0] != shape:
            cached = (shape, {})
            self._kernels[graph] = cached
        kernels = cached[1]
        key = observe if observe is not None else (
            graph.actor_names[-1] if graph.num_actors else ""
        )
        kernel = kernels.get(key)
        if kernel is None:
            kernel = _LaneKernel(graph, observe)
            kernels[key] = kernel
        return kernel

    def evaluate_batch(
        self,
        graph: SDFGraph,
        vectors: Sequence[Mapping[str, int]],
        observe: str | None = None,
    ) -> list[EvalResult]:
        if not vectors:
            return []
        kernel = self._kernel(graph, observe)
        rows = [
            validate_capacities(graph, capacities, kernel.channel_index)
            for capacities in vectors
        ]
        return kernel.run_lanes(rows)


# ---------------------------------------------------------------------------
# The compiled C backend ("buffy-native")
# ---------------------------------------------------------------------------


class CcBackend:
    """Per-graph compiled C kernels (the paper's ``buffy`` idea, live).

    Each ``(graph, observe)`` pair is specialised into a self-contained
    C translation unit (:func:`repro.codegen.cgen.generate_kernel_c`),
    compiled once with the platform ``cc`` and cached on disk
    content-addressed by fingerprint + layout + codegen version —
    :mod:`repro.engine.ccore` owns that compile plane.  The kernel's
    batched ``probe_many_exact`` entry point evaluates a whole wave of
    capacity vectors per call and returns integer cycle measurements;
    throughput is reconstructed host-side as the exact
    ``Fraction(firings, duration)``, so results stay bit-identical to
    the reference executor.

    On hosts without a working C compiler the backend reports itself
    unavailable (:meth:`availability`): ``backend="auto"`` skips it and
    requesting it explicitly raises
    :class:`~repro.exceptions.ConfigError`.
    """

    name = "cc"
    capabilities = frozenset({"exact", "compiled", "lanes"})

    def availability(self) -> str | None:
        """``None`` when a working C compiler exists, else the reason."""
        return ccore.availability()

    def evaluate_batch(
        self,
        graph: SDFGraph,
        vectors: Sequence[Mapping[str, int]],
        observe: str | None = None,
    ) -> list[EvalResult]:
        if not vectors:
            return []
        kernel = ccore.kernel_for(graph, observe)
        rows = [
            validate_capacities(graph, capacities, kernel.channel_index)
            for capacities in vectors
        ]
        # Read the guards through the reference module at call time so
        # tests patching them cover this engine too (as fastcore does).
        raw = kernel.run_lanes(
            rows,
            stall_threshold=_DEFAULT_STALL_THRESHOLD,
            max_firings=_reference._MAX_FIRINGS_PER_INSTANT,
        )
        return [
            EvalResult(
                Fraction(0) if deadlocked else Fraction(firings, duration),
                states,
                deadlocked,
            )
            for firings, duration, states, deadlocked in raw
        ]


register_backend(ReferenceBackend())
register_backend(FastcoreBackend())
register_backend(BatchNumpyBackend())
register_backend(CcBackend())
