"""Fast simulation kernel: event calendar, wakeup lists, packed keys.

The reference :class:`~repro.engine.executor.Executor` is written for
clarity: every time instant rescans all actors for enabled firings (a
fixpoint over zero-execution-time cascades), advances time by a
``min()`` over all actor clocks, and records reduced states as
:class:`~repro.engine.state.SDFState` /
:class:`~repro.engine.state.ReducedState` dataclasses.  Each of those
choices is O(actors) *per instant* and dominates the cost of the
thousands of executions a design-space exploration performs.

:class:`FastKernel` is a per-graph *compiled* replacement that produces
bit-for-bit identical :class:`~repro.engine.executor.ExecutionResult`
values (property-tested differentially in
``tests/properties/test_prop_fastcore.py``) with three structural
accelerations:

* **event calendar** — running firings live in a heap of
  ``(completion time, actor)`` pairs, so advancing time is one heap pop
  (O(log actors)) instead of two scans over all clocks;
* **wakeup lists** — when a channel's token count changes, only the
  channel's unique consumer (tokens became available) or producer
  (space was freed) can newly become enabled, so only those actors are
  re-checked.  An actor that stays blocked with unchanged surroundings
  is never looked at again.  This is sound because SDF enabling is
  monotone in exactly those two quantities and each channel has a
  unique producer and consumer;
* **packed state keys** — reduced states are hashed as the ``bytes``
  of an ``array('q', clocks + tokens + (distance, firings))`` instead
  of constructing nested dataclasses in the hot loop; the dataclass
  form is reconstructed once, at the end, for the result's
  ``reduced_states`` field.

Why the firing order inside one instant does not matter: each channel
has a unique producer and a unique consumer, so firing one enabled
actor can never *disable* another enabled actor (it cannot steal its
input tokens nor fill its output space).  The set of firings performed
at an instant — and hence the resulting state — is therefore confluent,
and the kernel's worklist order yields exactly the state the reference
executor's deterministic index-order scan reaches.

The kernel deliberately implements only the *uninstrumented* semantics:
no schedule recording, no blocking/occupancy tracking, no processor
arbitration, no tick mode.  :func:`resolve_engine` encodes that
contract — ``engine="auto"`` selects the kernel exactly when none of
those features is requested and the reference executor (the oracle)
otherwise.
"""

from __future__ import annotations

import weakref
from array import array
from fractions import Fraction
from heapq import heappop, heappush
from collections.abc import Mapping

from repro.engine import executor as _reference
from repro.engine.executor import (
    _DEFAULT_STALL_THRESHOLD,
    ExecutionResult,
    validate_capacities,
)
from repro.engine.state import ReducedState, SDFState
from repro.exceptions import EngineError, GraphError
from repro.graph.graph import SDFGraph

#: Valid values of the ``engine`` knob.
ENGINES = ("auto", "fast", "reference")

#: Executor options the fast kernel supports natively; everything else
#: (when truthy) forces the reference executor.
_FAST_OPTIONS = frozenset({"max_instants", "stall_threshold"})


def unsupported_options(options: Mapping[str, object]) -> list[str]:
    """Executor options in *options* that require the reference engine."""
    blockers = []
    for key, value in options.items():
        if key in _FAST_OPTIONS:
            continue
        if key == "mode":
            if value != "event":
                blockers.append(f"mode={value!r}")
        elif value:  # record_schedule / track_* flags, processors mapping
            blockers.append(key)
    return sorted(blockers)


def resolve_engine(engine: str, options: Mapping[str, object] | None = None) -> str:
    """Resolve the ``engine`` knob to ``"fast"`` or ``"reference"``.

    *options* are the keyword arguments that would be passed to
    :class:`~repro.engine.executor.Executor`.  ``"auto"`` picks the
    fast kernel whenever they request no instrumentation; ``"fast"``
    raises :class:`~repro.exceptions.EngineError` if they do.
    """
    if engine not in ENGINES:
        raise EngineError(f"unknown engine {engine!r}; pick one of {ENGINES}")
    if engine == "reference":
        return "reference"
    blockers = unsupported_options(options or {})
    if blockers:
        if engine == "fast":
            raise EngineError(
                "fast engine does not support " + ", ".join(blockers)
                + "; use engine='reference' (or 'auto' to fall back automatically)"
            )
        return "reference"
    return "fast"


class FastKernel:
    """Per-graph compiled event-calendar executor.

    Compiling (index layout, adjacency, rates) happens once in the
    constructor; :meth:`run` can then be called many times with
    different storage distributions — the access pattern of every
    design-space exploration.  The kernel is stateless between runs.

    Parameters
    ----------
    graph:
        The SDF graph to compile.
    observe:
        Actor whose throughput is measured; defaults to the last actor
        of the graph, exactly as in the reference executor.
    """

    def __init__(self, graph: SDFGraph, observe: str | None = None):
        if graph.num_actors == 0:
            raise GraphError("cannot execute an empty graph")
        self.graph = graph
        self.actor_names = graph.actor_names
        self.channel_names = graph.channel_names
        if observe is None:
            observe = self.actor_names[-1]
        if observe not in graph.actors:
            raise GraphError(f"unknown observed actor {observe!r}")
        self.observe = observe

        actor_index = {name: i for i, name in enumerate(self.actor_names)}
        self._observe_idx = actor_index[observe]
        self._channel_index = {name: j for j, name in enumerate(self.channel_names)}
        self._initial_tokens = [
            graph.channels[name].initial_tokens for name in self.channel_names
        ]
        self._num_actors = len(self.actor_names)
        self._num_channels = len(self.channel_names)
        self._exec_times = [graph.actors[name].execution_time for name in self.actor_names]
        self._inputs = tuple(
            tuple(
                (self._channel_index[channel.name], channel.consumption)
                for channel in graph.incoming(name)
            )
            for name in self.actor_names
        )
        self._outputs = tuple(
            tuple(
                (self._channel_index[channel.name], channel.production)
                for channel in graph.outgoing(name)
            )
            for name in self.actor_names
        )
        # The wakeup lists: each channel's unique endpoints.
        self._producer = [
            actor_index[graph.channels[name].source] for name in self.channel_names
        ]
        self._consumer = [
            actor_index[graph.channels[name].destination] for name in self.channel_names
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        capacities: Mapping[str, int] | None = None,
        *,
        max_instants: int | None = None,
        stall_threshold: int = _DEFAULT_STALL_THRESHOLD,
    ) -> ExecutionResult:
        """Execute under *capacities* until the periodic phase or deadlock.

        Semantics, bookkeeping and the returned result are identical to
        ``Executor(graph, capacities, observe).run()``; only the cost
        per time instant differs.  The body is one deliberately flat
        loop: every name used per firing is a local.
        """
        caps = validate_capacities(self.graph, capacities, self._channel_index)
        n = self._num_actors
        m = self._num_channels
        observe_idx = self._observe_idx
        exec_times = self._exec_times
        producer = self._producer
        consumer = self._consumer
        # Read through the reference module so tests patching the guard
        # cover both engines.
        max_firings = _reference._MAX_FIRINGS_PER_INSTANT

        # Per-run specialisation: fold the capacity vector into the
        # per-actor structures once, so the hot loop does no capacity
        # lookups and carries its wakeup targets inline.
        #   in_updates[i]:  (channel, rate, producer-to-wake or -1)
        #   out_updates[i]: (channel, rate, consumer-to-wake)
        #   in_checks[i]:   (channel, needed tokens)
        #   out_checks[i]:  (channel, max tokens before the firing) —
        #                   bounded channels only; `capacity - rate`
        #                   may be negative, which (correctly) blocks
        #                   the producer forever.
        in_updates = [
            tuple(
                (c, r, producer[c] if caps[c] is not None else -1)
                for c, r in self._inputs[i]
            )
            for i in range(n)
        ]
        out_updates = [
            tuple((c, r, consumer[c]) for c, r in self._outputs[i]) for i in range(n)
        ]
        in_checks = self._inputs
        out_checks = [
            tuple((c, caps[c] - r) for c, r in self._outputs[i] if caps[c] is not None)
            for i in range(n)
        ]

        tokens = list(self._initial_tokens)
        completion = [-1] * n  # absolute completion time; -1 = idle
        # Events are packed as `completion_time * n + actor`, so the
        # calendar is a heap of plain ints (cheaper than tuples).
        calendar: list[int] = []
        queued = bytearray(b"\x01") * n
        worklist = list(range(n))
        completions: list[int] = []

        record_keys: list[bytes] = []
        distances: list[int] = []
        firing_counts: list[int] = []
        seen: dict[bytes, int] = {}
        full_seen: set[bytes] | None = None
        scratch = [0] * (n + m + 2)

        time = 0
        instants = 0
        instants_since_firing = 0
        last_firing_time = 0
        first_firing_time: int | None = None

        while True:
            # -- complete due firings --------------------------------
            observed = 0
            for i in completions:
                completion[i] = -1
                for c, r, j in in_updates[i]:
                    tokens[c] -= r
                    if j >= 0 and not queued[j]:
                        queued[j] = 1
                        worklist.append(j)
                for c, r, j in out_updates[i]:
                    tokens[c] += r
                    if not queued[j]:
                        queued[j] = 1
                        worklist.append(j)
                if not queued[i]:
                    queued[i] = 1
                    worklist.append(i)
                if i == observe_idx:
                    observed += 1

            # -- start enabled firings (worklist fixpoint) ------------
            fired = 0
            while worklist:
                i = worklist.pop()
                queued[i] = 0
                if completion[i] >= 0:
                    continue  # busy; re-checked when its event fires
                enabled = True
                for c, r in in_checks[i]:
                    if tokens[c] < r:
                        enabled = False
                        break
                if enabled:
                    for c, limit in out_checks[i]:
                        if tokens[c] > limit:
                            enabled = False
                            break
                if not enabled:
                    continue
                fired += 1
                if fired > max_firings:
                    raise EngineError(
                        f"more than {max_firings} firings in one time instant;"
                        " a zero-execution-time cascade diverges (unbounded channel?)"
                    )
                duration = exec_times[i]
                if duration == 0:
                    for c, r, j in in_updates[i]:
                        tokens[c] -= r
                        if j >= 0 and not queued[j]:
                            queued[j] = 1
                            worklist.append(j)
                    for c, r, j in out_updates[i]:
                        tokens[c] += r
                        if not queued[j]:
                            queued[j] = 1
                            worklist.append(j)
                    if not queued[i]:
                        queued[i] = 1
                        worklist.append(i)
                    if i == observe_idx:
                        observed += 1
                else:
                    until = time + duration
                    completion[i] = until
                    heappush(calendar, until * n + i)

            # -- record / stall bookkeeping ---------------------------
            if observed:
                if first_firing_time is None:
                    first_firing_time = time
                distance = time - last_firing_time
                last_firing_time = time
                instants_since_firing = 0
                full_seen = None
                for i in range(n):
                    c = completion[i]
                    scratch[i] = c - time if c >= 0 else 0
                scratch[n : n + m] = tokens
                scratch[n + m] = distance
                scratch[n + m + 1] = observed
                key = array("q", scratch).tobytes()
                record_keys.append(key)
                distances.append(distance)
                firing_counts.append(observed)
                cycle_start = seen.get(key)
                if cycle_start is not None:
                    return self._periodic_result(
                        record_keys,
                        distances,
                        firing_counts,
                        cycle_start,
                        first_firing_time,
                        len(seen),
                    )
                seen[key] = len(seen)
            else:
                instants_since_firing += 1
                if instants_since_firing >= stall_threshold:
                    if full_seen is None:
                        full_seen = set()
                    for i in range(n):
                        c = completion[i]
                        scratch[i] = c - time if c >= 0 else 0
                    scratch[n : n + m] = tokens
                    full_key = array("q", scratch[: n + m]).tobytes()
                    if full_key in full_seen:
                        # The graph loops without ever firing the
                        # observed actor again: starvation.
                        return self._zero_result(None, first_firing_time, len(seen))
                    full_seen.add(full_key)

            # -- advance to the next completion event -----------------
            if not calendar:
                return self._zero_result(time, first_firing_time, len(seen))
            instants += 1
            if max_instants is not None and instants > max_instants:
                raise EngineError(f"execution exceeded {max_instants} time instants")
            time = calendar[0] // n
            bound = (time + 1) * n  # all events of this instant are below it
            completions = []
            while calendar and calendar[0] < bound:
                completions.append(heappop(calendar) - time * n)

    # ------------------------------------------------------------------
    # Result assembly (cold path)
    # ------------------------------------------------------------------
    def _unpack_record(self, key: bytes) -> ReducedState:
        values = array("q")
        values.frombytes(key)
        n, m = self._num_actors, self._num_channels
        state = SDFState(tuple(values[:n]), tuple(values[n : n + m]))
        return ReducedState(state, values[n + m], values[n + m + 1])

    def _periodic_result(
        self,
        record_keys: list[bytes],
        distances: list[int],
        firing_counts: list[int],
        cycle_start: int,
        first_firing_time: int | None,
        states_stored: int,
    ) -> ExecutionResult:
        duration = sum(distances[cycle_start + 1 :])
        firings = sum(firing_counts[cycle_start + 1 :])
        return ExecutionResult(
            observe=self.observe,
            throughput=Fraction(firings, duration),
            deadlocked=False,
            deadlock_time=None,
            first_firing_time=first_firing_time,
            cycle_duration=duration,
            firings_in_cycle=firings,
            transient_states=cycle_start + 1,
            cycle_states=len(record_keys) - cycle_start - 1,
            states_stored=states_stored,
            reduced_states=tuple(self._unpack_record(key) for key in record_keys),
        )

    def _zero_result(
        self,
        deadlock_time: int | None,
        first_firing_time: int | None,
        states_stored: int,
    ) -> ExecutionResult:
        return ExecutionResult(
            observe=self.observe,
            throughput=Fraction(0),
            deadlocked=True,
            deadlock_time=deadlock_time,
            first_firing_time=first_firing_time,
            cycle_duration=0,
            firings_in_cycle=0,
            transient_states=states_stored,
            cycle_states=0,
            states_stored=states_stored,
        )


#: Weak per-graph kernel cache: {graph: (shape, {observe: kernel})}.
#: Keyed weakly so exploring many graphs leaks nothing; the shape pair
#: invalidates kernels when actors/channels are added after compiling.
_KERNELS: "weakref.WeakKeyDictionary[SDFGraph, tuple[tuple[int, int], dict[str, FastKernel]]]" = (
    weakref.WeakKeyDictionary()
)


def kernel_for(graph: SDFGraph, observe: str | None = None) -> FastKernel:
    """The (cached) compiled kernel of *graph* for *observe*.

    Graphs are treated as structurally immutable once analysed — the
    same contract the consistency-verdict memo in
    :mod:`repro.analysis.consistency` relies on.  Adding actors or
    channels afterwards recompiles; in-place rate mutation is
    unsupported.
    """
    shape = (graph.num_actors, graph.num_channels)
    cached = _KERNELS.get(graph)
    if cached is None or cached[0] != shape:
        cached = (shape, {})
        _KERNELS[graph] = cached
    kernels = cached[1]
    key = observe if observe is not None else graph.actor_names[-1] if graph.num_actors else ""
    kernel = kernels.get(key)
    if kernel is None:
        kernel = FastKernel(graph, observe)
        kernels[key] = kernel
    return kernel


def fast_execute(
    graph: SDFGraph,
    capacities: Mapping[str, int] | None = None,
    observe: str | None = None,
    *,
    max_instants: int | None = None,
    stall_threshold: int = _DEFAULT_STALL_THRESHOLD,
) -> ExecutionResult:
    """One fast-kernel execution (kernel compiled or reused per graph)."""
    return kernel_for(graph, observe).run(
        capacities, max_instants=max_instants, stall_threshold=stall_threshold
    )
