"""Hash-based visited-state store.

The paper's generated explorer keeps the visited (reduced) states in a
hash table so that each new state can be checked in amortised constant
time (Sec. 10, ``storeState``).  :class:`StateStore` provides exactly
that: insertion order is preserved so that, when a state recurs, the
slice from its first occurrence to the end is the detected cycle.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from typing import Generic, TypeVar

StateT = TypeVar("StateT", bound=Hashable)


class StateStore(Generic[StateT]):
    """Insertion-ordered set of states with first-occurrence lookup."""

    def __init__(self) -> None:
        self._index: dict[StateT, int] = {}
        self._states: list[StateT] = []

    def add(self, state: StateT) -> int | None:
        """Store *state*; return its earlier index if already present.

        ``None`` means the state was new (and has been added).  A
        non-``None`` return value signals a cycle: the states from that
        index to the end of the store form the periodic phase.
        """
        existing = self._index.get(state)
        if existing is not None:
            return existing
        self._index[state] = len(self._states)
        self._states.append(state)
        return None

    def __contains__(self, state: StateT) -> bool:
        return state in self._index

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[StateT]:
        return iter(self._states)

    def __getitem__(self, index: int) -> StateT:
        return self._states[index]

    def states_from(self, index: int) -> list[StateT]:
        """The stored states from *index* to the end (a detected cycle)."""
        return self._states[index:]
