"""Execution states (Definition 5 of the paper).

The state of an SDF graph ``(A, C)`` at a time instant is the tuple
``(t_1 .. t_n, s_1 .. s_m)`` where ``t_i`` is the remaining execution
time of actor ``a_i`` (0 when idle) and ``s_j`` the number of tokens
stored in channel ``c_j``.  States are hashable so they can be stored
in the visited-state hash table used for cycle detection (Sec. 7).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SDFState:
    """An execution state: actor clocks plus channel token counts.

    The component order follows the actor / channel insertion order of
    the graph, so states of the same graph are directly comparable.
    """

    clocks: tuple[int, ...]
    tokens: tuple[int, ...]

    @property
    def is_idle(self) -> bool:
        """Whether no actor is firing."""
        return not any(self.clocks)

    def as_tuple(self) -> tuple[int, ...]:
        """Flat ``(t_1..t_n, s_1..s_m)`` tuple as in Definition 5."""
        return self.clocks + self.tokens

    def __str__(self) -> str:
        return "(" + ", ".join(str(v) for v in self.as_tuple()) + ")"


@dataclass(frozen=True, slots=True)
class ReducedState:
    """A state of the reduced space of Sec. 7.

    Recorded whenever the observed actor completes one or more firings
    at a time instant; ``distance`` is the paper's extra dimension
    ``d_a`` — the time elapsed since the previous recorded completion —
    and ``firings`` the number of completions at this instant (> 1 only
    for zero-execution-time actors).
    """

    state: SDFState
    distance: int
    firings: int = 1

    def __str__(self) -> str:
        return "(" + ", ".join(str(v) for v in self.state.as_tuple() + (self.distance,)) + ")"
