"""Deterministic self-timed execution with bounded storage.

The central algorithm of the paper (Secs. 6-7): execute the graph
under a storage distribution, firing every actor as soon as it is
enabled, until either the reduced state space revisits a state (the
periodic phase has been closed — the throughput can be read off) or
the execution deadlocks (throughput zero).

See :mod:`repro.engine` for the semantics; the key simplification —
the start-time capacity check ``tokens + production <= capacity``
subsumes explicit space claiming because every channel has a unique
producer — is documented there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from collections.abc import Mapping

from repro.engine.schedule import Schedule
from repro.engine.state import ReducedState, SDFState
from repro.engine.statestore import StateStore
from repro.exceptions import CapacityError, DeadlockError, EngineError, GraphError
from repro.graph.graph import SDFGraph

#: Safety bound on firings processed within one time instant; only
#: reachable through diverging zero-execution-time cascades.
_MAX_FIRINGS_PER_INSTANT = 1_000_000

#: After this many recorded instants without a completion of the
#: observed actor, full states are recorded as well so that a periodic
#: starvation of the observed actor (partial deadlock) is detected.
_DEFAULT_STALL_THRESHOLD = 50_000


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of running a graph to its periodic phase (or deadlock).

    Attributes
    ----------
    observe:
        Name of the actor whose throughput was measured.
    throughput:
        Average firings of *observe* per time step, as an exact
        fraction; zero iff the execution deadlocked or starves the
        observed actor forever.
    deadlocked:
        Whether a (full or observed-actor-starving) deadlock occurred.
    deadlock_time:
        Time instant of a full deadlock, if one occurred.
    first_firing_time:
        Completion time of the first firing of *observe* (``None`` if
        it never fired).
    cycle_duration / firings_in_cycle:
        Length of the periodic phase in time steps and the number of
        firings of *observe* within it (throughput = quotient).
    transient_states / cycle_states / states_stored:
        Reduced-state-space statistics; ``states_stored`` corresponds
        to the "maximum #states" metric of the paper's Table 2.
    reduced_states:
        The recorded reduced states, transient followed by cycle.
    schedule:
        Firing schedule, when recording was requested.
    space_blocked / token_blocked:
        Channels that blocked an otherwise-enabled actor at some
        instant (see :mod:`repro.buffers.dependencies`).
    """

    observe: str
    throughput: Fraction
    deadlocked: bool
    deadlock_time: int | None
    first_firing_time: int | None
    cycle_duration: int
    firings_in_cycle: int
    transient_states: int
    cycle_states: int
    states_stored: int
    reduced_states: tuple[ReducedState, ...] = ()
    schedule: Schedule | None = None
    space_blocked: frozenset[str] = frozenset()
    token_blocked: frozenset[str] = frozenset()
    space_deficits: Mapping[str, int] = field(default_factory=dict)
    peak_shared_tokens: int | None = None

    @property
    def period(self) -> Fraction:
        """Average time between firings of the observed actor."""
        if self.throughput == 0:
            raise DeadlockError("deadlocked execution has no period", self.deadlock_time)
        return 1 / self.throughput

    @property
    def cycle_start_time(self) -> int:
        """Time instant at which the periodic phase is first entered.

        The completion time of the last transient firing of the
        observed actor — from here on the schedule repeats every
        :attr:`cycle_duration` steps.
        """
        if self.throughput == 0:
            raise DeadlockError("deadlocked execution has no periodic phase", self.deadlock_time)
        return sum(record.distance for record in self.reduced_states[: self.transient_states])


@dataclass(slots=True)
class _ActorInfo:
    """Precomputed per-actor firing data (index-based, engine internal)."""

    name: str
    execution_time: int
    inputs: list[tuple[int, int]] = field(default_factory=list)
    outputs: list[tuple[int, int]] = field(default_factory=list)


def validate_capacities(
    graph: SDFGraph,
    capacities: Mapping[str, int] | None,
    channel_index: Mapping[str, int],
) -> list[int | None]:
    """Index-ordered capacity vector (``None`` = unbounded), validated.

    Shared by the reference :class:`Executor` and the fast kernel in
    :mod:`repro.engine.fastcore` so both reject malformed distributions
    with identical errors.
    """
    caps: list[int | None] = [None] * len(channel_index)
    if capacities is None:
        return caps
    for name, capacity in dict(capacities).items():
        if name not in channel_index:
            raise CapacityError(f"capacity given for unknown channel {name!r}")
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 0:
            raise CapacityError(f"channel {name!r}: capacity must be a non-negative int")
        if capacity < graph.channels[name].initial_tokens:
            raise CapacityError(
                f"channel {name!r}: capacity {capacity} is below its"
                f" {graph.channels[name].initial_tokens} initial tokens"
            )
        caps[channel_index[name]] = capacity
    return caps


class Executor:
    """Runs one graph under one storage distribution.

    Parameters
    ----------
    graph:
        The SDF graph to execute.
    capacities:
        ``{channel name: capacity}``; channels absent from the mapping
        (or the whole argument being ``None``) are unbounded.  A
        capacity smaller than a channel's initial tokens is rejected.
    observe:
        Actor whose throughput is computed; defaults to the last actor
        of the graph (in many streaming graphs, the output actor).
    mode:
        ``"event"`` (default) jumps between firing completions;
        ``"tick"`` advances one time step at a time as the paper's
        generated code does.  Both produce identical behaviour.
    record_schedule:
        Keep every firing for later Gantt rendering.
    track_blocking:
        Collect the channels whose full/empty state blocked an
        otherwise-enabled actor (used by the dependency-guided
        exploration strategy).
    track_occupancy:
        Record the peak total occupancy (stored tokens plus space
        claimed by running firings, summed over all channels) — the
        storage requirement under the *shared-memory* model of Sec. 3
        (see :mod:`repro.buffers.shared`).
    processors:
        Optional ``{actor: processor}`` assignment.  Actors mapped to
        the same processor never fire concurrently; among
        simultaneously ready actors on one processor the earliest in
        the graph's insertion order starts first (a deterministic
        fixed-priority arbitration).  Unmapped actors keep a private
        processor.  This extension models resource-constrained
        multiprocessor mappings; the exactness guarantees of the
        design-space exploration are stated for the unconstrained
        model.
    max_instants:
        Optional hard bound on processed time instants.
    """

    def __init__(
        self,
        graph: SDFGraph,
        capacities: Mapping[str, int] | None = None,
        observe: str | None = None,
        *,
        mode: str = "event",
        record_schedule: bool = False,
        track_blocking: bool = False,
        track_occupancy: bool = False,
        processors: Mapping[str, str] | None = None,
        max_instants: int | None = None,
        stall_threshold: int = _DEFAULT_STALL_THRESHOLD,
    ):
        if graph.num_actors == 0:
            raise GraphError("cannot execute an empty graph")
        if mode not in ("event", "tick"):
            raise EngineError(f"unknown execution mode {mode!r}")
        self.graph = graph
        self.mode = mode
        self.record_schedule = record_schedule
        self.track_blocking = track_blocking
        self.track_occupancy = track_occupancy
        self.max_instants = max_instants
        self.stall_threshold = stall_threshold

        self.actor_names = graph.actor_names
        self.channel_names = graph.channel_names
        if observe is None:
            observe = self.actor_names[-1]
        if observe not in graph.actors:
            raise GraphError(f"unknown observed actor {observe!r}")
        self.observe = observe
        self._observe_idx = self.actor_names.index(observe)

        channel_index = {name: j for j, name in enumerate(self.channel_names)}
        self._initial_tokens = [graph.channels[name].initial_tokens for name in self.channel_names]
        self._capacities = validate_capacities(graph, capacities, channel_index)

        self._actors: list[_ActorInfo] = []
        for name in self.actor_names:
            actor = graph.actors[name]
            info = _ActorInfo(name, actor.execution_time)
            for channel in graph.incoming(name):
                info.inputs.append((channel_index[channel.name], channel.consumption))
            for channel in graph.outgoing(name):
                info.outputs.append((channel_index[channel.name], channel.production))
            self._actors.append(info)

        self._processor_of: list[str | None] = [None] * len(self._actors)
        if processors is not None:
            for actor_name, processor in dict(processors).items():
                if actor_name not in graph.actors:
                    raise GraphError(f"processor assignment for unknown actor {actor_name!r}")
                self._processor_of[self.actor_names.index(actor_name)] = processor

        self._reset()

    # ------------------------------------------------------------------
    # Run state
    # ------------------------------------------------------------------
    def _reset(self) -> None:
        self.time = 0
        self.clocks = [0] * len(self._actors)
        self.tokens = list(self._initial_tokens)
        self.schedule = Schedule(self.graph) if self.record_schedule else None
        self._space_blocked: set[int] = set()
        self._token_blocked: set[int] = set()
        # Minimal capacity shortfall seen per space-blocking channel;
        # increasing a channel by less than this cannot change the
        # execution (see repro.buffers.dependencies).
        self._space_deficits: dict[int, int] = {}
        self._peak_occupancy = sum(self.tokens) if self.track_occupancy else 0

    def state(self) -> SDFState:
        """The current state (Definition 5)."""
        return SDFState(tuple(self.clocks), tuple(self.tokens))

    # ------------------------------------------------------------------
    # One time instant
    # ------------------------------------------------------------------
    def _complete_due_firings(self) -> int:
        """Finish firings whose clock reached zero; return completions of the observed actor."""
        observed = 0
        for idx, info in enumerate(self._actors):
            if self.clocks[idx] == -1:
                # Sentinel: a firing scheduled to complete now.
                self.clocks[idx] = 0
                self._finish_firing(idx, info)
                if idx == self._observe_idx:
                    observed += 1
        return observed

    def _finish_firing(self, idx: int, info: _ActorInfo) -> None:
        for channel, rate in info.inputs:
            self.tokens[channel] -= rate
        for channel, rate in info.outputs:
            self.tokens[channel] += rate

    def _can_start(self, info: _ActorInfo, collect: bool) -> bool:
        """Start condition; optionally record blocking channels."""
        token_failures: list[int] | None = [] if collect else None
        for channel, rate in info.inputs:
            if self.tokens[channel] < rate:
                if token_failures is None:
                    return False
                token_failures.append(channel)
        space_failures: list[tuple[int, int]] = []
        for channel, rate in info.outputs:
            capacity = self._capacities[channel]
            if capacity is not None and self.tokens[channel] + rate > capacity:
                if not collect:
                    return False
                space_failures.append((channel, self.tokens[channel] + rate - capacity))
        if token_failures:
            self._token_blocked.update(token_failures)
            return False
        if space_failures:
            # Only space stands between this actor and a firing.
            for channel, deficit in space_failures:
                self._space_blocked.add(channel)
                known = self._space_deficits.get(channel)
                if known is None or deficit < known:
                    self._space_deficits[channel] = deficit
            return False
        return True

    def _start_enabled_firings(self) -> int:
        """Start every enabled actor (fixpoint over zero-time cascades).

        Returns the number of observed-actor completions caused by
        zero-execution-time firings at this instant.
        """
        observed = 0
        fired_this_instant = 0
        busy_processors = {
            self._processor_of[idx]
            for idx, clock in enumerate(self.clocks)
            if clock > 0 and self._processor_of[idx] is not None
        }
        progress = True
        while progress:
            progress = False
            for idx, info in enumerate(self._actors):
                if self.clocks[idx] != 0:
                    continue
                processor = self._processor_of[idx]
                if processor is not None and processor in busy_processors:
                    # Shared-processor arbitration: earlier actors in the
                    # graph's insertion order have priority (deterministic).
                    continue
                if not self._can_start(info, self.track_blocking):
                    continue
                fired_this_instant += 1
                if fired_this_instant > _MAX_FIRINGS_PER_INSTANT:
                    raise EngineError(
                        f"more than {_MAX_FIRINGS_PER_INSTANT} firings in one time instant;"
                        " a zero-execution-time cascade diverges (unbounded channel?)"
                    )
                if self.schedule is not None:
                    self.schedule.record(info.name, self.time, self.time + info.execution_time)
                if info.execution_time == 0:
                    self._finish_firing(idx, info)
                    if idx == self._observe_idx:
                        observed += 1
                    progress = True
                else:
                    self.clocks[idx] = info.execution_time
                    if self._processor_of[idx] is not None:
                        busy_processors.add(self._processor_of[idx])
        return observed

    def _process_instant(self) -> int:
        """Complete due firings then start enabled ones; return observed completions."""
        observed = self._complete_due_firings()
        observed += self._start_enabled_firings()
        if self.track_occupancy:
            occupancy = sum(self.tokens)
            for idx, info in enumerate(self._actors):
                if self.clocks[idx] > 0:
                    occupancy += sum(rate for _channel, rate in info.outputs)
            if occupancy > self._peak_occupancy:
                self._peak_occupancy = occupancy
        return observed

    def _advance_time(self, mode: str | None = None) -> bool:
        """Move to the next time instant; ``False`` when nothing is running.

        *mode* selects the time-advance semantics for this call only
        (defaulting to the executor's configured mode), so callers that
        need a different semantics — :meth:`explore_full_state_space`
        always walks tick-by-tick — do not have to mutate ``self.mode``
        and stay re-entrant with a concurrent :meth:`run`.
        """
        busy = [clock for clock in self.clocks if clock > 0]
        if not busy:
            return False
        delta = 1 if (mode or self.mode) == "tick" else min(busy)
        self.time += delta
        for idx, clock in enumerate(self.clocks):
            if clock > 0:
                remaining = clock - delta
                # -1 marks "completes at the new current instant".
                self.clocks[idx] = remaining if remaining > 0 else -1
        return True

    # ------------------------------------------------------------------
    # Main loops
    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        """Execute until the periodic phase closes or a deadlock occurs."""
        self._reset()
        store: StateStore[tuple] = StateStore()
        records: list[ReducedState] = []
        full_store: StateStore[SDFState] | None = None
        instants_since_firing = 0
        last_firing_time: int | None = None
        first_firing_time: int | None = None
        instants = 0

        observed = self._process_instant()
        while True:
            if observed:
                if first_firing_time is None:
                    first_firing_time = self.time
                distance = self.time - (last_firing_time if last_firing_time is not None else 0)
                last_firing_time = self.time
                instants_since_firing = 0
                full_store = None
                record = ReducedState(self.state(), distance, observed)
                records.append(record)
                key = (record.state, record.distance, record.firings)
                cycle_start = store.add(key)
                if cycle_start is not None:
                    return self._periodic_result(records, cycle_start, first_firing_time, len(store))
            else:
                instants_since_firing += 1
                if instants_since_firing >= self.stall_threshold:
                    if full_store is None:
                        full_store = StateStore()
                    if full_store.add(self.state()) is not None:
                        # The graph loops without ever firing the
                        # observed actor again: starvation.
                        return self._starvation_result(first_firing_time, len(store))

            if not self._advance_time():
                return self._deadlock_result(first_firing_time, len(store))
            instants += 1
            if self.max_instants is not None and instants > self.max_instants:
                raise EngineError(f"execution exceeded {self.max_instants} time instants")
            observed = self._process_instant()

    def _periodic_result(
        self,
        records: list[ReducedState],
        cycle_start: int,
        first_firing_time: int | None,
        states_stored: int,
    ) -> ExecutionResult:
        # The final record equals records[cycle_start]; the cycle is
        # records[cycle_start+1 .. end] (distances measured *into* each
        # record close the loop exactly).
        cycle = records[cycle_start + 1 :]
        duration = sum(record.distance for record in cycle)
        firings = sum(record.firings for record in cycle)
        return ExecutionResult(
            observe=self.observe,
            throughput=Fraction(firings, duration),
            deadlocked=False,
            deadlock_time=None,
            first_firing_time=first_firing_time,
            cycle_duration=duration,
            firings_in_cycle=firings,
            transient_states=cycle_start + 1,
            cycle_states=len(cycle),
            states_stored=states_stored,
            reduced_states=tuple(records),
            schedule=self.schedule,
            space_blocked=self._blocked_names(self._space_blocked),
            token_blocked=self._blocked_names(self._token_blocked),
            space_deficits=self._deficit_names(),
            peak_shared_tokens=self._peak_occupancy if self.track_occupancy else None,
        )

    def _deadlock_result(self, first_firing_time: int | None, states_stored: int) -> ExecutionResult:
        return ExecutionResult(
            observe=self.observe,
            throughput=Fraction(0),
            deadlocked=True,
            deadlock_time=self.time,
            first_firing_time=first_firing_time,
            cycle_duration=0,
            firings_in_cycle=0,
            transient_states=states_stored,
            cycle_states=0,
            states_stored=states_stored,
            reduced_states=(),
            schedule=self.schedule,
            space_blocked=self._blocked_names(self._space_blocked),
            token_blocked=self._blocked_names(self._token_blocked),
            space_deficits=self._deficit_names(),
            peak_shared_tokens=self._peak_occupancy if self.track_occupancy else None,
        )

    def _starvation_result(self, first_firing_time: int | None, states_stored: int) -> ExecutionResult:
        return ExecutionResult(
            observe=self.observe,
            throughput=Fraction(0),
            deadlocked=True,
            deadlock_time=None,
            first_firing_time=first_firing_time,
            cycle_duration=0,
            firings_in_cycle=0,
            transient_states=states_stored,
            cycle_states=0,
            states_stored=states_stored,
            reduced_states=(),
            schedule=self.schedule,
            space_blocked=self._blocked_names(self._space_blocked),
            token_blocked=self._blocked_names(self._token_blocked),
            space_deficits=self._deficit_names(),
            peak_shared_tokens=self._peak_occupancy if self.track_occupancy else None,
        )

    def _blocked_names(self, indices: set[int]) -> frozenset[str]:
        return frozenset(self.channel_names[index] for index in indices)

    def _deficit_names(self) -> dict[str, int]:
        return {self.channel_names[index]: deficit for index, deficit in self._space_deficits.items()}

    def run_until_firings(self, count: int) -> Schedule:
        """Execute until the observed actor completed *count* firings.

        Ignores cycle detection and returns the recorded schedule —
        the workhorse for latency measurements over several steady
        iterations.  Requires ``record_schedule=True``.
        """
        if not self.record_schedule:
            raise EngineError("run_until_firings needs record_schedule=True")
        if count < 1:
            raise EngineError("count must be positive")
        self._reset()
        completed = self._process_instant()
        instants = 0
        while completed < count:
            if not self._advance_time():
                raise DeadlockError(
                    f"deadlock after {completed} firings of {self.observe!r}", self.time
                )
            instants += 1
            if self.max_instants is not None and instants > self.max_instants:
                raise EngineError(f"execution exceeded {self.max_instants} time instants")
            completed += self._process_instant()
        assert self.schedule is not None
        return self.schedule

    # ------------------------------------------------------------------
    # Full state space (Fig. 3)
    # ------------------------------------------------------------------
    def explore_full_state_space(self, max_states: int = 1_000_000) -> tuple[list[SDFState], int]:
        """Tick-by-tick full state sequence until the first revisit.

        Returns the visited states in order plus the index at which the
        cycle starts (a deadlock shows up as a self-loop on an idle
        state, consistent with Property 1 of the paper).
        """
        self._reset()
        store: StateStore[SDFState] = StateStore()
        self._process_instant()
        while True:
            state = self.state()
            cycle_start = store.add(state)
            if cycle_start is not None:
                return list(store), cycle_start
            if len(store) > max_states:
                raise EngineError(f"full state space exceeds {max_states} states")
            if not self._advance_time("tick"):
                # Deadlock: time still advances in the timed model,
                # but the state no longer changes — Property 1's
                # self-loop.  Re-adding the same state closes it.
                cycle_start = store.add(state)
                if cycle_start is None:  # pragma: no cover - defensive
                    raise EngineError("deadlock state failed to close the state space")
                return list(store), cycle_start
            self._process_instant()


def execute(
    graph: SDFGraph,
    capacities: Mapping[str, int] | None = None,
    observe: str | None = None,
    *,
    engine: str = "auto",
    **kwargs,
) -> ExecutionResult:
    """Convenience wrapper: run *graph* on the selected engine.

    ``engine="auto"`` (the default) uses the fast event-calendar kernel
    of :mod:`repro.engine.fastcore` whenever no instrumentation is
    requested (no schedule recording, blocking/occupancy tracking,
    processor mapping or tick mode) and this reference executor
    otherwise; ``"fast"`` / ``"reference"`` force one of the two.
    """
    from repro.engine.fastcore import fast_execute, resolve_engine

    if resolve_engine(engine, kwargs) == "fast":
        options = {k: v for k, v in kwargs.items() if k in ("max_instants", "stall_threshold")}
        return fast_execute(graph, capacities, observe, **options)
    return Executor(graph, capacities, observe, **kwargs).run()
