"""Compile plane of the ``"cc"`` probe backend ("buffy-native").

The paper's own ``buffy`` tool reaches its throughput by generating a
dedicated C explorer per graph (Sec. 10, Fig. 8).  This module turns
that idea into a production backend: it takes the self-contained kernel
source emitted by :func:`repro.codegen.cgen.generate_kernel_c`,
compiles it with the platform C compiler via :mod:`ctypes` (no runtime
dependencies beyond a working ``cc``), and caches the resulting shared
objects on disk content-addressed by graph fingerprint + layout +
codegen version — so the service and repeated CLI runs never compile
the same graph twice, across processes and restarts.

Layering: this module owns *compilation, caching and binding* and
returns raw ``(firings, duration, states, deadlocked)`` tuples; the
:class:`~repro.engine.backends.CcBackend` registered in
:mod:`repro.engine.backends` wraps them into exact
:class:`~repro.engine.backends.EvalResult`\\ s (``Fraction(firings,
duration)``) and plugs into the probe-backend seam.

Graceful degradation
--------------------
:func:`compiler_probe` discovers a compiler (``$CC``, else ``cc`` /
``gcc`` / ``clang`` on ``PATH``) and proves it can actually build a
shared object once, caching the verdict.  On hosts without one the
backend stays registered but reports itself unavailable:
``backend="auto"`` resolution skips it silently, while asking for
``backend="cc"`` explicitly raises
:class:`~repro.exceptions.ConfigError` carrying the probe's reason.  A
failed trial compile counts the ``cc_compile_failures`` telemetry
counter.

Cache hygiene
-------------
The on-disk cache (``$REPRO_CACHE_DIR/cc-kernels``, else
``$XDG_CACHE_HOME/repro/cc-kernels``, else ``~/.cache/repro/cc-kernels``;
overridable via :func:`configure` / the CLI ``--codegen-cache-dir``)
stores ``<key>.c`` + ``<key>.so`` pairs, written atomically
(temp-file + rename).  It is size-bounded with LRU eviction by access
time, and corrupt entries — truncated files, foreign binaries, stale
ABIs — are detected at load time (missing symbols, ``dlopen`` failure,
ABI/shape handshake mismatch), unlinked, and recompiled instead of
crashing the run.

Telemetry: the module-level :data:`telemetry` hub counts
``cc_compiles``, ``cc_cache_hits``, ``cc_compile_failures``,
``cc_cache_corrupt`` and ``cc_cache_evictions``; the analysis service
exposes them as Prometheus gauges on ``/metrics``.
"""

from __future__ import annotations

import ctypes
import itertools
import json
import os
import shutil
import subprocess
import tempfile
import threading
import weakref
from hashlib import sha256
from pathlib import Path
from collections.abc import Sequence

from repro.exceptions import ConfigError, EngineError, GraphError
from repro.graph.graph import SDFGraph

#: Stand-in capacity for unbounded channels in the int64 caps array —
#: the same sentinel the batch-numpy kernel uses: large enough that
#: ``tokens + production`` cannot reach it before the firing guard.
_UNBOUNDED = 2**62

#: Lazily constructed compile-plane telemetry (``cc_compiles``,
#: ``cc_cache_hits``, ``cc_compile_failures``, ``cc_cache_corrupt``,
#: ``cc_cache_evictions``), exposed as the module attribute
#: ``ccore.telemetry``.  Module-global: kernels are shared across
#: services and jobs, so their accounting is too.  Built on first use
#: because this module must stay import-light — it is imported by the
#: backend registry, which half the package imports.
_telemetry = None


def _hub():
    global _telemetry
    if _telemetry is None:
        from repro.runtime.telemetry import TelemetryHub

        _telemetry = TelemetryHub()
    return _telemetry


def __getattr__(name: str):
    if name == "telemetry":
        return _hub()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Compilers tried, in order, when ``$CC`` is unset.
_COMPILER_CANDIDATES = ("cc", "gcc", "clang")

#: Flags for building a loadable kernel shared object.
_CFLAGS = ("-O2", "-fPIC", "-shared")

#: Default size bound of the on-disk kernel cache (``.c`` + ``.so``).
_DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_COMPILE_TIMEOUT_S = 120

_UNSET = object()

#: Mutable module state: the cached compiler-probe verdict and the
#: :func:`configure` overrides.
_state: dict = {"probe": None, "cache_dir": None, "max_bytes": None}

#: Weak per-graph handle cache: {graph: (shape, {observe: kernel})},
#: mirroring ``fastcore._KERNELS``.  Purely an in-process lookup
#: accelerator — the disk cache is the durable layer.
_KERNELS: "weakref.WeakKeyDictionary[SDFGraph, tuple[tuple[int, int], dict[str, CompiledKernel]]]" = (
    weakref.WeakKeyDictionary()
)

_COMPILE_LOCK = threading.Lock()


class _KernelBinaryError(Exception):
    """A cached shared object failed the load-time handshake."""


def _cgen():
    # Imported lazily: the codegen package's __init__ reaches back into
    # the buffers layer, which imports the backend registry — importing
    # it at module load would close that circle.
    from repro.codegen import cgen

    return cgen


def _graph_fingerprint(graph: SDFGraph) -> str:
    # Lazy for the same reason: repro.io's __init__ pulls front I/O,
    # which imports the buffers layer.
    from repro.io.jsonio import graph_fingerprint

    return graph_fingerprint(graph)


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


def configure(*, cache_dir: str | Path | None | object = _UNSET,
              max_bytes: int | None | object = _UNSET) -> None:
    """Override the kernel-cache location and/or size bound.

    Passing ``None`` restores the environment/default resolution for
    that setting.  Loaded kernel handles are dropped so the new
    location takes effect immediately.
    """
    if cache_dir is not _UNSET:
        _state["cache_dir"] = Path(cache_dir) if cache_dir is not None else None
    if max_bytes is not _UNSET:
        _state["max_bytes"] = int(max_bytes) if max_bytes is not None else None
    _KERNELS.clear()


def reset(*, counters: bool = False) -> None:
    """Forget the compiler-probe verdict and all loaded kernel handles.

    The on-disk cache is untouched — a later probe re-discovers the
    compiler and cached shared objects are reloaded (as cache hits).
    With ``counters=True`` the telemetry counters restart at zero.
    Primarily a test hook (environment changes are not watched).
    """
    _state["probe"] = None
    _KERNELS.clear()
    if counters:
        _hub().counters.clear()
        _hub().timers.clear()


def cache_dir() -> Path:
    """The active kernel-cache directory (override > env > default)."""
    configured = _state["cache_dir"]
    if configured is not None:
        return configured
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env) / "cc-kernels"
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "cc-kernels"


def cache_limit_bytes() -> int:
    """The active cache size bound in bytes."""
    configured = _state["max_bytes"]
    return configured if configured is not None else _DEFAULT_MAX_BYTES


# ---------------------------------------------------------------------------
# Compiler discovery
# ---------------------------------------------------------------------------


def compiler_probe(*, refresh: bool = False) -> tuple[str | None, str | None]:
    """``(compiler, None)`` when a working C compiler exists, else
    ``(None, reason)``.

    The probe resolves ``$CC`` (or the first of ``cc``/``gcc``/``clang``
    on ``PATH``) and proves it can build a trivial shared object; the
    verdict is cached until :func:`reset`.  A compiler that resolves
    but cannot compile counts ``cc_compile_failures`` — that is the
    signal the broken-``cc`` fallback tests assert on.
    """
    if not refresh and _state["probe"] is not None:
        return _state["probe"]
    verdict = _probe_uncached()
    _state["probe"] = verdict
    return verdict


def _probe_uncached() -> tuple[str | None, str | None]:
    env = os.environ.get("CC")
    names = [env] if env else list(_COMPILER_CANDIDATES)
    compiler = None
    for name in names:
        path = shutil.which(name)
        if path:
            compiler = path
            break
    if compiler is None:
        if env:
            return None, f"$CC={env!r} is not on PATH or not executable"
        return None, (
            "no C compiler found (install cc/gcc/clang or point $CC at one)"
        )
    try:
        with tempfile.TemporaryDirectory(prefix="repro-cc-probe-") as tmp:
            source = Path(tmp) / "probe.c"
            source.write_text("int repro_cc_probe(void) { return 0; }\n", encoding="utf-8")
            target = Path(tmp) / "probe.so"
            proc = subprocess.run(
                [compiler, *_CFLAGS, "-o", str(target), str(source)],
                capture_output=True,
                text=True,
                timeout=_COMPILE_TIMEOUT_S,
            )
    except (OSError, subprocess.TimeoutExpired) as error:
        _hub().emit("cc_compile_failures")
        return None, f"C compiler {compiler} could not be run ({error})"
    if proc.returncode != 0:
        _hub().emit("cc_compile_failures")
        tail = (proc.stderr or proc.stdout).strip().splitlines()
        detail = tail[-1] if tail else f"exit status {proc.returncode}"
        return None, f"C compiler {compiler} cannot build shared objects ({detail})"
    return compiler, None


def availability() -> str | None:
    """``None`` when the backend can run here, else a human-readable
    reason (the :class:`~repro.exceptions.ConfigError` payload)."""
    _compiler, reason = compiler_probe()
    return reason


# ---------------------------------------------------------------------------
# On-disk kernel cache
# ---------------------------------------------------------------------------


def cache_key(graph: SDFGraph, observe: str) -> str:
    """Content address of the ``(graph, observe)`` kernel.

    Covers the canonical :func:`~repro.io.jsonio.graph_fingerprint`
    *plus* the actor/channel declaration order — the compiled kernel's
    caps layout and actor indices are positional, so two graphs with
    equal fingerprints but different insertion orders must not share a
    shared object — and the codegen version, so generator changes
    invalidate every older entry without touching the disk.
    """
    layout = json.dumps(
        [
            _graph_fingerprint(graph),
            list(graph.actor_names),
            list(graph.channel_names),
            observe,
            _cgen().CODEGEN_VERSION,
        ]
    )
    return sha256(layout.encode("utf-8")).hexdigest()[:32]


class KernelCache:
    """Content-addressed ``<key>.c`` + ``<key>.so`` pairs with LRU
    eviction by access time and atomic writes."""

    def __init__(self, directory: Path, max_bytes: int):
        self.directory = Path(directory)
        self.max_bytes = max_bytes

    def so_path(self, key: str) -> Path:
        return self.directory / f"{key}.so"

    def lookup(self, key: str) -> Path | None:
        """The cached shared object for *key*, LRU-touched; ``None`` on miss."""
        path = self.so_path(key)
        try:
            os.utime(path)
        except OSError:
            return None
        return path

    def store(self, key: str, source: str, compiler: str) -> Path:
        """Compile *source* into the cache under *key* (atomically)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        c_path = self.directory / f"{key}.c"
        so_path = self.so_path(key)
        # Temp names keep their real extensions (cc dispatches on them)
        # but carry the pid so concurrent writers never collide; the
        # final os.replace is the atomic publish.
        c_tmp = self.directory / f"{key}.{os.getpid()}.tmp.c"
        so_tmp = self.directory / f"{key}.{os.getpid()}.tmp.so"
        try:
            c_tmp.write_text(source, encoding="utf-8")
            try:
                proc = subprocess.run(
                    [compiler, *_CFLAGS, "-o", str(so_tmp), str(c_tmp)],
                    capture_output=True,
                    text=True,
                    timeout=_COMPILE_TIMEOUT_S,
                )
            except (OSError, subprocess.TimeoutExpired) as error:
                _hub().emit("cc_compile_failures")
                raise EngineError(
                    f"C compiler {compiler} could not be run ({error})"
                ) from error
            if proc.returncode != 0:
                _hub().emit("cc_compile_failures")
                tail = (proc.stderr or proc.stdout).strip().splitlines()
                detail = "\n".join(tail[-5:]) or f"exit status {proc.returncode}"
                raise EngineError(
                    f"C compiler {compiler} failed on the generated kernel:\n{detail}"
                )
            os.replace(c_tmp, c_path)
            os.replace(so_tmp, so_path)
        finally:
            for tmp in (c_tmp, so_tmp):
                try:
                    tmp.unlink()
                except OSError:
                    pass
        _hub().emit("cc_compiles")
        self.evict(keep=key)
        return so_path

    def remove(self, key: str) -> None:
        for path in (self.so_path(key), self.directory / f"{key}.c"):
            try:
                path.unlink()
            except OSError:
                pass

    def evict(self, keep: str | None = None) -> None:
        """Drop least-recently-used entries until the cache fits
        :attr:`max_bytes`; the entry *keep* is never evicted."""
        entries = []
        total = 0
        try:
            shared_objects = list(self.directory.glob("*.so"))
        except OSError:
            return
        for so in shared_objects:
            key = so.stem
            try:
                stat = so.stat()
            except OSError:
                continue
            size = stat.st_size
            try:
                size += (self.directory / f"{key}.c").stat().st_size
            except OSError:
                pass
            entries.append((stat.st_mtime, key, size))
            total += size
        for _mtime, key, size in sorted(entries):
            if total <= self.max_bytes:
                break
            if key == keep:
                continue
            self.remove(key)
            total -= size
            _hub().emit("cc_cache_evictions")


# ---------------------------------------------------------------------------
# Binding + execution
# ---------------------------------------------------------------------------


def _bind(path: Path, graph: SDFGraph) -> ctypes.CDLL:
    """Load and handshake a kernel shared object.

    Raises ``OSError`` (dlopen failure), ``AttributeError`` (missing
    symbol) or :class:`_KernelBinaryError` (ABI/shape mismatch) — all
    of which the caller treats as a corrupt cache entry.
    """
    lib = ctypes.CDLL(str(path))
    for name in ("repro_kernel_abi", "repro_kernel_actors", "repro_kernel_channels"):
        fn = getattr(lib, name)
        fn.restype = ctypes.c_int64
        fn.argtypes = []
    probe = lib.probe_many_exact
    probe.restype = ctypes.c_int32
    probe.argtypes = [
        ctypes.POINTER(ctypes.c_int64),
        ctypes.c_int32,
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.POINTER(ctypes.c_int64),
    ]
    expected_abi = _cgen().KERNEL_ABI
    abi = lib.repro_kernel_abi()
    if abi != expected_abi:
        raise _KernelBinaryError(f"kernel ABI {abi} != expected {expected_abi}")
    shape = (lib.repro_kernel_actors(), lib.repro_kernel_channels())
    if shape != (graph.num_actors, graph.num_channels):
        raise _KernelBinaryError(
            f"kernel shape {shape} != graph shape"
            f" {(graph.num_actors, graph.num_channels)}"
        )
    return lib


class CompiledKernel:
    """A loaded per-``(graph, observe)`` kernel shared object.

    :meth:`run_lanes` is the raw exact interface: capacity rows in the
    graph's channel order (``None`` = unbounded) map to one
    ``(firings_in_cycle, cycle_duration, states_stored, deadlocked)``
    tuple per lane.  Throughput is the exact
    ``Fraction(firings_in_cycle, cycle_duration)`` — reconstructed by
    the backend so no precision is lost crossing the C boundary.
    """

    def __init__(self, graph: SDFGraph, observe: str, lib: ctypes.CDLL, path: Path):
        self.graph = graph
        self.observe = observe
        self.path = path
        self.channel_index = {name: j for j, name in enumerate(graph.channel_names)}
        self.num_channels = graph.num_channels
        self._lib = lib
        self._probe = lib.probe_many_exact

    def run_lanes(
        self,
        capacity_rows: Sequence[Sequence[int | None]],
        *,
        stall_threshold: int,
        max_firings: int,
    ) -> list[tuple[int, int, int, bool]]:
        lanes = len(capacity_rows)
        if lanes == 0:
            return []
        flat = [
            _UNBOUNDED if cap is None else cap
            for row in capacity_rows
            for cap in row
        ]
        caps = (ctypes.c_int64 * max(1, len(flat)))(*flat)
        out = (ctypes.c_int64 * (lanes * 4))()
        rc = self._probe(caps, lanes, stall_threshold, max_firings, out)
        if rc == 1:
            raise EngineError(
                f"more than {max_firings} firings in one time instant;"
                " a zero-execution-time cascade diverges (unbounded channel?)"
            )
        if rc != 0:
            raise EngineError(f"compiled probe kernel failed with status {rc}")
        return [
            (out[4 * lane], out[4 * lane + 1], out[4 * lane + 2], bool(out[4 * lane + 3]))
            for lane in range(lanes)
        ]


def kernel_for(graph: SDFGraph, observe: str | None = None) -> CompiledKernel:
    """The (cached) compiled kernel of *graph* for *observe*.

    Resolution order: in-process weak handle cache, then the on-disk
    shared-object cache (``cc_cache_hits``), then a fresh compile
    (``cc_compiles``).  Raises :class:`~repro.exceptions.ConfigError`
    when no working C compiler is available.
    """
    if graph.num_actors == 0:
        raise GraphError("cannot execute an empty graph")
    if observe is None:
        observe = graph.actor_names[-1]
    if observe not in graph.actors:
        raise GraphError(f"unknown observed actor {observe!r}")
    shape = (graph.num_actors, graph.num_channels)
    cached = _KERNELS.get(graph)
    if cached is None or cached[0] != shape:
        cached = (shape, {})
        _KERNELS[graph] = cached
    kernels = cached[1]
    kernel = kernels.get(observe)
    if kernel is None:
        with _COMPILE_LOCK:
            kernel = kernels.get(observe)
            if kernel is None:
                kernel = _compile_or_load(graph, observe)
                kernels[observe] = kernel
    return kernel


#: Monotonic suffix for retry-load temp copies (see ``_bind_fresh``).
_LOAD_SERIAL = itertools.count()


def _bind_fresh(path: Path, graph: SDFGraph, key: str) -> ctypes.CDLL:
    """Bind *path* through a uniquely named temp copy.

    ``dlopen`` caches handles by *pathname*: after a corrupt entry was
    detected and recompiled, loading the replacement from the same path
    would hand back the stale mapping.  The copy's name is fresh, so
    the loader maps the new file; unlinking it immediately is safe —
    the mapping keeps the inode alive for the process's lifetime.
    """
    unique = path.parent / f"{key}.{os.getpid()}.{next(_LOAD_SERIAL)}.load.so"
    shutil.copy2(path, unique)
    try:
        return _bind(unique, graph)
    finally:
        try:
            unique.unlink()
        except OSError:
            pass


def _compile_or_load(graph: SDFGraph, observe: str) -> CompiledKernel:
    compiler, reason = compiler_probe()
    if compiler is None:
        raise ConfigError(f"probe backend 'cc' is unavailable: {reason}")
    cache = KernelCache(cache_dir(), cache_limit_bytes())
    key = cache_key(graph, observe)
    last_error: Exception | None = None
    for attempt in range(2):
        path = cache.lookup(key)
        if path is None:
            source = _cgen().generate_kernel_c(graph, observe)
            path = cache.store(key, source, compiler)
        else:
            _hub().emit("cc_cache_hits")
        try:
            # The retry must not reuse the dlopen pathname handle the
            # corrupt first attempt may have pinned.
            lib = _bind(path, graph) if attempt == 0 else _bind_fresh(path, graph, key)
        except (OSError, AttributeError, _KernelBinaryError) as error:
            # Corrupt entry (truncated file, foreign binary, stale
            # ABI): drop it and recompile once instead of crashing.
            _hub().emit("cc_cache_corrupt")
            cache.remove(key)
            last_error = error
            continue
        return CompiledKernel(graph, observe, lib, path)
    raise EngineError(
        f"freshly compiled kernel {cache.so_path(key)} failed to load:"
        f" {last_error}"
    )
