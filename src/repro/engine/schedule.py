"""Recorded firing schedules.

A schedule maps each firing of each actor to its start time
(Definition 3).  The execution engine records firings as half-open
intervals ``[start, end)`` (``start == end`` for zero-execution-time
actors); this module provides the queries needed to render Table-1
style Gantt charts and to verify schedule validity in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import SDFGraph


@dataclass(frozen=True)
class FiringEvent:
    """One recorded firing of one actor."""

    actor: str
    start: int
    end: int

    @property
    def duration(self) -> int:
        """Execution time of the firing."""
        return self.end - self.start


class Schedule:
    """An ordered record of firings produced by one execution."""

    def __init__(self, graph: SDFGraph):
        self.graph = graph
        self._events: list[FiringEvent] = []
        self._by_actor: dict[str, list[FiringEvent]] = {name: [] for name in graph.actor_names}

    def record(self, actor: str, start: int, end: int) -> None:
        """Append a firing of *actor* over ``[start, end)``."""
        event = FiringEvent(actor, start, end)
        self._events.append(event)
        self._by_actor[actor].append(event)

    @property
    def events(self) -> list[FiringEvent]:
        """All firings in recording (= start-time) order."""
        return list(self._events)

    def firings(self, actor: str) -> list[FiringEvent]:
        """The firings of *actor*, in order."""
        return list(self._by_actor[actor])

    def start_times(self, actor: str) -> list[int]:
        """``sigma(actor, i)`` for each recorded firing ``i``."""
        return [event.start for event in self._by_actor[actor]]

    def num_firings(self, actor: str) -> int:
        """Number of recorded firings of *actor*."""
        return len(self._by_actor[actor])

    @property
    def horizon(self) -> int:
        """Largest end time over all recorded firings (0 when empty)."""
        return max((event.end for event in self._events), default=0)

    def activity(self, actor: str, time: int) -> str | None:
        """What *actor* does during time step ``[time, time+1)``.

        Returns ``"start"`` for the first step of a firing,
        ``"running"`` for continuation steps and ``None`` when idle.
        Zero-duration firings report ``"start"`` at their instant.
        """
        for event in self._by_actor[actor]:
            if event.start == time:
                return "start"
            if event.start < time < event.end:
                return "running"
        return None

    def concurrent_firings(self, time: int) -> list[FiringEvent]:
        """Firings active during time step ``[time, time+1)``."""
        return [e for e in self._events if e.start <= time < e.end or (e.start == e.end == time)]

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return f"Schedule({len(self._events)} firings, horizon={self.horizon})"
