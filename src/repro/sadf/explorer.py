"""All-scenario buffer sizing for FSM-SADF graphs.

The skeleton of an :class:`~repro.sadf.graph.SADFGraph` fixes one
channel set, so a single
:class:`~repro.buffers.distribution.StorageDistribution` prices every
scenario at once.  This module charts the Pareto space of storage size
vs. **worst-case** throughput (:mod:`repro.sadf.throughput`): a
distribution meets a throughput target only if every reachable
scenario — and every accepted switching pattern between them —
sustains it.

The sweep is the storage-dependency argument run on the worst case
directly.  Every ingredient of ``W(d)`` (per-scenario steady-state
throughput, per-scenario iteration makespan, and their cycle
compositions) is monotone in *d* and changes only when a channel that
*blocked* a firing grows by at least its minimal observed deficit; the
union of blocking channels over all reachable scenarios (steady-state
and makespan runs alike) is therefore a complete set of growth
directions, and the size-ordered frontier with a throughput ceiling
terminates exactly as in the SDF case.

Each scenario is evaluated through its own
:class:`~repro.buffers.evalcache.EvaluationService` — memo cache,
bounds oracle, worker pools and backends apply per scenario unchanged
— while one shared :class:`~repro.runtime.controller.RunController`
meters the *combined* probe budget.  Results flow through the existing
:class:`~repro.buffers.pareto.ParetoFront` /
:class:`~repro.buffers.explorer.ExplorationStats` machinery, budgets
yield partial results with resume tokens, and ``config.checkpoint``
writes a versioned multi-scenario checkpoint (format
:data:`SADF_CHECKPOINT_FORMAT`) restoring every scenario's memo.

A **degenerate** single-scenario graph (one scenario, zero-delay
self-loop FSM) is delegated outright to the plain SDF
:func:`~repro.buffers.explorer.explore_design_space` on its scenario
graph — fronts, witnesses and probe counts are bit-identical to the
SDF path by construction, the property pinned in
``tests/properties/test_prop_sadf.py``.
"""

from __future__ import annotations

import heapq
import json
import time
from fractions import Fraction
from pathlib import Path
from collections.abc import Callable, Mapping

from repro.buffers.bounds import lower_bound_distribution, upper_bound_distribution
from repro.buffers.distribution import StorageDistribution
from repro.buffers.evalcache import EvaluationService
from repro.buffers.explorer import (
    DesignSpaceResult,
    ExplorationStats,
    explore_design_space as _explore_sdf,
)
from repro.buffers.pareto import ParetoFront, ParetoPoint
from repro.exceptions import (
    BudgetExhausted,
    CheckpointError,
    ExplorationError,
    GraphError,
)
from repro.runtime.checkpoint import ResumeToken, save_checkpoint
from repro.runtime.config import ExplorationConfig, coerce_config
from repro.runtime.controller import RunController
from repro.runtime.telemetry import TelemetryHub
from repro.sadf.graph import SADFGraph
from repro.sadf.makespan import MakespanResult, iteration_makespan
from repro.sadf.throughput import worst_case_throughput

#: Checkpoint format marker of multi-scenario SADF explorations.  The
#: degenerate single-scenario path delegates to the SDF explorer and
#: therefore writes plain ``repro-checkpoint`` files; the two formats
#: reject each other explicitly.
SADF_CHECKPOINT_FORMAT = "repro-sadf-checkpoint"
SADF_CHECKPOINT_VERSION = 1

#: Strategy tag stamped into multi-scenario stats and checkpoints.
SADF_STRATEGY = "sadf-dependency"


def explore_design_space(
    sadf: SADFGraph,
    observe: str | None = None,
    *,
    strategy: str = "dependency",
    max_size: int | None = None,
    config: ExplorationConfig | None = None,
    resume: "ResumeToken | Mapping | str | Path | None" = None,
    scenario_states: Mapping[str, Mapping] | None = None,
    on_export: Callable[[str, Mapping], None] | None = None,
) -> DesignSpaceResult:
    """Chart the storage / worst-case-throughput Pareto space of *sadf*.

    Parameters
    ----------
    observe:
        Skeleton actor whose completions define throughput; defaults
        to the last actor.
    strategy:
        Only ``"dependency"`` explores multi-scenario graphs; the
        degenerate single-scenario case forwards any strategy to the
        SDF explorer.
    max_size:
        Restrict the sweep to distributions of at most this size.
    config:
        The run's :class:`~repro.runtime.config.ExplorationConfig`.
        ``budget`` meters the *combined* probe count across all
        scenarios; ``checkpoint`` writes a multi-scenario checkpoint;
        ``evaluator`` is rejected (each scenario owns its service).
    resume:
        A resume token, checkpoint payload or checkpoint path from a
        previous run of the same graph.
    scenario_states:
        Optional ``{scenario: export_state() payload}`` warm-start (the
        service plane's memo banks); ignored for scenarios it does not
        name.  ``resume`` takes precedence.
    on_export:
        Called as ``on_export(scenario, export_state())`` for every
        scenario service before it closes — partial and failed runs
        included — so callers can bank what the run paid for.
    """
    sadf.validate()
    config = coerce_config(config, caller="sadf.explore_design_space")
    if observe is None:
        observe = sadf.actor_names[-1]
    if observe not in sadf.actors:
        raise GraphError(f"SADF graph {sadf.name!r} has no actor {observe!r}")

    if sadf.is_single_scenario:
        return _explore_degenerate(
            sadf,
            observe,
            strategy=strategy,
            max_size=max_size,
            config=config,
            resume=resume,
            scenario_states=scenario_states,
            on_export=on_export,
        )

    if strategy != "dependency":
        raise ExplorationError(
            f"multi-scenario SADF exploration supports the 'dependency'"
            f" strategy only, not {strategy!r}"
        )
    if config.evaluator is not None:
        raise ExplorationError(
            "config.evaluator cannot be shared across scenarios; each"
            " scenario owns its evaluation service (use scenario_states /"
            " on_export to warm-start and bank their memo caches)"
        )

    started = time.perf_counter()
    fsm = sadf.effective_fsm()
    reachable = fsm.reachable()
    order = sadf.channel_names

    hub = TelemetryHub(config.on_event)
    controller = RunController(config.budget, hub)
    # Per-scenario services keep the caller's event callback (probe
    # telemetry flows through) but no budget or checkpoint of their
    # own — the shared controller and the multi-scenario checkpoint
    # format handle those here.
    scenario_config = config.replaced(budget=None, checkpoint=None, evaluator=None)
    services: dict[str, EvaluationService] = {}
    try:
        for name in reachable:
            service = EvaluationService(
                sadf.scenario_graph(name), observe, config=scenario_config
            )
            # One controller meters the combined probe budget; the
            # services were built budget-free above.
            service.controller = controller
            services[name] = service

        if resume is not None:
            _restore_scenarios(_coerce_sadf_resume(resume), sadf, observe, services)
        elif scenario_states:
            for name, state in scenario_states.items():
                if name in services and state and state.get("memo"):
                    services[name].restore_state(state)

        hub.emit(
            "run_start",
            graph=sadf.name,
            observe=observe,
            strategy=SADF_STRATEGY,
            scenarios=len(reachable),
        )

        lower = _merged_bound(sadf, reachable, lower_bound_distribution)
        upper = _merged_bound(sadf, reachable, upper_bound_distribution)

        makespan_cache: dict[tuple[str, tuple[int, ...]], MakespanResult] = {}

        def makespans_at(
            distribution: StorageDistribution, vector: tuple[int, ...]
        ) -> Callable[[str], MakespanResult]:
            def oracle(name: str) -> MakespanResult:
                key = (name, vector)
                if key not in makespan_cache:
                    makespan_cache[key] = iteration_makespan(
                        sadf.scenario_graph(name),
                        distribution,
                        sadf.scenario_repetitions(name),
                    )
                return makespan_cache[key]

            return oracle

        def worst_at(distribution: StorageDistribution) -> Fraction:
            vector = tuple(distribution[name] for name in order)
            return worst_case_throughput(
                sadf,
                distribution,
                observe,
                throughputs=lambda name: services[name](distribution),
                makespans=makespans_at(distribution, vector),
            ).worst_case

        evaluations: dict[StorageDistribution, Fraction] = {}
        heap: list[tuple[int, tuple[int, ...], StorageDistribution]] = []
        queued: set[StorageDistribution] = set()
        complete = True
        exhausted: str | None = None
        max_thr: Fraction | None = None

        try:
            # Per-scenario throughput ceilings first: they power the
            # superset prune of every service, including during the
            # worst-case maximum search below.
            from repro.analysis.throughput import max_throughput as _max_throughput

            for name in reachable:
                services[name].set_ceiling(
                    _max_throughput(
                        sadf.scenario_graph(name), observe, evaluator=services[name]
                    )
                )

            # Maximal worst case: evaluate at the conservative upper
            # bound and double until stable twice (the CSDF adaptive
            # scheme); every probe lands in the memos / caches.
            probe = upper
            best = worst_at(probe)
            evaluations[probe] = best
            stable = 0
            while stable < 2:
                probe = probe.scaled(2)
                value = worst_at(probe)
                evaluations[probe] = value
                if value == best:
                    stable += 1
                else:
                    best = value
                    stable = 0
            max_thr = best
            while worst_at(upper) < max_thr:
                upper = upper.scaled(2)
            evaluations[upper] = worst_at(upper)

            ceiling: int | None = None

            def push(distribution: StorageDistribution) -> None:
                if distribution in queued or distribution in evaluations:
                    return
                if max_size is not None and distribution.size > max_size:
                    return
                if ceiling is not None and distribution.size > ceiling:
                    return
                queued.add(distribution)
                heapq.heappush(
                    heap,
                    (
                        distribution.size,
                        tuple(distribution[name] for name in order),
                        distribution,
                    ),
                )

            push(lower)
            while heap:
                size, vector, distribution = heapq.heappop(heap)
                if ceiling is not None and size > ceiling:
                    break
                queued.discard(distribution)
                worst = worst_at(distribution)
                evaluations[distribution] = worst
                if max_thr > 0 and worst >= max_thr:
                    if ceiling is None or size < ceiling:
                        ceiling = size
                    continue
                if max_thr == 0:
                    # Some reachable scenario deadlocks at every
                    # distribution; nothing to grow towards.
                    break
                # Growth directions: every channel whose lack of space
                # blocked a firing in any reachable scenario, in the
                # pipelined steady state or within one barriered
                # iteration, by its minimal observed deficit.
                deficits: dict[str, int] = {}
                oracle = makespans_at(distribution, vector)
                for name in reachable:
                    record = services[name].evaluate_blocking(distribution)
                    for channel in record.space_blocked or ():
                        step = (record.space_deficits or {}).get(channel, 1)
                        deficits[channel] = min(
                            deficits.get(channel, step), step
                        )
                    makespan = oracle(name)
                    for channel in makespan.space_blocked:
                        step = makespan.space_deficits.get(channel, 1)
                        deficits[channel] = min(
                            deficits.get(channel, step), step
                        )
                for channel, step in deficits.items():
                    push(distribution.incremented(channel, step))
        except BudgetExhausted as stop:
            complete = False
            exhausted = stop.reason
        if max_thr is None:
            max_thr = max(evaluations.values(), default=Fraction(0))

        front = ParetoFront.from_evaluations(evaluations)
        if max_size is not None:
            front = front.filtered(lambda point: point.size <= max_size)

        resume_token: ResumeToken | None = None
        if not complete or config.checkpoint is not None:
            payload = {
                "format": SADF_CHECKPOINT_FORMAT,
                "version": SADF_CHECKPOINT_VERSION,
                "graph": sadf.name,
                "observe": observe,
                "strategy": SADF_STRATEGY,
                "complete": complete,
                "exhausted": exhausted,
                "channels": list(order),
                "frontier": front.to_dicts(),
                "pending": [dict(entry) for _, _, entry in sorted(heap)],
                "scenarios": {
                    name: services[name].export_state() for name in reachable
                },
            }
            resume_token = ResumeToken(payload)
            if config.checkpoint is not None:
                path = save_checkpoint(resume_token, config.checkpoint)
                hub.emit(
                    "checkpoint_saved",
                    path=str(path),
                    complete=complete,
                    scenarios=len(reachable),
                )

        hub.emit(
            "run_finish",
            complete=complete,
            exhausted=exhausted,
            pareto_points=len(front),
            evaluations=sum(s.stats.evaluations for s in services.values()),
        )
        for service in services.values():
            hub.merge(service.telemetry)
        stats = ExplorationStats(
            strategy=SADF_STRATEGY,
            evaluations=sum(s.stats.evaluations for s in services.values()),
            max_states_stored=max(
                (s.stats.max_states_stored for s in services.values()), default=0
            ),
            wall_time_s=time.perf_counter() - started,
            sizes_probed=len({d.size for d in evaluations}),
            cache_hits=sum(s.stats.cache_hits for s in services.values()),
            prunes=sum(s.stats.prunes for s in services.values()),
            workers=max((s.workers for s in services.values()), default=1),
            parallel_batches=sum(s.stats.parallel_batches for s in services.values()),
            pool_restarts=sum(s.stats.pool_restarts for s in services.values()),
            pool_fallback_reason=next(
                (
                    s.stats.pool_fallback_reason
                    for s in services.values()
                    if s.stats.pool_fallback_reason
                ),
                None,
            ),
            bounds_exact=sum(s.stats.bounds_exact for s in services.values()),
            bounds_cut=sum(s.stats.bounds_cut for s in services.values()),
            speculative_issued=sum(
                s.stats.speculative_issued for s in services.values()
            ),
            speculative_useful=sum(
                s.stats.speculative_useful for s in services.values()
            ),
            speculative_wasted=sum(
                s.stats.speculative_wasted for s in services.values()
            ),
            backend=next(iter(services.values())).backend_name if services else None,
            batch_calls=sum(s.stats.batch_calls for s in services.values()),
            batch_lanes=sum(s.stats.batch_lanes for s in services.values()),
        )
        return DesignSpaceResult(
            graph_name=sadf.name,
            observe=observe,
            front=front,
            stats=stats,
            lower_bounds=lower,
            upper_bounds=upper,
            max_throughput=max_thr,
            complete=complete,
            exhausted=exhausted,
            resume_token=resume_token if not complete else None,
            telemetry=hub.snapshot(),
        )
    finally:
        for name, service in services.items():
            if on_export is not None:
                on_export(name, service.export_state())
            service.close()


def max_worst_case_throughput(
    sadf: SADFGraph, observe: str | None = None, confirmations: int = 2
) -> Fraction:
    """Maximal worst-case throughput over all storage distributions.

    Evaluated at the conservative upper bound and doubled until stable
    for *confirmations* consecutive doublings (the CSDF adaptive
    scheme), with plain reference executions — no caches or budgets.
    """
    sadf.validate()
    reachable = sadf.effective_fsm().reachable()
    capacities = _merged_bound(sadf, reachable, upper_bound_distribution)
    best = worst_case_throughput(sadf, capacities, observe).worst_case
    stable = 0
    while stable < confirmations:
        capacities = capacities.scaled(2)
        enlarged = worst_case_throughput(sadf, capacities, observe).worst_case
        if enlarged == best:
            stable += 1
        else:
            best = enlarged
            stable = 0
    return best


def minimal_sadf_distribution_for_throughput(
    sadf: SADFGraph,
    constraint: Fraction,
    observe: str | None = None,
    *,
    config: ExplorationConfig | None = None,
) -> ParetoPoint | None:
    """Smallest distribution whose *worst-case* throughput meets
    *constraint* in every reachable scenario and switching pattern.

    Returns ``None`` when the constraint exceeds the graph's maximal
    worst-case throughput.
    """
    if constraint <= 0:
        raise ExplorationError("the throughput constraint must be positive")
    result = explore_design_space(sadf, observe, config=config)
    return result.front.smallest_for(constraint)


# -- internals --------------------------------------------------------------
def _explore_degenerate(
    sadf: SADFGraph,
    observe: str,
    *,
    strategy: str,
    max_size: int | None,
    config: ExplorationConfig,
    resume: object,
    scenario_states: Mapping[str, Mapping] | None,
    on_export: Callable[[str, Mapping], None] | None,
) -> DesignSpaceResult:
    """Single-scenario graphs reduce to plain SDF exploration.

    The scenario graph is copied under the SADF graph's own name, so
    results, checkpoints and fronts are bit-identical to running the
    SDF explorer on the original graph directly.
    """
    (only,) = sadf.scenario_names
    graph = sadf.scenario_graph(only).copy(sadf.name)
    if scenario_states is None and on_export is None:
        return _explore_sdf(
            graph,
            observe,
            strategy=strategy,
            max_size=max_size,
            config=config,
            resume=resume,
        )
    # Service-plane path: own the evaluation service so its memo can be
    # warm-started from and banked back into the caller's store.
    service = EvaluationService(
        graph, observe, config=config.replaced(checkpoint=None, evaluator=None)
    )
    try:
        state = (scenario_states or {}).get(only)
        if state and state.get("memo"):
            service.restore_state(state)
        return _explore_sdf(
            graph,
            observe,
            strategy=strategy,
            max_size=max_size,
            config=ExplorationConfig(evaluator=service, checkpoint=config.checkpoint),
            resume=resume,
        )
    finally:
        if on_export is not None:
            on_export(only, service.export_state())
        service.close()


def _merged_bound(
    sadf: SADFGraph,
    scenarios: tuple[str, ...],
    bound: Callable[[object], StorageDistribution],
) -> StorageDistribution:
    """Per-channel maximum of a per-scenario bound — valid (and for the
    lower bound, necessary) in every reachable scenario at once."""
    merged: StorageDistribution | None = None
    for name in scenarios:
        current = bound(sadf.scenario_graph(name))
        merged = current if merged is None else merged.merged_max(current)
    assert merged is not None  # validate() guarantees scenarios exist
    return merged


def _coerce_sadf_resume(resume: object) -> Mapping:
    """Accept a token, payload mapping or checkpoint path; validate the
    multi-scenario format."""
    if isinstance(resume, ResumeToken):
        payload = dict(resume.payload)
    elif isinstance(resume, (str, Path)):
        try:
            payload = json.loads(Path(resume).read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"{resume}: not valid checkpoint JSON ({error})"
            ) from None
    elif isinstance(resume, Mapping):
        payload = dict(resume)
    else:
        raise CheckpointError(
            f"cannot resume from {type(resume).__name__}: expected a"
            " ResumeToken, a checkpoint path or a payload mapping"
        )
    if not isinstance(payload, dict) or payload.get("format") != SADF_CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"not a {SADF_CHECKPOINT_FORMAT} payload (single-scenario runs"
            " write plain SDF checkpoints; resume those through the SDF path)"
        )
    if payload.get("version") != SADF_CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {payload.get('version')!r} is not supported"
            f" (expected {SADF_CHECKPOINT_VERSION})"
        )
    for key in ("graph", "observe", "channels", "scenarios"):
        if key not in payload:
            raise CheckpointError(f"checkpoint misses the {key!r} section")
    return payload


def _restore_scenarios(
    payload: Mapping,
    sadf: SADFGraph,
    observe: str,
    services: Mapping[str, EvaluationService],
) -> None:
    if payload["graph"] != sadf.name:
        raise CheckpointError(
            f"checkpoint was written for graph {payload['graph']!r},"
            f" not {sadf.name!r}"
        )
    if list(payload["channels"]) != list(sadf.channel_names):
        raise CheckpointError(
            f"checkpoint channel set {payload['channels']} does not match"
            f" graph {sadf.name!r} ({list(sadf.channel_names)})"
        )
    if payload["observe"] != observe:
        raise CheckpointError(
            f"checkpoint observed {payload['observe']!r}, not {observe!r}"
        )
    for name, state in payload["scenarios"].items():
        if name in services and state.get("memo"):
            services[name].restore_state(state)
