"""Scenario-aware (FSM-SADF) dataflow analysis.

A finite set of named *scenarios* — each a full SDF rate/execution-time
binding over one shared actor/channel skeleton — plus a finite-state
machine over scenario sequences with optional per-transition delays.
The subsystem answers the scenario-aware versions of the paper's
questions: worst-case throughput across *all* accepted scenario
sequences (:func:`worst_case_throughput`) and all-scenario buffer
sizing (:func:`explore_design_space`), with the degenerate
single-scenario case reproducing the plain SDF results bit-for-bit.
"""

from repro.sadf.explorer import (
    SADF_CHECKPOINT_FORMAT,
    SADF_CHECKPOINT_VERSION,
    SADF_STRATEGY,
    explore_design_space,
    max_worst_case_throughput,
    minimal_sadf_distribution_for_throughput,
)
from repro.sadf.fsm import MAX_ENUMERATED_CYCLES, ScenarioFSM, ScenarioTransition
from repro.sadf.graph import SADFActor, SADFChannel, SADFGraph, Scenario, from_sdf
from repro.sadf.makespan import MakespanResult, iteration_makespan
from repro.sadf.throughput import CycleRatio, WorstCaseReport, worst_case_throughput

__all__ = [
    "MAX_ENUMERATED_CYCLES",
    "SADF_CHECKPOINT_FORMAT",
    "SADF_CHECKPOINT_VERSION",
    "SADF_STRATEGY",
    "CycleRatio",
    "MakespanResult",
    "SADFActor",
    "SADFChannel",
    "SADFGraph",
    "Scenario",
    "ScenarioFSM",
    "ScenarioTransition",
    "WorstCaseReport",
    "explore_design_space",
    "from_sdf",
    "iteration_makespan",
    "max_worst_case_throughput",
    "minimal_sadf_distribution_for_throughput",
    "worst_case_throughput",
]
