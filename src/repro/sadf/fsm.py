"""The scenario finite-state machine of an FSM-SADF graph.

States are scenario names; an infinite *accepted scenario sequence* is
any walk from the initial state along transitions.  Each transition
carries an optional non-negative integer **delay**: the reconfiguration
time the platform spends switching modes before the next scenario's
first firing may start (Jung/Oh/Ha, arXiv:1603.05775).

The worst-case analysis of :mod:`repro.sadf.throughput` needs three
structural queries, all cheap on the tiny FSMs that occur in practice:
reachability from the initial state, zero-delay self-loops (a scenario
the application may *reside* in, executing pipelined), and the simple
cycles of the reachable sub-FSM (the periodic switching patterns that
bound long-run throughput from below).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.exceptions import GraphError

#: Simple-cycle enumeration cap: beyond this many cycles the worst-case
#: analysis switches to its conservative per-scenario fallback (densely
#: connected FSMs have exponentially many simple cycles).
MAX_ENUMERATED_CYCLES = 64


@dataclass(frozen=True)
class ScenarioTransition:
    """One FSM edge: switch from *source*'s scenario to *target*'s."""

    source: str
    target: str
    delay: int = 0

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise GraphError("transition endpoints must be non-empty scenario names")
        if not isinstance(self.delay, int) or isinstance(self.delay, bool):
            raise GraphError(
                f"transition {self.source!r} -> {self.target!r}: delay must be int"
            )
        if self.delay < 0:
            raise GraphError(
                f"transition {self.source!r} -> {self.target!r}: delay must be >= 0"
            )


class ScenarioFSM:
    """FSM over scenario names with per-transition delays."""

    def __init__(
        self,
        initial: str,
        transitions: Iterable[ScenarioTransition | Sequence] = (),
    ):
        if not initial:
            raise GraphError("the FSM needs a non-empty initial scenario")
        self.initial = initial
        self._transitions: dict[tuple[str, str], ScenarioTransition] = {}
        self._order: list[str] = [initial]
        for transition in transitions:
            if isinstance(transition, ScenarioTransition):
                self.add_transition(
                    transition.source, transition.target, transition.delay
                )
            else:
                self.add_transition(*transition)

    # -- construction -------------------------------------------------------
    def add_transition(
        self, source: str, target: str, delay: int = 0
    ) -> ScenarioTransition:
        """Allow switching from *source* to *target* (at most one edge
        per ordered pair)."""
        transition = ScenarioTransition(source, target, delay)
        key = (source, target)
        if key in self._transitions:
            raise GraphError(
                f"duplicate transition {source!r} -> {target!r};"
                " at most one edge per ordered scenario pair"
            )
        self._transitions[key] = transition
        for state in (source, target):
            if state not in self._order:
                self._order.append(state)
        return transition

    @classmethod
    def single(cls, scenario: str) -> "ScenarioFSM":
        """The degenerate FSM: one state, one zero-delay self-loop —
        accepts exactly the constant sequence (plain SDF semantics)."""
        return cls(scenario, [(scenario, scenario, 0)])

    @classmethod
    def complete(cls, scenarios: Sequence[str], delay: int = 0) -> "ScenarioFSM":
        """The *any order* FSM: fully connected (self-loops included)
        over *scenarios*, every transition carrying *delay*."""
        if not scenarios:
            raise GraphError("ScenarioFSM.complete needs at least one scenario")
        fsm = cls(scenarios[0])
        for source in scenarios:
            for target in scenarios:
                fsm.add_transition(source, target, delay)
        return fsm

    # -- access -------------------------------------------------------------
    @property
    def states(self) -> tuple[str, ...]:
        """Every scenario named by the FSM (initial first, then in order
        of first mention)."""
        return tuple(self._order)

    @property
    def transitions(self) -> tuple[ScenarioTransition, ...]:
        """All transitions, in insertion order."""
        return tuple(self._transitions.values())

    def successors(self, state: str) -> tuple[ScenarioTransition, ...]:
        """Outgoing transitions of *state* (insertion order)."""
        return tuple(t for t in self._transitions.values() if t.source == state)

    def transition(self, source: str, target: str) -> ScenarioTransition | None:
        """The edge *source* -> *target*, or ``None``."""
        return self._transitions.get((source, target))

    def has_zero_delay_self_loop(self, state: str) -> bool:
        """Whether the application may *reside* in *state*: repeat its
        scenario back-to-back with no switching barrier."""
        loop = self._transitions.get((state, state))
        return loop is not None and loop.delay == 0

    @property
    def max_delay(self) -> int:
        """The largest transition delay (0 for an empty FSM)."""
        return max((t.delay for t in self._transitions.values()), default=0)

    # -- structure ----------------------------------------------------------
    def reachable(self) -> tuple[str, ...]:
        """States reachable from the initial one (discovery order)."""
        seen: list[str] = [self.initial]
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for transition in self.successors(state):
                if transition.target not in seen:
                    seen.append(transition.target)
                    frontier.append(transition.target)
        return tuple(seen)

    def is_fully_connected(self) -> bool:
        """Every reachable state can switch to every reachable state."""
        reachable = self.reachable()
        return all(
            (source, target) in self._transitions
            for source in reachable
            for target in reachable
        )

    def simple_cycles(
        self, limit: int = MAX_ENUMERATED_CYCLES
    ) -> tuple[tuple[tuple[ScenarioTransition, ...], ...], bool]:
        """The simple cycles of the reachable sub-FSM.

        Zero-delay self-loops are *excluded*: residing in a scenario is
        priced by its pipelined steady-state throughput, not by the
        switching barrier (see :mod:`repro.sadf.throughput`).  Delayed
        self-loops count as cycles of length one.

        Returns ``(cycles, truncated)``; each cycle is the tuple of
        transitions traversed.  ``truncated`` is ``True`` when more
        than *limit* cycles exist — callers must then fall back to the
        conservative per-scenario bound.
        """
        reachable = self.reachable()
        index = {state: i for i, state in enumerate(reachable)}
        cycles: list[tuple[ScenarioTransition, ...]] = []
        truncated = False

        # Rooted DFS enumeration: every simple cycle is discovered once,
        # at its lowest-indexed state (Johnson-style root ordering; the
        # FSMs are tiny, so no blocking sets are needed).
        for root in reachable:
            root_idx = index[root]
            stack: list[tuple[str, tuple[ScenarioTransition, ...]]] = [(root, ())]
            while stack:
                state, path = stack.pop()
                for transition in self.successors(state):
                    target = transition.target
                    if target not in index or index[target] < root_idx:
                        continue
                    if target == root:
                        if transition.source == transition.target and transition.delay == 0:
                            continue  # zero-delay self-loop: residence, not a cycle
                        if len(cycles) >= limit:
                            return tuple(cycles), True
                        cycles.append(path + (transition,))
                    elif all(t.source != target and t.target != target for t in path):
                        stack.append((target, path + (transition,)))
        return tuple(cycles), truncated

    # -- rendering ----------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable rendering."""
        edges = ", ".join(
            f"{t.source}->{t.target}"
            + (f"({t.delay})" if t.delay else "")
            for t in self._transitions.values()
        )
        return f"initial={self.initial}; {edges or 'no transitions'}"

    def __repr__(self) -> str:
        return (
            f"ScenarioFSM(initial={self.initial!r},"
            f" states={len(self._order)}, transitions={len(self._transitions)})"
        )
