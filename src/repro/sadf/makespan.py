"""Iteration makespan of one scenario under bounded buffers.

The scenario-switch protocol analysed by :mod:`repro.sadf.throughput`
is *barriered*: before the FSM takes a transition, the running
scenario completes its current iteration (every actor fires its
repetition count) and the channels return to the skeleton's initial
token marking; the transition delay then elapses before the next
scenario starts.  The cost of one such barriered iteration is the
scenario's **iteration makespan**: the completion time of a self-timed
execution, from the initial marking, in which each actor fires exactly
its repetition-vector count.

The simulation mirrors the reference executor's semantics exactly
(:mod:`repro.engine.executor`): an actor may start when every input
holds its consumption rate *and* every output has room for its
production rate under the storage distribution (the paper's
conservative claim model); tokens move at the *end* of a firing;
enabled actors start simultaneously, zero-execution-time firings
cascade within the instant, and time advances to the next completion.
The only difference is the per-actor firing quota — an actor whose
quota is met stops firing, which is precisely the barrier.

Because one iteration returns every channel to its initial marking,
the makespan is also the exact period of the *barriered* (non-
pipelined) repetition of the scenario, which is what the worst-case
cycle ratios of :mod:`repro.sadf.throughput` sum up.
"""

from __future__ import annotations

from typing import NamedTuple
from collections.abc import Mapping

from repro.analysis.repetitions import repetition_vector
from repro.engine.executor import validate_capacities
from repro.exceptions import EngineError
from repro.graph.graph import SDFGraph

#: Guard against zero-execution-time cascades that diverge (mirrors the
#: reference executor's guard; a quota'd run cannot exceed the quota
#: sum, so this only trips on internal errors).
_MAX_FIRINGS_PER_INSTANT = 1_000_000


class MakespanResult(NamedTuple):
    """Outcome of one quota'd self-timed execution.

    ``time`` is ``None`` when the iteration deadlocks under the given
    storage distribution (the scenario is infeasible at that sizing).
    ``space_blocked`` / ``space_deficits`` record every channel whose
    lack of space delayed an otherwise-enabled firing, with the minimal
    observed shortfall — the growth hints of the all-scenario sweep.
    """

    time: int | None
    deadlocked: bool
    space_blocked: frozenset[str]
    space_deficits: Mapping[str, int]


def iteration_makespan(
    graph: SDFGraph,
    capacities: Mapping[str, int],
    repetitions: Mapping[str, int] | None = None,
) -> MakespanResult:
    """Makespan of one repetition-vector iteration of *graph* under
    *capacities* (``None`` time on deadlock)."""
    channel_names = graph.channel_names
    channel_index = {name: i for i, name in enumerate(channel_names)}
    validated = validate_capacities(graph, capacities, channel_index)
    if repetitions is None:
        repetitions = repetition_vector(graph)

    actors = list(graph.actors.values())
    tokens = {name: graph.channels[name].initial_tokens for name in channel_names}
    caps = {name: validated[channel_index[name]] for name in channel_names}
    inputs = {
        actor.name: [(c.name, c.consumption) for c in graph.incoming(actor.name)]
        for actor in actors
    }
    outputs = {
        actor.name: [(c.name, c.production) for c in graph.outgoing(actor.name)]
        for actor in actors
    }
    remaining = {actor.name: int(repetitions[actor.name]) for actor in actors}
    clocks = {actor.name: 0 for actor in actors}  # 0 idle, >0 time left
    exec_time = {actor.name: actor.execution_time for actor in actors}

    space_blocked: set[str] = set()
    space_deficits: dict[str, int] = {}
    time = 0
    last_completion = 0

    def can_start(name: str) -> bool:
        for channel, rate in inputs[name]:
            if tokens[channel] < rate:
                return False
        blocked = []
        for channel, rate in outputs[name]:
            capacity = caps[channel]
            if capacity is not None and tokens[channel] + rate > capacity:
                blocked.append((channel, tokens[channel] + rate - capacity))
        if blocked:
            for channel, deficit in blocked:
                space_blocked.add(channel)
                known = space_deficits.get(channel)
                if known is None or deficit < known:
                    space_deficits[channel] = deficit
            return False
        return True

    def finish(name: str) -> None:
        for channel, rate in inputs[name]:
            tokens[channel] -= rate
        for channel, rate in outputs[name]:
            tokens[channel] += rate

    while True:
        # Start every enabled quota-holding actor; zero-time firings
        # complete immediately and may cascade within the instant.
        fired_this_instant = 0
        progress = True
        while progress:
            progress = False
            for actor in actors:
                name = actor.name
                if clocks[name] != 0 or remaining[name] <= 0:
                    continue
                if not can_start(name):
                    continue
                fired_this_instant += 1
                if fired_this_instant > _MAX_FIRINGS_PER_INSTANT:
                    raise EngineError(
                        "zero-execution-time cascade diverges in makespan"
                        " simulation (internal error)"
                    )
                remaining[name] -= 1
                if exec_time[name] == 0:
                    finish(name)
                    last_completion = time
                    progress = True
                else:
                    clocks[name] = exec_time[name]

        if all(count == 0 for count in remaining.values()) and not any(
            clock > 0 for clock in clocks.values()
        ):
            return MakespanResult(
                last_completion, False, frozenset(space_blocked), dict(space_deficits)
            )

        busy = [clock for clock in clocks.values() if clock > 0]
        if not busy:
            # Quotas unmet and nothing running: the iteration deadlocks.
            return MakespanResult(
                None, True, frozenset(space_blocked), dict(space_deficits)
            )
        delta = min(busy)
        time += delta
        for name in clocks:
            if clocks[name] > 0:
                clocks[name] -= delta
                if clocks[name] == 0:
                    finish(name)
                    last_completion = time
