"""Scenario-aware dataflow graphs (FSM-SADF).

An :class:`SADFGraph` is a finite set of named *scenarios* over one
shared actor/channel *skeleton*: every scenario binds a full SDF
rate + execution-time assignment to the same actors and channels
(Skelin/Geilen, arXiv:1404.0089).  Which scenario sequences the
application may execute is described by a
:class:`~repro.sadf.fsm.ScenarioFSM` over the scenario names, with
optional integer delays on its transitions (mode-transition overhead in
the sense of Jung/Oh/Ha, arXiv:1603.05775).

Each scenario materialises as an ordinary validated
:class:`~repro.graph.graph.SDFGraph` (:meth:`SADFGraph
.scenario_graph`), so the whole existing analysis stack — executor,
evaluation service, bounds, Pareto machinery — applies per scenario
unchanged.  Because the skeleton fixes the channel set, one
:class:`~repro.buffers.distribution.StorageDistribution` prices every
scenario at once, which is what the all-scenario buffer sizing of
:mod:`repro.sadf.explorer` trades against worst-case throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.analysis.consistency import assert_consistent
from repro.analysis.repetitions import repetition_vector
from repro.exceptions import GraphError, ValidationError
from repro.graph.graph import SDFGraph
from repro.sadf.fsm import ScenarioFSM


@dataclass(frozen=True)
class SADFActor:
    """A skeleton actor: a name shared by every scenario."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("actor name must be non-empty")


@dataclass(frozen=True)
class SADFChannel:
    """A skeleton channel: topology and initial tokens are scenario-
    independent; the rates live on the scenarios."""

    name: str
    source: str
    destination: str
    initial_tokens: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("channel name must be non-empty")
        if not isinstance(self.initial_tokens, int) or isinstance(self.initial_tokens, bool):
            raise GraphError(f"channel {self.name!r}: initial tokens must be int")
        if self.initial_tokens < 0:
            raise GraphError(f"channel {self.name!r}: initial tokens must be >= 0")


@dataclass(frozen=True)
class Scenario:
    """One named rate/execution-time binding over the skeleton.

    All three mappings are *total* over the skeleton (the graph fills
    unmentioned actors/channels with the default of 1 at
    :meth:`SADFGraph.add_scenario` time), so a scenario always defines
    a complete SDF graph.
    """

    name: str
    execution_times: Mapping[str, int]
    productions: Mapping[str, int]
    consumptions: Mapping[str, int]


class SADFGraph:
    """A scenario-aware dataflow graph: skeleton + scenarios + FSM."""

    def __init__(self, name: str = "sadf"):
        if not name:
            raise GraphError("graph name must be non-empty")
        self.name = name
        self._actors: dict[str, SADFActor] = {}
        self._channels: dict[str, SADFChannel] = {}
        self._scenarios: dict[str, Scenario] = {}
        self._graphs: dict[str, SDFGraph] = {}
        self._repetitions: dict[str, dict[str, int]] = {}
        self._fsm: ScenarioFSM | None = None

    # -- skeleton construction --------------------------------------------
    def add_actor(self, name: str) -> SADFActor:
        """Add a skeleton actor (execution times come per scenario)."""
        if name in self._actors:
            raise GraphError(f"duplicate actor name {name!r}")
        if self._scenarios:
            raise GraphError(
                "the skeleton is frozen once the first scenario is added"
            )
        actor = SADFActor(name)
        self._actors[name] = actor
        return actor

    def add_channel(
        self,
        source: str,
        destination: str,
        initial_tokens: int = 0,
        name: str | None = None,
    ) -> SADFChannel:
        """Connect *source* to *destination* (rates come per scenario)."""
        if source not in self._actors:
            raise GraphError(f"unknown source actor {source!r}")
        if destination not in self._actors:
            raise GraphError(f"unknown destination actor {destination!r}")
        if self._scenarios:
            raise GraphError(
                "the skeleton is frozen once the first scenario is added"
            )
        if name is None:
            index = len(self._channels)
            while f"ch{index}" in self._channels:
                index += 1
            name = f"ch{index}"
        if name in self._channels:
            raise GraphError(f"duplicate channel name {name!r}")
        channel = SADFChannel(name, source, destination, initial_tokens)
        self._channels[name] = channel
        return channel

    # -- scenarios ----------------------------------------------------------
    def add_scenario(
        self,
        name: str,
        execution_times: Mapping[str, int] | None = None,
        productions: Mapping[str, int] | None = None,
        consumptions: Mapping[str, int] | None = None,
    ) -> Scenario:
        """Bind one scenario; unmentioned actors/channels default to 1.

        The scenario's SDF graph is built and validated immediately:
        unknown actor/channel names raise
        :class:`~repro.exceptions.ValidationError`, and an inconsistent
        rate assignment raises
        :class:`~repro.exceptions.InconsistentGraphError` — a scenario
        that cannot execute never enters the graph.
        """
        if not name:
            raise GraphError("scenario name must be non-empty")
        if name in self._scenarios:
            raise GraphError(f"duplicate scenario name {name!r}")
        if not self._actors:
            raise GraphError("add actors and channels before scenarios")
        times = self._total(name, "execution time", execution_times, self._actors, 0)
        prods = self._total(name, "production rate", productions, self._channels, 1)
        cons = self._total(name, "consumption rate", consumptions, self._channels, 1)
        scenario = Scenario(name, times, prods, cons)
        graph = self._build(scenario)
        assert_consistent(graph)  # InconsistentGraphError on bad rates
        self._scenarios[name] = scenario
        self._graphs[name] = graph
        return scenario

    def _total(
        self,
        scenario: str,
        what: str,
        given: Mapping[str, int] | None,
        domain: Mapping[str, object],
        minimum: int,
    ) -> Mapping[str, int]:
        """A total mapping over *domain*, validated, defaulting to 1."""
        values = dict.fromkeys(domain, 1)
        for key, value in (given or {}).items():
            if key not in domain:
                kind = "actor" if minimum == 0 else "channel"
                raise ValidationError(
                    f"scenario {scenario!r}: {what} names unknown {kind} {key!r}"
                )
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValidationError(
                    f"scenario {scenario!r}: {what} of {key!r} must be int"
                )
            if value < minimum:
                raise ValidationError(
                    f"scenario {scenario!r}: {what} of {key!r} must be >= {minimum}"
                )
            values[key] = value
        return values

    def _build(self, scenario: Scenario) -> SDFGraph:
        graph = SDFGraph(f"{self.name}@{scenario.name}")
        for actor in self._actors:
            graph.add_actor(actor, scenario.execution_times[actor])
        for channel in self._channels.values():
            graph.add_channel(
                channel.source,
                channel.destination,
                scenario.productions[channel.name],
                scenario.consumptions[channel.name],
                channel.initial_tokens,
                name=channel.name,
            )
        return graph

    def scenario_graph(self, name: str) -> SDFGraph:
        """The validated SDF graph of scenario *name*."""
        try:
            return self._graphs[name]
        except KeyError:
            raise GraphError(
                f"unknown scenario {name!r};"
                f" available: {', '.join(self._scenarios) or 'none'}"
            ) from None

    def scenario_repetitions(self, name: str) -> dict[str, int]:
        """The repetition vector of scenario *name* (cached)."""
        if name not in self._repetitions:
            self._repetitions[name] = repetition_vector(self.scenario_graph(name))
        return self._repetitions[name]

    # -- FSM ----------------------------------------------------------------
    def set_fsm(self, fsm: ScenarioFSM) -> None:
        """Attach the scenario FSM; every state must name a scenario."""
        unknown = sorted(set(fsm.states) - set(self._scenarios))
        if unknown:
            raise GraphError(
                f"FSM references unknown scenario(s): {', '.join(unknown)}"
            )
        self._fsm = fsm

    @property
    def fsm(self) -> ScenarioFSM | None:
        """The attached FSM, or ``None`` when every sequence is allowed."""
        return self._fsm

    def effective_fsm(self) -> ScenarioFSM:
        """The attached FSM, or the default *any order* automaton: fully
        connected with zero-delay transitions over every scenario."""
        if self._fsm is not None:
            return self._fsm
        if not self._scenarios:
            raise GraphError(f"SADF graph {self.name!r} has no scenarios")
        return ScenarioFSM.complete(tuple(self._scenarios))

    @property
    def is_single_scenario(self) -> bool:
        """True iff the graph degenerates to plain SDF: one scenario and
        an FSM that only ever repeats it with zero transition delay."""
        if len(self._scenarios) != 1:
            return False
        fsm = self.effective_fsm()
        (only,) = self._scenarios
        return (
            tuple(fsm.states) == (only,)
            and all(t.delay == 0 for t in fsm.transitions)
        )

    # -- access -------------------------------------------------------------
    @property
    def actors(self) -> Mapping[str, SADFActor]:
        """Skeleton actors by name, in insertion order."""
        return self._actors

    @property
    def channels(self) -> Mapping[str, SADFChannel]:
        """Skeleton channels by name, in insertion order."""
        return self._channels

    @property
    def scenarios(self) -> Mapping[str, Scenario]:
        """Scenarios by name, in insertion order."""
        return self._scenarios

    @property
    def actor_names(self) -> list[str]:
        return list(self._actors)

    @property
    def channel_names(self) -> list[str]:
        return list(self._channels)

    @property
    def scenario_names(self) -> list[str]:
        return list(self._scenarios)

    def validate(self) -> None:
        """Whole-graph check: scenarios exist and the FSM refers only to
        them (individual scenarios were validated on entry)."""
        if not self._scenarios:
            raise GraphError(f"SADF graph {self.name!r} has no scenarios")
        fsm = self.effective_fsm()
        unknown = sorted(set(fsm.states) - set(self._scenarios))
        if unknown:
            raise GraphError(
                f"FSM references unknown scenario(s): {', '.join(unknown)}"
            )

    def describe(self) -> str:
        """Multi-line human-readable description."""
        lines = [
            f"SADFGraph {self.name!r}: {len(self._actors)} actors,"
            f" {len(self._channels)} channels, {len(self._scenarios)} scenario(s)"
        ]
        for channel in self._channels.values():
            tokens = f" [{channel.initial_tokens} tok]" if channel.initial_tokens else ""
            lines.append(
                f"  channel {channel.name}: {channel.source} -> {channel.destination}{tokens}"
            )
        for scenario in self._scenarios.values():
            rates = ", ".join(
                f"{name}={scenario.productions[name]}:{scenario.consumptions[name]}"
                for name in self._channels
            )
            lines.append(f"  scenario {scenario.name}: {rates}")
        if self._fsm is not None:
            lines.append(f"  fsm: {self._fsm.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SADFGraph({self.name!r}, actors={len(self._actors)},"
            f" channels={len(self._channels)}, scenarios={len(self._scenarios)})"
        )


def from_sdf(graph: SDFGraph, scenario: str = "default") -> SADFGraph:
    """Lift an SDF graph into a single-scenario SADF graph.

    The result is *degenerate*: its (single-state, zero-delay) FSM
    accepts exactly the sequence ``scenario, scenario, ...``, so every
    analysis reduces to the plain SDF one —
    :func:`repro.sadf.explorer.explore_design_space` reproduces the SDF
    Pareto front bit-for-bit on such graphs.
    """
    lifted = SADFGraph(graph.name)
    for actor in graph.actors.values():
        lifted.add_actor(actor.name)
    for channel in graph.channels.values():
        lifted.add_channel(
            channel.source,
            channel.destination,
            channel.initial_tokens,
            name=channel.name,
        )
    lifted.add_scenario(
        scenario,
        execution_times={a.name: a.execution_time for a in graph.actors.values()},
        productions={c.name: c.production for c in graph.channels.values()},
        consumptions={c.name: c.consumption for c in graph.channels.values()},
    )
    lifted.set_fsm(ScenarioFSM.single(scenario))
    return lifted
