"""Worst-case throughput of an FSM-SADF graph over all accepted
scenario sequences.

**Switch-barrier semantics.**  While the FSM keeps taking a zero-delay
self-loop on scenario *s*, the graph executes *s*'s SDF semantics
self-timed and pipelined — its long-run rate is the familiar
steady-state throughput ``thr_s(d)`` under storage distribution *d*.
Taking any other transition drains the pipeline: the current iteration
completes (returning every channel to its initial marking), the
transition delay elapses, and the next scenario starts afresh.  One
barriered iteration of *s* therefore costs its *iteration makespan*
``ms_s(d)`` (:mod:`repro.sadf.makespan`).

**Worst case.**  Any infinite accepted sequence decomposes into
residences (self-looping on one scenario) and switching tours (cycles
of the FSM).  Its long-run observed rate is bounded from below by

* ``thr_s(d)`` for every reachable scenario *s* with a zero-delay
  self-loop, and
* ``ratio_C(d) = (sum of observed firings) / (sum of makespans + sum
  of delays)`` for every simple cycle *C* of the reachable sub-FSM,

and the bound is attained (stay forever in the worst residence, or
tour the worst cycle forever).  By the mediant inequality the ratio of
any composite cycle is at least the minimum over the simple cycles it
decomposes into, so the minimum over the two families above *is* the
exact worst case under this protocol.

**Conservative fallback.**  A densely connected FSM (in particular a
fully connected one, where every switching order is accepted) has
exponentially many simple cycles.  Beyond
:data:`~repro.sadf.fsm.MAX_ENUMERATED_CYCLES` the analysis returns the
per-scenario minimum ``min_s min(thr_s(d), r_s / (ms_s(d) + D))`` with
``D`` the largest transition delay — a sound lower bound on every
residence rate and every cycle ratio (each cycle term is at least the
minimum of its per-scenario mediants), flagged ``fallback=True``.

Every quantity is exact (:class:`fractions.Fraction`), and every
component is monotone in *d* (more buffer space never slows the
self-timed execution), so the worst case is monotone too — which is
what lets the Pareto machinery of :mod:`repro.sadf.explorer` prune.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from collections.abc import Callable, Mapping

from repro.engine.executor import Executor
from repro.exceptions import GraphError
from repro.sadf.fsm import MAX_ENUMERATED_CYCLES
from repro.sadf.graph import SADFGraph
from repro.sadf.makespan import MakespanResult, iteration_makespan


@dataclass(frozen=True)
class CycleRatio:
    """Long-run rate of touring one FSM cycle forever.

    ``states`` lists the scenarios visited (in order), ``firings`` the
    observed-actor completions per tour, ``duration`` the tour's total
    time (makespans plus delays).  A ``None`` duration marks a tour
    through a scenario whose iteration deadlocks (rate 0).
    """

    states: tuple[str, ...]
    firings: int
    duration: int | None
    delay: int

    @property
    def ratio(self) -> Fraction:
        if self.duration is None or self.duration <= 0:
            return Fraction(0) if self.duration is None else Fraction(self.firings, 1)
        return Fraction(self.firings, self.duration)


@dataclass(frozen=True)
class WorstCaseReport:
    """Full worst-case throughput decomposition at one distribution."""

    observe: str
    worst_case: Fraction
    per_scenario: Mapping[str, Fraction]
    makespans: Mapping[str, int | None]
    cycles: tuple[CycleRatio, ...]
    critical: str
    fallback: bool

    def summary(self) -> str:
        lines = [f"worst-case throughput of {self.observe!r}: {self.worst_case}"]
        for name, value in self.per_scenario.items():
            makespan = self.makespans.get(name)
            lines.append(
                f"  scenario {name}: steady-state {value},"
                f" iteration makespan {makespan if makespan is not None else 'deadlock'}"
            )
        for cycle in self.cycles:
            lines.append(
                f"  cycle {' -> '.join(cycle.states)}: {cycle.firings} firing(s)"
                f" / {cycle.duration if cycle.duration is not None else 'deadlock'}"
                f" (+{cycle.delay} delay) = {cycle.ratio}"
            )
        lines.append(
            f"  binding constraint: {self.critical}"
            + (" [conservative fallback]" if self.fallback else "")
        )
        return "\n".join(lines)


def worst_case_throughput(
    sadf: SADFGraph,
    distribution: Mapping[str, int],
    observe: str | None = None,
    *,
    throughputs: Callable[[str], Fraction] | None = None,
    makespans: Callable[[str], MakespanResult] | None = None,
    cycle_limit: int = MAX_ENUMERATED_CYCLES,
) -> WorstCaseReport:
    """Exact worst-case throughput of *sadf* at *distribution*.

    ``throughputs`` / ``makespans`` optionally supply memoised
    per-scenario oracles (the explorer's evaluation services); by
    default each scenario is executed directly with the reference
    engine.  Both must price exactly the given distribution.
    """
    sadf.validate()
    if observe is None:
        observe = sadf.actor_names[-1]
    if observe not in sadf.actors:
        raise GraphError(f"SADF graph {sadf.name!r} has no actor {observe!r}")

    fsm = sadf.effective_fsm()
    reachable = fsm.reachable()

    def scenario_throughput(name: str) -> Fraction:
        if throughputs is not None:
            return throughputs(name)
        graph = sadf.scenario_graph(name)
        return Executor(graph, dict(distribution), observe).run().throughput

    def scenario_makespan(name: str) -> MakespanResult:
        if makespans is not None:
            return makespans(name)
        return iteration_makespan(
            sadf.scenario_graph(name),
            distribution,
            sadf.scenario_repetitions(name),
        )

    per_scenario = {name: scenario_throughput(name) for name in reachable}
    makespan_results = {name: scenario_makespan(name) for name in reachable}
    makespan_times = {name: r.time for name, r in makespan_results.items()}
    firings = {
        name: sadf.scenario_repetitions(name)[observe] for name in reachable
    }

    # A reachable scenario that deadlocks — in steady state or within
    # one barriered iteration — pins the worst case to zero outright.
    for name in reachable:
        if per_scenario[name] == 0 or makespan_times[name] is None:
            return WorstCaseReport(
                observe,
                Fraction(0),
                per_scenario,
                makespan_times,
                (),
                f"scenario {name!r} deadlocks at this distribution",
                False,
            )

    cycles, truncated = fsm.simple_cycles(limit=cycle_limit)
    if truncated:
        # Conservative fallback: lower-bounds every residence rate and
        # every cycle ratio (see the module docstring).
        ceiling_delay = fsm.max_delay
        bound: Fraction | None = None
        critical = ""
        for name in reachable:
            candidate = min(
                per_scenario[name],
                Fraction(firings[name], makespan_times[name] + ceiling_delay)
                if makespan_times[name] + ceiling_delay > 0
                else per_scenario[name],
            )
            if bound is None or candidate < bound:
                bound = candidate
                critical = f"per-scenario fallback bound of {name!r}"
        assert bound is not None
        return WorstCaseReport(
            observe, bound, per_scenario, makespan_times, (), critical, True
        )

    candidates: list[tuple[Fraction, str]] = []
    for name in reachable:
        if fsm.has_zero_delay_self_loop(name):
            candidates.append(
                (per_scenario[name], f"residence in scenario {name!r}")
            )

    cycle_ratios: list[CycleRatio] = []
    for cycle in cycles:
        states = tuple(t.source for t in cycle)
        delay = sum(t.delay for t in cycle)
        duration = sum(makespan_times[s] for s in states) + delay
        ratio = CycleRatio(
            states,
            sum(firings[s] for s in states),
            duration,
            delay,
        )
        cycle_ratios.append(ratio)
        candidates.append(
            (ratio.ratio, f"switching cycle {' -> '.join(states)}")
        )

    if not candidates:
        # No self-loop and no cycle: every accepted sequence is finite
        # (the FSM runs into a dead end).  Long-run throughput is then
        # determined by the last scenario it can stay in — there is
        # none, so the worst case degenerates to the slowest barriered
        # iteration rate (a sound, conservative reading).
        worst = min(
            Fraction(firings[s], makespan_times[s])
            if makespan_times[s] > 0
            else per_scenario[s]
            for s in reachable
        )
        return WorstCaseReport(
            observe,
            worst,
            per_scenario,
            makespan_times,
            (),
            "FSM has no infinite behaviour; slowest barriered iteration",
            True,
        )

    worst, critical = min(candidates, key=lambda item: item[0])
    return WorstCaseReport(
        observe,
        worst,
        per_scenario,
        makespan_times,
        tuple(cycle_ratios),
        critical,
        False,
    )
