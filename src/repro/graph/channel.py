"""SDF channels.

A channel is an unbounded (until a storage distribution is imposed)
FIFO edge from one actor's output port to another actor's input port.
It may contain *initial tokens* present before execution starts; these
are essential for expressing feedback loops and pipelining.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import GraphError


@dataclass(frozen=True)
class Channel:
    """A FIFO edge of an SDF graph.

    Parameters
    ----------
    name:
        Channel name, unique within the graph.
    source:
        Name of the producing actor.
    destination:
        Name of the consuming actor.
    production:
        Tokens produced per firing of the source actor (rate of the
        source port).
    consumption:
        Tokens consumed per firing of the destination actor (rate of the
        destination port).
    initial_tokens:
        Number of tokens on the channel at time zero.
    source_port / destination_port:
        Names of the connected ports on the endpoint actors.
    """

    name: str
    source: str
    destination: str
    production: int
    consumption: int
    initial_tokens: int = 0
    source_port: str = ""
    destination_port: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("channel name must be non-empty")
        for label, rate in (("production", self.production), ("consumption", self.consumption)):
            if not isinstance(rate, int) or isinstance(rate, bool):
                raise GraphError(f"channel {self.name!r}: {label} rate must be int")
            if rate <= 0:
                raise GraphError(f"channel {self.name!r}: {label} rate must be positive, got {rate}")
        if not isinstance(self.initial_tokens, int) or isinstance(self.initial_tokens, bool):
            raise GraphError(f"channel {self.name!r}: initial tokens must be int")
        if self.initial_tokens < 0:
            raise GraphError(f"channel {self.name!r}: initial tokens must be >= 0, got {self.initial_tokens}")

    @property
    def is_self_loop(self) -> bool:
        """Whether source and destination are the same actor."""
        return self.source == self.destination

    def __str__(self) -> str:
        tokens = f" [{self.initial_tokens} tok]" if self.initial_tokens else ""
        return f"{self.name}: {self.source} -{self.production}-> {self.consumption}- {self.destination}{tokens}"
