"""Fluent construction of SDF graphs.

Example
-------
The running example of the paper (Fig. 1)::

    graph = (
        GraphBuilder("example")
        .actor("a", execution_time=1)
        .actor("b", execution_time=2)
        .actor("c", execution_time=2)
        .channel("a", "b", production=2, consumption=3, name="alpha")
        .channel("b", "c", production=1, consumption=2, name="beta")
        .build()
    )
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.exceptions import GraphError
from repro.graph.graph import SDFGraph
from repro.graph.validation import validate_graph


class GraphBuilder:
    """Incrementally assemble a validated :class:`SDFGraph`."""

    def __init__(self, name: str = "sdf"):
        self._graph = SDFGraph(name)
        self._built = False

    def actor(self, name: str, execution_time: int = 1) -> "GraphBuilder":
        """Add an actor with the given execution time."""
        self._check_open()
        self._graph.add_actor(name, execution_time)
        return self

    def actors(self, execution_times: Mapping[str, int]) -> "GraphBuilder":
        """Add several actors from a ``{name: execution_time}`` mapping."""
        self._check_open()
        for name, time in execution_times.items():
            self._graph.add_actor(name, time)
        return self

    def channel(
        self,
        source: str,
        destination: str,
        production: int = 1,
        consumption: int = 1,
        initial_tokens: int = 0,
        name: str | None = None,
    ) -> "GraphBuilder":
        """Add a channel; rates default to 1 (homogeneous edge)."""
        self._check_open()
        self._graph.add_channel(source, destination, production, consumption, initial_tokens, name)
        return self

    def chain(self, *actors: str, production: int = 1, consumption: int = 1) -> "GraphBuilder":
        """Connect consecutive actors with uniform-rate channels."""
        self._check_open()
        if len(actors) < 2:
            raise GraphError("chain() needs at least two actors")
        for src, dst in zip(actors, actors[1:]):
            self._graph.add_channel(src, dst, production, consumption)
        return self

    def self_loop(self, actor: str, tokens: int = 1, name: str | None = None) -> "GraphBuilder":
        """Add a rate-1 self-loop with *tokens* initial tokens.

        A token-1 self-loop is the standard encoding of "no
        auto-concurrency" when exporting to tools whose semantics allow
        auto-concurrent firings; the execution engine of this library
        forbids auto-concurrency natively, so self-loops are only needed
        to model explicit state.
        """
        self._check_open()
        self._graph.add_channel(actor, actor, 1, 1, tokens, name)
        return self

    def build(self, validate: bool = True) -> SDFGraph:
        """Finish construction, optionally running structural validation."""
        self._check_open()
        if validate:
            validate_graph(self._graph)
        self._built = True
        return self._graph

    def _check_open(self) -> None:
        if self._built:
            raise GraphError("builder already produced its graph; create a new GraphBuilder")
