"""Rate-annotated actor ports.

Every channel endpoint is a port on an actor.  A port has a direction
(input or output) and a *rate*: the fixed number of tokens consumed from
or produced onto the connected channel per firing.  The constant-rate
property is what makes the dataflow graph *synchronous* (Lee &
Messerschmitt, 1987).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import GraphError


class PortDirection(enum.Enum):
    """Direction of a port relative to its owning actor."""

    INPUT = "in"
    OUTPUT = "out"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Port:
    """A fixed-rate connection point on an actor.

    Parameters
    ----------
    name:
        Port name, unique within the owning actor.
    direction:
        :class:`PortDirection.INPUT` or :class:`PortDirection.OUTPUT`.
    rate:
        Number of tokens moved per firing; must be a positive integer.
    """

    name: str
    direction: PortDirection
    rate: int

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("port name must be non-empty")
        if not isinstance(self.rate, int) or isinstance(self.rate, bool):
            raise GraphError(f"port {self.name!r}: rate must be int, got {type(self.rate).__name__}")
        if self.rate <= 0:
            raise GraphError(f"port {self.name!r}: rate must be positive, got {self.rate}")

    @property
    def is_input(self) -> bool:
        """Whether this port consumes tokens."""
        return self.direction is PortDirection.INPUT

    @property
    def is_output(self) -> bool:
        """Whether this port produces tokens."""
        return self.direction is PortDirection.OUTPUT

    def __str__(self) -> str:
        return f"{self.name}[{self.direction.value},{self.rate}]"
