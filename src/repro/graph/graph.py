"""The :class:`SDFGraph` container.

An SDF graph is a pair ``(A, C)`` of actors and channels (Sec. 2).  The
container keeps both in insertion order, which fixes the index layout
used throughout the execution engine: actor ``i`` / channel ``j`` always
refer to the same positions in state vectors.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.exceptions import GraphError
from repro.graph.actor import Actor
from repro.graph.channel import Channel
from repro.graph.port import Port, PortDirection


class SDFGraph:
    """A Synchronous Dataflow graph.

    Instances are usually created through
    :class:`~repro.graph.builder.GraphBuilder`; direct use of
    :meth:`add_actor` / :meth:`add_channel` is supported for
    programmatic construction.

    The class maintains per-actor adjacency (incoming / outgoing
    channels) and stable integer indices for actors and channels, which
    the execution engine relies on.
    """

    def __init__(self, name: str = "sdf"):
        if not name:
            raise GraphError("graph name must be non-empty")
        self.name = name
        self._actors: dict[str, Actor] = {}
        self._channels: dict[str, Channel] = {}
        self._outgoing: dict[str, list[Channel]] = {}
        self._incoming: dict[str, list[Channel]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_actor(self, actor: Actor | str, execution_time: int | None = None) -> Actor:
        """Add an actor, given either an :class:`Actor` or a name.

        When a name is given, *execution_time* defaults to 1.
        """
        if isinstance(actor, str):
            actor = Actor(actor, 1 if execution_time is None else execution_time)
        elif execution_time is not None:
            raise GraphError("execution_time may only be given together with an actor name")
        if actor.name in self._actors:
            raise GraphError(f"duplicate actor name {actor.name!r}")
        self._actors[actor.name] = actor
        self._outgoing[actor.name] = []
        self._incoming[actor.name] = []
        return actor

    def add_channel(
        self,
        source: str,
        destination: str,
        production: int,
        consumption: int,
        initial_tokens: int = 0,
        name: str | None = None,
    ) -> Channel:
        """Connect *source* to *destination* with the given rates.

        Ports are created automatically on both endpoint actors.  The
        channel name defaults to ``ch<k>`` with ``k`` the current channel
        count.
        """
        if source not in self._actors:
            raise GraphError(f"unknown source actor {source!r}")
        if destination not in self._actors:
            raise GraphError(f"unknown destination actor {destination!r}")
        if name is None:
            index = len(self._channels)
            while f"ch{index}" in self._channels:
                index += 1
            name = f"ch{index}"
        if name in self._channels:
            raise GraphError(f"duplicate channel name {name!r}")

        src_actor = self._actors[source]
        dst_actor = self._actors[destination]
        src_port = src_actor.add_port(
            Port(src_actor.fresh_port_name(PortDirection.OUTPUT), PortDirection.OUTPUT, production)
        )
        dst_port = dst_actor.add_port(
            Port(dst_actor.fresh_port_name(PortDirection.INPUT), PortDirection.INPUT, consumption)
        )
        channel = Channel(
            name=name,
            source=source,
            destination=destination,
            production=production,
            consumption=consumption,
            initial_tokens=initial_tokens,
            source_port=src_port.name,
            destination_port=dst_port.name,
        )
        self._channels[name] = channel
        self._outgoing[source].append(channel)
        self._incoming[destination].append(channel)
        return channel

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def actors(self) -> Mapping[str, Actor]:
        """Actors by name, in insertion order."""
        return self._actors

    @property
    def channels(self) -> Mapping[str, Channel]:
        """Channels by name, in insertion order."""
        return self._channels

    def actor(self, name: str) -> Actor:
        """The actor called *name*; raises :class:`GraphError` if absent."""
        try:
            return self._actors[name]
        except KeyError:
            raise GraphError(f"unknown actor {name!r}") from None

    def channel(self, name: str) -> Channel:
        """The channel called *name*; raises :class:`GraphError` if absent."""
        try:
            return self._channels[name]
        except KeyError:
            raise GraphError(f"unknown channel {name!r}") from None

    def outgoing(self, actor: str) -> list[Channel]:
        """Channels produced onto by *actor* (insertion order)."""
        if actor not in self._outgoing:
            raise GraphError(f"unknown actor {actor!r}")
        return list(self._outgoing[actor])

    def incoming(self, actor: str) -> list[Channel]:
        """Channels consumed from by *actor* (insertion order)."""
        if actor not in self._incoming:
            raise GraphError(f"unknown actor {actor!r}")
        return list(self._incoming[actor])

    @property
    def actor_names(self) -> list[str]:
        """Actor names in index order."""
        return list(self._actors)

    @property
    def channel_names(self) -> list[str]:
        """Channel names in index order."""
        return list(self._channels)

    def actor_index(self, name: str) -> int:
        """Stable integer index of actor *name*."""
        try:
            return self.actor_names.index(name)
        except ValueError:
            raise GraphError(f"unknown actor {name!r}") from None

    def channel_index(self, name: str) -> int:
        """Stable integer index of channel *name*."""
        try:
            return self.channel_names.index(name)
        except ValueError:
            raise GraphError(f"unknown channel {name!r}") from None

    @property
    def num_actors(self) -> int:
        """``|A|``."""
        return len(self._actors)

    @property
    def num_channels(self) -> int:
        """``|C|``."""
        return len(self._channels)

    def __contains__(self, name: str) -> bool:
        return name in self._actors or name in self._channels

    def __iter__(self) -> Iterator[Actor]:
        return iter(self._actors.values())

    def __len__(self) -> int:
        return len(self._actors)

    # ------------------------------------------------------------------
    # Derivatives
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "SDFGraph":
        """Structural deep copy, optionally renamed."""
        clone = SDFGraph(name or self.name)
        for actor in self._actors.values():
            clone.add_actor(Actor(actor.name, actor.execution_time))
        for channel in self._channels.values():
            clone.add_channel(
                channel.source,
                channel.destination,
                channel.production,
                channel.consumption,
                channel.initial_tokens,
                name=channel.name,
            )
        return clone

    def with_execution_times(self, times: Mapping[str, int]) -> "SDFGraph":
        """A copy in which the listed actors get new execution times."""
        clone = self.copy()
        for actor_name, time in times.items():
            actor = clone.actor(actor_name)
            clone._actors[actor_name] = Actor(actor.name, time, dict(actor.ports))
        return clone

    def with_initial_tokens(self, tokens: Mapping[str, int]) -> "SDFGraph":
        """A copy in which the listed channels get new initial tokens."""
        clone = SDFGraph(self.name)
        for actor in self._actors.values():
            clone.add_actor(Actor(actor.name, actor.execution_time))
        for channel in self._channels.values():
            clone.add_channel(
                channel.source,
                channel.destination,
                channel.production,
                channel.consumption,
                tokens.get(channel.name, channel.initial_tokens),
                name=channel.name,
            )
        return clone

    def to_networkx(self):
        """A :class:`networkx.MultiDiGraph` view (channels as edges)."""
        import networkx as nx

        nxg = nx.MultiDiGraph(name=self.name)
        for actor in self._actors.values():
            nxg.add_node(actor.name, execution_time=actor.execution_time)
        for channel in self._channels.values():
            nxg.add_edge(
                channel.source,
                channel.destination,
                key=channel.name,
                production=channel.production,
                consumption=channel.consumption,
                initial_tokens=channel.initial_tokens,
            )
        return nxg

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human-readable description of the graph."""
        lines = [f"SDFGraph {self.name!r}: {self.num_actors} actors, {self.num_channels} channels"]
        for actor in self._actors.values():
            lines.append(f"  actor   {actor}")
        for channel in self._channels.values():
            lines.append(f"  channel {channel}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"SDFGraph({self.name!r}, actors={self.num_actors}, channels={self.num_channels})"


def merge_graphs(graphs: Iterable[SDFGraph], name: str = "merged") -> SDFGraph:
    """Disjoint union of several SDF graphs.

    Actor and channel names are prefixed with ``<graph name>.`` to keep
    them unique.  Useful for multi-application analyses.
    """
    merged = SDFGraph(name)
    for graph in graphs:
        prefix = f"{graph.name}."
        for actor in graph.actors.values():
            merged.add_actor(Actor(prefix + actor.name, actor.execution_time))
        for channel in graph.channels.values():
            merged.add_channel(
                prefix + channel.source,
                prefix + channel.destination,
                channel.production,
                channel.consumption,
                channel.initial_tokens,
                name=prefix + channel.name,
            )
    return merged
