"""Structural validation of SDF graphs.

These checks are purely structural: rate positivity, endpoint
existence, port/channel cross-references.  *Behavioural* sanity
(consistency, deadlock-freedom) lives in :mod:`repro.analysis`.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.graph.graph import SDFGraph


def validate_graph(graph: SDFGraph) -> None:
    """Raise :class:`ValidationError` when *graph* is malformed.

    Checks performed:

    * at least one actor;
    * every channel endpoint names an existing actor;
    * channel port references resolve and have the matching direction
      and rate;
    * no actor port is shared between two channels.
    """
    if graph.num_actors == 0:
        raise ValidationError(f"graph {graph.name!r} has no actors")

    used_ports: set[tuple[str, str]] = set()
    for channel in graph.channels.values():
        if channel.source not in graph.actors:
            raise ValidationError(f"channel {channel.name!r}: unknown source actor {channel.source!r}")
        if channel.destination not in graph.actors:
            raise ValidationError(
                f"channel {channel.name!r}: unknown destination actor {channel.destination!r}"
            )
        _check_port(graph, channel.name, channel.source, channel.source_port, channel.production, output=True)
        _check_port(
            graph, channel.name, channel.destination, channel.destination_port, channel.consumption, output=False
        )
        for endpoint in ((channel.source, channel.source_port), (channel.destination, channel.destination_port)):
            if endpoint in used_ports:
                raise ValidationError(
                    f"port {endpoint[1]!r} of actor {endpoint[0]!r} is connected to more than one channel"
                )
            used_ports.add(endpoint)


def _check_port(
    graph: SDFGraph, channel_name: str, actor_name: str, port_name: str, rate: int, output: bool
) -> None:
    actor = graph.actor(actor_name)
    port = actor.ports.get(port_name)
    if port is None:
        raise ValidationError(
            f"channel {channel_name!r}: actor {actor_name!r} has no port {port_name!r}"
        )
    if port.is_output != output:
        expected = "output" if output else "input"
        raise ValidationError(
            f"channel {channel_name!r}: port {port_name!r} of {actor_name!r} is not an {expected} port"
        )
    if port.rate != rate:
        raise ValidationError(
            f"channel {channel_name!r}: rate mismatch on port {port_name!r} of {actor_name!r}"
            f" (port says {port.rate}, channel says {rate})"
        )
