"""SDF actors.

An actor is a function that fires by consuming a fixed number of tokens
from each input port and producing a fixed number on each output port.
The time one firing takes is the actor's *execution time*, a natural
number of discrete time steps (Sec. 2 of the paper).  Auto-concurrency
is disallowed by the execution model: a new firing may only start after
the previous one completed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import GraphError
from repro.graph.port import Port, PortDirection


@dataclass
class Actor:
    """A node of an SDF graph.

    Parameters
    ----------
    name:
        Actor name, unique within the graph.
    execution_time:
        Number of discrete time steps one firing takes.  Zero is
        permitted (instantaneous actors); the execution engine handles
        them by completing the firing in the same time step it starts.
    ports:
        Mapping of port name to :class:`~repro.graph.port.Port`.
        Normally populated by :class:`~repro.graph.builder.GraphBuilder`
        when channels are attached.
    """

    name: str
    execution_time: int = 1
    ports: dict[str, Port] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("actor name must be non-empty")
        if not isinstance(self.execution_time, int) or isinstance(self.execution_time, bool):
            raise GraphError(
                f"actor {self.name!r}: execution time must be int, got {type(self.execution_time).__name__}"
            )
        if self.execution_time < 0:
            raise GraphError(f"actor {self.name!r}: execution time must be >= 0, got {self.execution_time}")

    def add_port(self, port: Port) -> Port:
        """Attach *port* to this actor; the name must be unused."""
        if port.name in self.ports:
            raise GraphError(f"actor {self.name!r} already has a port named {port.name!r}")
        self.ports[port.name] = port
        return port

    def input_ports(self) -> list[Port]:
        """All input ports, in insertion order."""
        return [p for p in self.ports.values() if p.is_input]

    def output_ports(self) -> list[Port]:
        """All output ports, in insertion order."""
        return [p for p in self.ports.values() if p.is_output]

    def fresh_port_name(self, direction: PortDirection) -> str:
        """Generate an unused port name like ``in0`` / ``out3``."""
        prefix = direction.value
        index = 0
        while f"{prefix}{index}" in self.ports:
            index += 1
        return f"{prefix}{index}"

    def copy(self) -> "Actor":
        """Deep copy (ports are immutable, so a dict copy suffices)."""
        return Actor(self.name, self.execution_time, dict(self.ports))

    def __str__(self) -> str:
        return f"{self.name}(t={self.execution_time})"
