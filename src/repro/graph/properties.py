"""Structural graph properties.

Convenience queries on the topology of an SDF graph: connectivity,
cycles, source/sink actors, topological order.  Several analyses use
these (e.g. maximal-throughput computation distinguishes cyclic from
acyclic graphs).
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import GraphError
from repro.graph.graph import SDFGraph


def is_weakly_connected(graph: SDFGraph) -> bool:
    """Whether the undirected skeleton is a single component."""
    if graph.num_actors == 0:
        raise GraphError("empty graph")
    if graph.num_actors == 1:
        return True
    return nx.is_weakly_connected(graph.to_networkx())


def weakly_connected_components(graph: SDFGraph) -> list[set[str]]:
    """Actor-name sets of the weakly connected components."""
    return [set(comp) for comp in nx.weakly_connected_components(graph.to_networkx())]


def is_acyclic(graph: SDFGraph, ignore_initial_tokens: bool = False) -> bool:
    """Whether the graph has no directed cycle.

    With *ignore_initial_tokens* set, channels carrying initial tokens
    are removed first; the result then says whether the *dependency*
    structure of one iteration is acyclic (initial tokens break the
    precedence imposed by an edge).
    """
    nxg = _dependency_graph(graph, ignore_initial_tokens)
    return nx.is_directed_acyclic_graph(nxg)


def simple_cycles(graph: SDFGraph) -> list[list[str]]:
    """All simple directed cycles, as actor-name lists."""
    return [list(cycle) for cycle in nx.simple_cycles(_dependency_graph(graph, False))]


def source_actors(graph: SDFGraph) -> list[str]:
    """Actors with no incoming channels."""
    return [name for name in graph.actor_names if not graph.incoming(name)]


def sink_actors(graph: SDFGraph) -> list[str]:
    """Actors with no outgoing channels."""
    return [name for name in graph.actor_names if not graph.outgoing(name)]


def topological_order(graph: SDFGraph, ignore_initial_tokens: bool = True) -> list[str]:
    """A topological order of the (token-free) dependency structure.

    Raises :class:`GraphError` when the dependency structure is cyclic,
    i.e. when some cycle carries no initial tokens anywhere — such a
    graph deadlocks immediately.
    """
    nxg = _dependency_graph(graph, ignore_initial_tokens)
    try:
        return list(nx.topological_sort(nxg))
    except nx.NetworkXUnfeasible:
        raise GraphError(
            f"graph {graph.name!r} has a cycle without initial tokens; no topological order exists"
        ) from None


def has_token_free_cycle(graph: SDFGraph) -> bool:
    """Whether some directed cycle carries zero initial tokens in total.

    Such a cycle deadlocks under any storage distribution: every actor
    on it waits for a token that can never be produced.
    """
    nxg = _dependency_graph(graph, ignore_initial_tokens=True)
    return not nx.is_directed_acyclic_graph(nxg)


def _dependency_graph(graph: SDFGraph, ignore_initial_tokens: bool) -> "nx.DiGraph":
    nxg = nx.DiGraph()
    nxg.add_nodes_from(graph.actor_names)
    for channel in graph.channels.values():
        if ignore_initial_tokens and channel.initial_tokens > 0:
            continue
        nxg.add_edge(channel.source, channel.destination)
    return nxg
