"""SDF graph data structures.

This package provides the foundational model objects of the library:

* :class:`~repro.graph.actor.Actor` — a node with a fixed execution time,
* :class:`~repro.graph.port.Port` — a rate-annotated connection point,
* :class:`~repro.graph.channel.Channel` — a FIFO edge with production /
  consumption rates and initial tokens,
* :class:`~repro.graph.graph.SDFGraph` — the graph itself,
* :class:`~repro.graph.builder.GraphBuilder` — a fluent construction API.

The classes mirror the formal definition of Sec. 2 of the paper: an SDF
graph is a pair ``(A, C)`` of actors and channels, each actor port has a
fixed rate, each actor has a fixed execution time in discrete time steps.
"""

from repro.graph.actor import Actor
from repro.graph.builder import GraphBuilder
from repro.graph.channel import Channel
from repro.graph.graph import SDFGraph
from repro.graph.port import Port, PortDirection
from repro.graph.validation import validate_graph

__all__ = [
    "Actor",
    "Channel",
    "GraphBuilder",
    "Port",
    "PortDirection",
    "SDFGraph",
    "validate_graph",
]
