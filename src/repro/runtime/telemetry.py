"""Structured telemetry for long-running explorations.

A :class:`TelemetryHub` is a lightweight event/metrics registry shared
by the run controller, the evaluation service, the worker pool and the
exploration strategies.  Every notable step emits a named event
(``probe_start``, ``probe_finish``, ``cache_hit``, ``prune``,
``frontier_update``, ``pool_restart``, ...); the hub

* keeps a monotonically increasing **counter** per event name,
* aggregates **timers** (count + total seconds) for timed sections,
* optionally forwards every event to a user callback (the
  ``on_event`` field of
  :class:`~repro.runtime.config.ExplorationConfig`), and
* renders everything as one JSON-friendly dict (:meth:`snapshot`) —
  the payload behind the CLI's ``--stats-json``.

The hub never buffers events, so memory stays constant no matter how
long a run lasts; consumers that want a trace simply append events in
their callback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Callable, Mapping

#: Event names emitted by the built-in instrumentation.  User code may
#: emit additional names; these are the ones documented in
#: ``docs/RUNTIME.md``.
KNOWN_EVENTS = (
    "run_start",
    "run_finish",
    "probe_start",
    "probe_finish",
    "cache_hit",
    "prune",
    "frontier_update",
    "pool_restart",
    "pool_fallback",
    "budget_exhausted",
    "checkpoint_saved",
    "checkpoint_restored",
)


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured event: a name, a payload and a relative timestamp."""

    name: str
    data: Mapping[str, object] = field(default_factory=dict)
    elapsed_s: float = 0.0

    def to_dict(self) -> dict:
        return {"event": self.name, "elapsed_s": self.elapsed_s, **dict(self.data)}


class TelemetryHub:
    """Counters, timers and an optional event callback.

    Parameters
    ----------
    on_event:
        Called with every :class:`TelemetryEvent` as it happens.
        Exceptions raised by the callback propagate to the emitter —
        telemetry consumers are part of the run and silently swallowing
        their failures would hide real bugs.
    clock:
        Injectable monotonic clock (tests freeze it).
    """

    def __init__(
        self,
        on_event: Callable[[TelemetryEvent], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._on_event = on_event
        self._clock = clock
        self._started = clock()
        self.counters: dict[str, int] = {}
        self.timers: dict[str, dict[str, float]] = {}

    @property
    def elapsed_s(self) -> float:
        """Seconds since the hub was created (run start)."""
        return self._clock() - self._started

    def emit(self, name: str, **data: object) -> None:
        """Count event *name* and forward it to the callback, if any."""
        self.counters[name] = self.counters.get(name, 0) + 1
        if self._on_event is not None:
            self._on_event(TelemetryEvent(name, data, self.elapsed_s))

    def record_time(self, name: str, seconds: float) -> None:
        """Fold *seconds* into the aggregate timer *name*."""
        timer = self.timers.setdefault(name, {"count": 0, "total_s": 0.0})
        timer["count"] += 1
        timer["total_s"] += seconds

    def timed(self, name: str) -> "_TimerContext":
        """Context manager recording its duration under timer *name*."""
        return _TimerContext(self, name)

    def snapshot(self) -> dict:
        """JSON-friendly view of all counters and timers."""
        return {
            "elapsed_s": self.elapsed_s,
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: {"count": int(timer["count"]), "total_s": timer["total_s"]}
                for name, timer in sorted(self.timers.items())
            },
        }


class _TimerContext:
    __slots__ = ("_hub", "_name", "_start")

    def __init__(self, hub: TelemetryHub, name: str):
        self._hub = hub
        self._name = name

    def __enter__(self) -> "_TimerContext":
        self._start = self._hub._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self._hub.record_time(self._name, self._hub._clock() - self._start)
