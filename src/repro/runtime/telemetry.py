"""Structured telemetry for long-running explorations.

A :class:`TelemetryHub` is a lightweight event/metrics registry shared
by the run controller, the evaluation service, the worker pool and the
exploration strategies.  Every notable step emits a named event
(``probe_start``, ``probe_finish``, ``cache_hit``, ``prune``,
``frontier_update``, ``pool_restart``, ...); the hub

* keeps a monotonically increasing **counter** per event name,
* aggregates **timers** (count + total seconds) for timed sections,
* optionally forwards every event to a user callback (the
  ``on_event`` field of
  :class:`~repro.runtime.config.ExplorationConfig`), and
* renders everything as one JSON-friendly dict (:meth:`snapshot`) —
  the payload behind the CLI's ``--stats-json``.

The hub never buffers events, so memory stays constant no matter how
long a run lasts; consumers that want a trace simply append events in
their callback.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Mapping

#: Event names emitted by the built-in instrumentation.  User code may
#: emit additional names; these are the ones documented in
#: ``docs/RUNTIME.md``.
KNOWN_EVENTS = (
    "run_start",
    "run_finish",
    "probe_start",
    "probe_finish",
    "cache_hit",
    "prune",
    "bounds_exact",
    "bounds_cut",
    "speculative_issued",
    "speculative_useful",
    "batch_call",
    "batch_lanes",
    "frontier_update",
    "pool_restart",
    "pool_fallback",
    "budget_exhausted",
    "checkpoint_saved",
    "checkpoint_restored",
    "breaker_open",
    "breaker_half_open",
    "breaker_close",
    "breaker_rejected",
)


class TraceLog:
    """Bounded, thread-safe log of completed request spans.

    The service mints one ``trace_id`` per HTTP request and records the
    finished span here — route, status, duration, and whatever extra
    fields the handler attached (job id, job class).  The log is a ring:
    the oldest span falls out once ``limit`` is reached, so memory stays
    constant under heavy traffic.  ``GET /v1/traces[/<id>]`` serves it,
    which is also how tests assert that a response's ``trace_id``
    matches the server-side span.
    """

    def __init__(self, limit: int = 512):
        if limit < 1:
            raise ValueError("trace log limit must be >= 1")
        self.limit = int(limit)
        self._lock = threading.Lock()
        self._spans: "OrderedDict[str, dict]" = OrderedDict()

    def record(self, trace_id: str, name: str, **data: object) -> dict:
        """Record (or update) the span for *trace_id*; returns the span."""
        with self._lock:
            span = self._spans.pop(trace_id, None)
            if span is None:
                span = {"trace_id": trace_id, "name": name}
            span.update(data)
            span["name"] = name
            self._spans[trace_id] = span
            while len(self._spans) > self.limit:
                self._spans.popitem(last=False)
            return dict(span)

    def get(self, trace_id: str) -> dict | None:
        with self._lock:
            span = self._spans.get(trace_id)
            return dict(span) if span is not None else None

    def spans(self) -> list[dict]:
        """All retained spans, oldest first."""
        with self._lock:
            return [dict(span) for span in self._spans.values()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured event: a name, a payload and a relative timestamp."""

    name: str
    data: Mapping[str, object] = field(default_factory=dict)
    elapsed_s: float = 0.0

    def to_dict(self) -> dict:
        return {"event": self.name, "elapsed_s": self.elapsed_s, **dict(self.data)}


class TelemetryHub:
    """Counters, timers and an optional event callback.

    Parameters
    ----------
    on_event:
        Called with every :class:`TelemetryEvent` as it happens.
        Exceptions raised by the callback propagate to the emitter —
        telemetry consumers are part of the run and silently swallowing
        their failures would hide real bugs.
    clock:
        Injectable monotonic clock (tests freeze it).
    """

    def __init__(
        self,
        on_event: Callable[[TelemetryEvent], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        traces: "TraceLog | None" = None,
    ):
        self._on_event = on_event
        self._clock = clock
        self._started = clock()
        self.counters: dict[str, int] = {}
        self.timers: dict[str, dict[str, float]] = {}
        #: Optional request-span log (the service wires one in; plain
        #: exploration hubs leave it ``None``).
        self.traces = traces

    @property
    def elapsed_s(self) -> float:
        """Seconds since the hub was created (run start)."""
        return self._clock() - self._started

    def emit(self, name: str, **data: object) -> None:
        """Count event *name* and forward it to the callback, if any."""
        self.counters[name] = self.counters.get(name, 0) + 1
        if self._on_event is not None:
            self._on_event(TelemetryEvent(name, data, self.elapsed_s))

    def record_time(self, name: str, seconds: float) -> None:
        """Fold *seconds* into the aggregate timer *name*."""
        timer = self.timers.setdefault(name, {"count": 0, "total_s": 0.0})
        timer["count"] += 1
        timer["total_s"] += seconds

    def timed(self, name: str) -> "_TimerContext":
        """Context manager recording its duration under timer *name*."""
        return _TimerContext(self, name)

    def snapshot(self) -> dict:
        """JSON-friendly view of all counters and timers."""
        return {
            "elapsed_s": self.elapsed_s,
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: {"count": int(timer["count"]), "total_s": timer["total_s"]}
                for name, timer in sorted(self.timers.items())
            },
        }

    def merge(self, other: "TelemetryHub | Mapping") -> "TelemetryHub":
        """Fold *other*'s counters and timers into this hub.

        *other* may be a live :class:`TelemetryHub` or a
        :meth:`snapshot` payload.  Counters add up; timers fold both
        their count and total.  This is how per-job hubs aggregate into
        a server-wide metrics view (``repro.service``) without the jobs
        sharing a mutable hub.  Events are *not* re-emitted — merging
        is pure accounting.  Returns ``self`` for chaining.
        """
        if isinstance(other, TelemetryHub):
            counters: Mapping[str, int] = other.counters
            timers: Mapping[str, Mapping[str, float]] = other.timers
        else:
            counters = other.get("counters", {})
            timers = other.get("timers", {})
        for name, count in counters.items():
            self.counters[name] = self.counters.get(name, 0) + int(count)
        for name, timer in timers.items():
            merged = self.timers.setdefault(name, {"count": 0, "total_s": 0.0})
            merged["count"] += int(timer["count"])
            merged["total_s"] += float(timer["total_s"])
        return self


def _prom_escape(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def to_prometheus(
    hub: TelemetryHub,
    *,
    namespace: str = "repro",
    gauges: "Iterable[tuple[str, Mapping[str, str], float]] | None" = None,
) -> str:
    """Render *hub* in the Prometheus text exposition format.

    Counters become one ``<namespace>_events_total`` family labelled by
    event name; timers become ``<namespace>_timer_seconds_count`` /
    ``<namespace>_timer_seconds_sum`` pairs (the standard summary-style
    rendering); the hub's uptime is exported as
    ``<namespace>_uptime_seconds``.  *gauges* adds caller-provided
    ``(name, labels, value)`` gauge samples — the server uses this for
    queue depth and jobs-by-state, which live outside the hub.
    """
    lines = [
        f"# HELP {namespace}_uptime_seconds Seconds since the hub was created.",
        f"# TYPE {namespace}_uptime_seconds gauge",
        f"{namespace}_uptime_seconds {hub.elapsed_s}",
        f"# HELP {namespace}_events_total Telemetry event counters by event name.",
        f"# TYPE {namespace}_events_total counter",
    ]
    for name, count in sorted(hub.counters.items()):
        lines.append(f'{namespace}_events_total{{event="{_prom_escape(name)}"}} {count}')
    lines.append(
        f"# HELP {namespace}_timer_seconds Aggregated section timings by timer name."
    )
    lines.append(f"# TYPE {namespace}_timer_seconds summary")
    for name, timer in sorted(hub.timers.items()):
        label = f'timer="{_prom_escape(name)}"'
        lines.append(f"{namespace}_timer_seconds_count{{{label}}} {int(timer['count'])}")
        lines.append(f"{namespace}_timer_seconds_sum{{{label}}} {timer['total_s']}")
    if gauges is not None:
        seen_families: set[str] = set()
        for name, labels, value in gauges:
            family = f"{namespace}_{name}"
            if family not in seen_families:
                seen_families.add(family)
                lines.append(f"# TYPE {family} gauge")
            rendered = ",".join(
                f'{key}="{_prom_escape(str(val))}"' for key, val in sorted(labels.items())
            )
            suffix = f"{{{rendered}}}" if rendered else ""
            lines.append(f"{family}{suffix} {value}")
    return "\n".join(lines) + "\n"


class _TimerContext:
    __slots__ = ("_hub", "_name", "_start")

    def __init__(self, hub: TelemetryHub, name: str):
        self._hub = hub
        self._name = name

    def __enter__(self) -> "_TimerContext":
        self._start = self._hub._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self._hub.record_time(self._name, self._hub._clock() - self._start)
