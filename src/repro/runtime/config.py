"""`ExplorationConfig` — the one knob object for all exploration entry points.

PRs past bolted ``workers=``, ``cache=``, ``engine=`` and ``evaluator=``
onto every exploration function.  This module replaces that creeping
surface with a single frozen dataclass accepted as ``config=`` by

* :func:`repro.buffers.explorer.explore_design_space`,
* :func:`repro.buffers.explorer.minimal_distribution_for_throughput`,
* :func:`repro.buffers.dependencies.dependency_sweep`,
* :func:`repro.buffers.dependencies.find_minimal_distribution`,
* :class:`repro.buffers.evalcache.EvaluationService`.

The old keywords are gone: after a deprecation cycle (one full release
of ``DeprecationWarning``), passing ``workers=`` / ``cache=`` /
``engine=`` / ``evaluator=`` to an entry point now raises
:class:`~repro.exceptions.ConfigError` naming the migration.  New
capabilities (budgets, checkpoints, telemetry, fault-tolerance tuning)
land on the config only.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING
from collections.abc import Callable

from repro.exceptions import ConfigError, EngineError, ExplorationError
from repro.runtime.budget import Budget
from repro.runtime.telemetry import TelemetryEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.buffers.evalcache import EvaluationService

#: Sentinel distinguishing "kwarg not passed" from an explicit value in
#: the deprecated-keyword shims.
UNSET = type("_Unset", (), {"__repr__": lambda self: "<unset>", "__bool__": lambda self: False})()

#: Valid engine selectors (kept in sync with
#: :data:`repro.engine.fastcore.ENGINES`; duplicated here so building a
#: config stays import-light).
_ENGINES = ("auto", "fast", "reference")

#: Capabilities a probe backend must offer per engine selector: the
#: reference engine records space-blocking data, so a backend serving
#: it must produce that data; ``fast`` promises compiled-kernel probes.
_REQUIRED_CAPABILITIES = {
    "reference": frozenset({"blocking"}),
    "fast": frozenset({"compiled"}),
}


@dataclass(frozen=True)
class ExplorationConfig:
    """Everything that shapes *how* an exploration runs (never *what*).

    Parameters
    ----------
    engine:
        Simulation kernel for plain throughput probes: ``"auto"``,
        ``"fast"`` or ``"reference"``.
    workers:
        Process-pool size for fanning out independent probes; ``1``
        stays serial (bit-identical results either way).
    cache:
        Keep the exact memo/pruning cache enabled.  Budgets,
        checkpoints, the bounds oracle and speculation require it.
    bounds:
        Enable the :class:`~repro.buffers.oracle
        .ThroughputBoundsOracle`: interval queries answer probes whose
        throughput is already bracketed exactly (``bounds_exact``) and
        cut scan candidates whose upper bound cannot beat the running
        best (``bounds_cut``).  Exact either way — fronts and witnesses
        are bit-identical with the oracle on or off.  Off by default:
        the paper's algorithms are reproduced unmodified unless asked.
    speculate:
        With ``workers > 1``, issue predicted future probes (upcoming
        binary-search midpoints, next-size frontier entries) to idle
        pool workers; results land in the memo cache and are
        bit-identical to demand-driven probes.  Inert when serial.
    evaluator:
        Bring-your-own :class:`~repro.buffers.evalcache
        .EvaluationService` (e.g. a warm cache shared across runs).
        When set, ``engine`` / ``workers`` / ``cache`` / ``budget`` /
        ``on_event`` must be left at their defaults — the service was
        already built and its own controller governs the run.
    budget:
        Optional :class:`~repro.runtime.budget.Budget` (deadline,
        probe budget, cancel token).  Hitting it makes
        ``explore_design_space`` return a partial result flagged
        ``complete=False`` with a resume token.
    checkpoint:
        Optional path; when set, ``explore_design_space`` writes a
        checkpoint JSON there at the end of the run (partial or
        complete), suitable for ``resume=``.
    on_event:
        Callback receiving every
        :class:`~repro.runtime.telemetry.TelemetryEvent` of the run.
    probe_timeout:
        Per-probe wall-clock timeout (seconds) for pool workers; a
        probe exceeding it counts as a pool failure (restart / inline
        retry).  ``None`` disables the watchdog.
    max_pool_restarts:
        How many times a broken worker pool is rebuilt before the run
        degrades to inline evaluation for good.
    retry_backoff:
        Base sleep (seconds) before a pool restart; doubles per
        consecutive restart.
    backend:
        Probe backend name from the :mod:`repro.engine.backends`
        registry (``"reference"``, ``"fastcore"``, ``"batch-numpy"``,
        ``"cc"``, or any backend registered by the application).
        ``None`` picks the backend matching ``engine`` (``"reference"``
        for the reference engine, ``"fastcore"`` otherwise);
        ``"auto"`` picks the best backend *available on this host*
        (the compiled ``cc`` kernel where a C compiler exists, the
        numpy lane kernel otherwise) — all exact, so auto only ever
        trades speed.  Unknown names, backends lacking a capability
        the selected engine requires, and backends the host cannot run
        (e.g. ``"cc"`` without a C compiler) raise
        :class:`~repro.exceptions.ConfigError` here, at construction —
        a run never silently degrades to a different backend
        mid-flight.
    batch:
        Probe wave width.  ``0`` (default) keeps the classic per-probe
        evaluation path; ``batch >= 1`` makes the scan and speculation
        layers collect candidate waves of that size and submit them as
        one ``evaluate_batch`` call.  Results, fronts and witnesses are
        bit-identical for every batch width; only "how probes ran"
        counters (``batch_calls``/``batch_lanes``) differ.
    """

    engine: str = "auto"
    workers: int = 1
    cache: bool = True
    evaluator: "EvaluationService | None" = None
    budget: Budget | None = None
    checkpoint: str | Path | None = None
    on_event: Callable[[TelemetryEvent], None] | None = field(default=None)
    probe_timeout: float | None = None
    max_pool_restarts: int = 1
    retry_backoff: float = 0.05
    bounds: bool = False
    speculate: bool = False
    backend: str | None = None
    batch: int = 0

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise EngineError(
                f"unknown engine {self.engine!r}; expected one of {_ENGINES}"
            )
        if int(self.workers) < 1:
            raise ExplorationError("workers must be >= 1")
        if int(self.batch) < 0:
            raise ConfigError("batch must be >= 0 (0 disables wave batching)")
        if self.backend is not None and self.backend != "auto":
            # Imported lazily so building a default config stays
            # import-light (no numpy pull-in for plain explorations).
            # "auto" needs no validation: it resolves per host to an
            # available backend satisfying the engine's capabilities.
            from repro.engine.backends import backend_availability, backend_for

            backend = backend_for(self.backend)  # unknown name -> ConfigError
            required = _REQUIRED_CAPABILITIES.get(self.engine, frozenset())
            missing = required - backend.capabilities
            if missing:
                raise ConfigError(
                    f"backend {self.backend!r} lacks the"
                    f" {', '.join(sorted(missing))} capability required by"
                    f" engine={self.engine!r} (backend capabilities:"
                    f" {', '.join(sorted(backend.capabilities)) or 'none'})"
                )
            reason = backend_availability(backend)
            if reason is not None:
                raise ConfigError(
                    f"probe backend {self.backend!r} is unavailable on this"
                    f" host: {reason}. Use backend='auto' to pick the best"
                    " available backend instead."
                )
        if self.max_pool_restarts < 0:
            raise ExplorationError("max_pool_restarts must be >= 0")
        if self.probe_timeout is not None and self.probe_timeout <= 0:
            raise ExplorationError("probe_timeout must be positive")
        if self.budget is not None and not self.cache:
            raise ExplorationError(
                "budgets require the memo cache (cache=True): partial results"
                " and resume tokens are reconstructed from it"
            )
        if self.bounds and not self.cache:
            raise ExplorationError(
                "the bounds oracle requires the memo cache (cache=True): it"
                " is an index over the recorded evaluations"
            )
        if self.speculate and not self.cache:
            raise ExplorationError(
                "speculative probing requires the memo cache (cache=True):"
                " speculative results are absorbed into it"
            )
        if self.evaluator is not None:
            owned_only = {
                "engine": "auto",
                "workers": 1,
                "cache": True,
                "budget": None,
                "on_event": None,
                "bounds": False,
                "speculate": False,
                "backend": None,
                "batch": 0,
            }
            clashes = [
                name
                for name, default in owned_only.items()
                if getattr(self, name) != default
            ]
            if clashes:
                raise ExplorationError(
                    "config.evaluator supplies a ready-made service; configure"
                    f" {', '.join(clashes)} on that service's own config instead"
                )

    def replaced(self, **changes) -> "ExplorationConfig":
        """A copy with *changes* applied (frozen-dataclass convenience)."""
        return replace(self, **changes)


def coerce_config(
    config: ExplorationConfig | None,
    *,
    caller: str,
    workers: object = UNSET,
    cache: object = UNSET,
    engine: object = UNSET,
    evaluator: object = UNSET,
    stacklevel: int = 3,
) -> ExplorationConfig:
    """Resolve the ``config=`` parameter of one entry point.

    The legacy keywords (``workers=``, ``cache=``, ``engine=``,
    ``evaluator=``) went through a full release as a
    ``DeprecationWarning`` shim; passing any of them now raises
    :class:`~repro.exceptions.ConfigError` naming the migration.  The
    parameters (and ``stacklevel``) survive so every entry point keeps
    rejecting them with the same message rather than a generic
    ``TypeError``.
    """
    del stacklevel  # kept for signature compatibility with the shim era
    legacy = {
        name: value
        for name, value in (
            ("workers", workers),
            ("cache", cache),
            ("engine", engine),
            ("evaluator", evaluator),
        )
        if value is not UNSET
    }
    if not legacy:
        return config if config is not None else ExplorationConfig()
    rendered = ", ".join(f"{name}=" for name in sorted(legacy))
    raise ConfigError(
        f"{caller}: the keyword(s) {rendered} were removed; pass"
        " config=ExplorationConfig(...) carrying them instead"
        " (see docs/RUNTIME.md for the migration table)"
    )
