"""The run controller: budget accounting at probe granularity.

One :class:`RunController` lives on every
:class:`~repro.buffers.evalcache.EvaluationService`.  The service asks
it for permission before every state-space execution
(:meth:`before_probes`); the controller checks the wall-clock deadline,
the cancel token and the probe budget, and raises
:class:`~repro.exceptions.BudgetExhausted` when any of them tripped.
Because the check sits *between* probes, interruption never corrupts a
result: everything recorded so far is exact, and a run resumed from the
memo cache replays those records as free cache hits.

The controller also owns the run's :class:`~repro.runtime.telemetry
.TelemetryHub`, so budget verdicts and probe counts land in the same
structured stream as the service's own events.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.exceptions import BudgetExhausted
from repro.runtime.budget import Budget
from repro.runtime.telemetry import TelemetryHub


class RunController:
    """Cooperative budget enforcement plus telemetry ownership.

    Parameters
    ----------
    budget:
        Limits for this run; ``None`` means unlimited.
    telemetry:
        Shared hub; a private one (no callback) is created otherwise.
    clock:
        Injectable monotonic clock for deterministic tests.
    """

    def __init__(
        self,
        budget: Budget | None = None,
        telemetry: TelemetryHub | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.budget = budget if budget is not None else Budget()
        self.telemetry = telemetry if telemetry is not None else TelemetryHub(clock=clock)
        self._clock = clock
        self.started = clock()
        #: State-space executions charged against this run's budget.
        self.probes_used = 0
        #: Why the budget tripped, once it has (``None`` while healthy).
        self.exhausted_reason: str | None = None

    # -- queries ----------------------------------------------------------
    @property
    def elapsed_s(self) -> float:
        return self._clock() - self.started

    @property
    def exhausted(self) -> bool:
        return self.exhausted_reason is not None

    def remaining_probes(self) -> int | None:
        """Probes left in the budget (``None`` = unlimited)."""
        if self.budget.max_probes is None:
            return None
        return max(0, self.budget.max_probes - self.probes_used)

    def allows(self, probes: int) -> bool:
        """Whether *probes* more executions fit the budget right now."""
        if self._tripped_reason() is not None:
            return False
        remaining = self.remaining_probes()
        return remaining is None or probes <= remaining

    # -- enforcement -------------------------------------------------------
    def check(self) -> None:
        """Raise :class:`BudgetExhausted` if deadline/cancel tripped."""
        reason = self._tripped_reason()
        if reason is not None:
            self._exhaust(reason)

    def before_probes(self, probes: int = 1) -> None:
        """Charge *probes* executions; raise when the budget is spent.

        The charge happens only when the probes are allowed, so a
        rejected batch costs nothing and the caller may retry with a
        smaller one (or inline, one probe at a time).
        """
        self.check()
        remaining = self.remaining_probes()
        if remaining is not None and probes > remaining:
            self._exhaust("probes")
        self.probes_used += probes

    def _tripped_reason(self) -> str | None:
        budget = self.budget
        if budget.cancel is not None and budget.cancel.cancelled:
            return "cancelled"
        if budget.deadline_s is not None and self.elapsed_s >= budget.deadline_s:
            return "deadline"
        return None

    def _exhaust(self, reason: str) -> None:
        if self.exhausted_reason is None:
            self.exhausted_reason = reason
            self.telemetry.emit(
                "budget_exhausted",
                reason=reason,
                probes_used=self.probes_used,
                elapsed_s=self.elapsed_s,
            )
        raise BudgetExhausted(
            f"exploration budget exhausted ({reason}) after {self.probes_used}"
            f" probe(s), {self.elapsed_s:.3f}s",
            reason=reason,
        )
