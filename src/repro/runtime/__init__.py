"""Run controller for long explorations.

The paper's design-space exploration is exponential in the worst case;
this package makes long runs *operable*:

* :mod:`repro.runtime.config` — :class:`ExplorationConfig`, the single
  frozen knob object accepted (as ``config=``) by every exploration
  entry point;
* :mod:`repro.runtime.budget` — wall-clock / probe budgets and
  cooperative cancellation;
* :mod:`repro.runtime.controller` — budget enforcement at probe
  granularity (results stay exact under interruption);
* :mod:`repro.runtime.checkpoint` — JSON checkpoints and the
  deterministic-replay resume guarantee;
* :mod:`repro.runtime.telemetry` — structured events, counters and
  timers behind the CLI's ``--stats-json``.

See ``docs/RUNTIME.md`` for the operator's guide and the migration
table from the removed per-function keywords.
"""

from repro.exceptions import BudgetExhausted, CheckpointError
from repro.runtime.budget import Budget, CancelToken
from repro.runtime.checkpoint import (
    ResumeToken,
    build_token,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.config import ExplorationConfig
from repro.runtime.controller import RunController
from repro.runtime.telemetry import TelemetryEvent, TelemetryHub

__all__ = [
    "Budget",
    "BudgetExhausted",
    "CancelToken",
    "CheckpointError",
    "ExplorationConfig",
    "ResumeToken",
    "RunController",
    "TelemetryEvent",
    "TelemetryHub",
    "build_token",
    "load_checkpoint",
    "save_checkpoint",
]
