"""Budgets and cooperative cancellation for explorations.

The Pareto-space exploration is exponential in the worst case (Sec. 11
of the paper), so production runs need to be *interruptible*: a
:class:`Budget` bounds a run by wall-clock time and/or by the number of
state-space executions ("probes"), and a :class:`CancelToken` lets
another thread — a signal handler, an RPC deadline, a UI button — stop
a run cooperatively.

Budgets are enforced by the
:class:`~repro.runtime.controller.RunController` between probes, never
mid-execution, so every recorded result stays exact.  Hitting a budget
raises :class:`~repro.exceptions.BudgetExhausted` inside the evaluation
layer; :func:`~repro.buffers.explorer.explore_design_space` converts
that into a partial result carrying a resume token (see
:mod:`repro.runtime.checkpoint`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.exceptions import BudgetExhausted, ExplorationError

__all__ = ["Budget", "CancelToken", "BudgetExhausted"]


class CancelToken:
    """Thread-safe cooperative cancellation flag.

    Create one, hand it to a :class:`Budget`, and call :meth:`cancel`
    from any thread; the exploration stops at the next probe boundary.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, thread-safe)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "armed"
        return f"CancelToken({state})"


@dataclass(frozen=True)
class Budget:
    """Resource limits for one exploration run.

    Parameters
    ----------
    deadline_s:
        Wall-clock budget in seconds, measured from the start of the
        run (controller creation).
    max_probes:
        Maximum number of state-space executions *in this run*.  Cache
        hits and monotonicity prunes are free — on a resumed run the
        replayed prefix therefore costs no budget.
    cancel:
        Optional :class:`CancelToken` checked at every probe boundary.
    """

    deadline_s: float | None = None
    max_probes: int | None = None
    cancel: CancelToken | None = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ExplorationError("budget deadline_s must be >= 0")
        if self.max_probes is not None and self.max_probes < 0:
            raise ExplorationError("budget max_probes must be >= 0")

    @property
    def unlimited(self) -> bool:
        """Whether this budget can never trip."""
        return self.deadline_s is None and self.max_probes is None and self.cancel is None
