"""Checkpoint / resume for interrupted explorations.

A checkpoint captures everything an exploration has *paid for*: the
exact memo cache of the evaluation service (every state-space execution
performed so far, including per-channel blocking records), the current
partial Pareto frontier, and — for the dependency-guided strategy — the
pending frontier of distributions still queued for evaluation.  The
whole payload is plain JSON, so checkpoints survive process restarts,
machine migrations and version-controlled storage.

Resuming is **deterministic replay over the restored cache**: the
strategy runs again from the top, every previously executed probe is
answered by the memo for free, and execution proceeds past the
interruption point.  Because the cache is exact and every strategy is
deterministic, a resumed run provably produces the *identical* Pareto
front (witnesses included) as an uninterrupted one — the property
pinned by ``tests/runtime/test_checkpoint.py``.  The ``pending`` /
``frontier`` sections are carried for observability (dashboards, ETA
estimation), not re-ingested on resume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, TYPE_CHECKING
from collections.abc import Iterable, Mapping

from repro.buffers.distribution import StorageDistribution
from repro.buffers.pareto import ParetoFront
from repro.exceptions import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.buffers.evalcache import EvaluationService

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class ResumeToken:
    """An in-memory checkpoint: the ``resume=`` argument of
    :func:`~repro.buffers.explorer.explore_design_space`.

    Obtained from a partial :class:`~repro.buffers.explorer
    .DesignSpaceResult` (``result.resume_token``) or by loading a
    checkpoint file (:func:`load_checkpoint`).
    """

    payload: Mapping[str, Any]

    @property
    def graph_name(self) -> str:
        return self.payload["graph"]

    @property
    def strategy(self) -> str:
        return self.payload["strategy"]

    @property
    def complete(self) -> bool:
        return bool(self.payload.get("complete", False))

    @property
    def exhausted(self) -> str | None:
        return self.payload.get("exhausted")

    @property
    def probes_recorded(self) -> int:
        """Executions banked in the memo (replayed for free on resume)."""
        return len(self.payload.get("memo", ()))

    @property
    def frontier(self) -> ParetoFront:
        """The partial Pareto front at checkpoint time."""
        return ParetoFront.from_dicts(self.payload.get("frontier", ()))

    @property
    def pending(self) -> tuple[StorageDistribution, ...]:
        """Distributions still queued when the run was interrupted."""
        return tuple(
            StorageDistribution({name: int(cap) for name, cap in entry.items()})
            for entry in self.payload.get("pending", ())
        )

    def save(self, path: str | Path) -> Path:
        """Write the checkpoint as JSON; returns the path written."""
        return save_checkpoint(self, path)

    def __repr__(self) -> str:
        state = "complete" if self.complete else f"partial ({self.exhausted})"
        return (
            f"ResumeToken(graph={self.graph_name!r}, strategy={self.strategy!r},"
            f" {state}, {self.probes_recorded} probe(s) banked)"
        )


def build_token(
    service: "EvaluationService",
    *,
    graph_name: str,
    observe: str,
    strategy: str,
    complete: bool,
    exhausted: str | None,
    front: ParetoFront,
    pending: Iterable[StorageDistribution] = (),
) -> ResumeToken:
    """Snapshot *service* plus run metadata into a resume token."""
    payload: dict[str, Any] = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "graph": graph_name,
        "observe": observe,
        "strategy": strategy,
        "complete": complete,
        "exhausted": exhausted,
        "frontier": front.to_dicts(),
        "pending": [dict(distribution) for distribution in pending],
    }
    payload.update(service.export_state())
    return ResumeToken(payload)


def save_checkpoint(token: "ResumeToken | object", path: str | Path) -> Path:
    """Write *token* (or a result carrying one) to *path* as JSON."""
    resolved = _coerce_token(token)
    target = Path(path)
    target.write_text(
        json.dumps(resolved.payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def load_checkpoint(path: str | Path) -> ResumeToken:
    """Read a checkpoint file back into a :class:`ResumeToken`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise CheckpointError(f"{path}: not valid checkpoint JSON ({error})") from None
    return _validate_payload(payload, source=str(path))


def coerce_resume(resume: "ResumeToken | Mapping | str | Path") -> ResumeToken:
    """Accept a token, a raw payload mapping, or a checkpoint path."""
    if isinstance(resume, ResumeToken):
        return _validate_payload(dict(resume.payload), source="resume token")
    if isinstance(resume, (str, Path)):
        return load_checkpoint(resume)
    if isinstance(resume, Mapping):
        return _validate_payload(dict(resume), source="resume payload")
    raise CheckpointError(
        f"cannot resume from {type(resume).__name__}: expected a ResumeToken,"
        " a checkpoint path or a payload mapping"
    )


def restore_service(token: ResumeToken, service: "EvaluationService") -> None:
    """Load *token*'s memo into *service*, validating graph identity."""
    payload = token.payload
    if payload["graph"] != service.graph.name:
        raise CheckpointError(
            f"checkpoint was written for graph {payload['graph']!r},"
            f" not {service.graph.name!r}"
        )
    if list(payload.get("channels", ())) != list(service.graph.channel_names):
        raise CheckpointError(
            f"checkpoint channel set {payload.get('channels')} does not match"
            f" graph {service.graph.name!r} ({list(service.graph.channel_names)})"
        )
    if not service.cache_enabled:
        raise CheckpointError("resuming requires the memo cache (cache=True)")
    service.restore_state(payload)
    service.telemetry.emit(
        "checkpoint_restored",
        graph=payload["graph"],
        probes_banked=token.probes_recorded,
    )


def _coerce_token(token: object) -> ResumeToken:
    if isinstance(token, ResumeToken):
        return token
    resume = getattr(token, "resume_token", None)
    if isinstance(resume, ResumeToken):
        return resume
    raise CheckpointError(
        f"cannot checkpoint a {type(token).__name__}: expected a ResumeToken"
        " or a DesignSpaceResult carrying one"
    )


def _validate_payload(payload: dict, *, source: str) -> ResumeToken:
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{source}: not a {CHECKPOINT_FORMAT} payload")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{source}: checkpoint version {version!r} is not supported"
            f" (expected {CHECKPOINT_VERSION})"
        )
    for key in ("graph", "observe", "strategy", "channels", "memo"):
        if key not in payload:
            raise CheckpointError(f"{source}: checkpoint misses the {key!r} section")
    return ResumeToken(payload)
