"""Greedy shrink heuristic (in the spirit of [HLH91] / [GGD02]).

The pre-existing throughput-aware methods the paper cites compute a
schedule for the *maximal* throughput with buffers "as close as
possible to the minimal size"; none is exact.  This baseline captures
that behaviour: start from a distribution known to meet the throughput
target and repeatedly shrink single channels while the target remains
met.  The result is locally minimal — no single channel can shrink —
but may be globally larger than the exact Pareto witness, which is
precisely the gap the paper's exact method closes.
"""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.consistency import assert_consistent
from repro.buffers.bounds import lower_bound_distribution, upper_bound_distribution
from repro.buffers.distribution import StorageDistribution
from repro.engine.executor import Executor
from repro.exceptions import ExplorationError
from repro.graph.graph import SDFGraph


def greedy_minimize(
    graph: SDFGraph,
    target: Fraction,
    observe: str | None = None,
    *,
    start: StorageDistribution | None = None,
) -> tuple[StorageDistribution, Fraction, int]:
    """Greedily shrink buffers while keeping throughput >= *target*.

    Returns ``(distribution, throughput, evaluations)``.  Raises
    :class:`~repro.exceptions.ExplorationError` when even the starting
    distribution (default: the [GGD02] upper bounds) misses the
    target.

    The shrink step halves the distance to the channel's lower bound
    (binary descent per channel), then falls back to single-token
    steps, repeating over all channels until a fixpoint — a typical
    shape for the heuristics the paper compares against.
    """
    assert_consistent(graph)
    lower = lower_bound_distribution(graph)
    current = start if start is not None else upper_bound_distribution(graph)
    evaluations = 0

    def throughput_of(distribution: StorageDistribution) -> Fraction:
        nonlocal evaluations
        evaluations += 1
        return Executor(graph, distribution, observe).run().throughput

    achieved = throughput_of(current)
    if achieved < target:
        raise ExplorationError(
            f"starting distribution reaches only {achieved}, below the target {target}"
        )

    improved = True
    while improved:
        improved = False
        for name in graph.channel_names:
            floor = lower[name]
            while current[name] > floor:
                # Try halving towards the lower bound first.
                halved = (current[name] + floor) // 2
                for candidate_value in dict.fromkeys([halved, current[name] - 1]):
                    candidate = current.with_capacity(name, candidate_value)
                    value = throughput_of(candidate)
                    if value >= target:
                        current = candidate
                        achieved = value
                        improved = True
                        break
                else:
                    break
    return current, achieved, evaluations
