"""Minimal deadlock-free storage distribution ([GBS05] baseline).

The predecessor of the paper computes the exact minimal buffer sizes
for *a* deadlock-free execution, without any throughput constraint.
In the timed model that is simply the smallest distribution with
positive throughput — the leftmost point of the Pareto space.  The
paper's motivation is that this distribution may realise a throughput
far below what the application requires; the comparison benchmarks
quantify exactly that gap.
"""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.consistency import assert_consistent
from repro.buffers.dependencies import dependency_sweep
from repro.buffers.distribution import StorageDistribution
from repro.graph.graph import SDFGraph


def minimal_deadlock_free_distribution(
    graph: SDFGraph, observe: str | None = None
) -> tuple[StorageDistribution, Fraction] | None:
    """Smallest distribution with a deadlock-free (positive-throughput)
    execution, together with the throughput it realises.

    Returns ``None`` for graphs that deadlock under every finite
    storage distribution (under-tokened cycles).
    """
    assert_consistent(graph)
    # Graphs that deadlock even with unbounded storage have no positive
    # stop level; without this check the sweep would grow forever.
    from repro.analysis.deadlock import is_deadlock_free

    if not is_deadlock_free(graph):
        return None
    sweep = dependency_sweep(graph, observe, stop_positive=True, stop_at_first=True)
    witness = sweep.first_reaching_target
    if witness is None:
        return None
    return witness, sweep.evaluations[witness]
