"""Baseline buffer-sizing methods from the related work (Sec. 1).

The paper positions its exact method against two families of earlier
approaches, both implemented here for comparison benchmarks:

* :mod:`repro.baselines.deadlockfree` — smallest buffers admitting any
  deadlock-free execution, ignoring throughput ([GBS05] and the
  single-processor line of work [ALP97, BML96, BML99, MB00, OH02]);
* :mod:`repro.baselines.greedy` — a heuristic in the spirit of
  [HLH91] / [GGD02]: start from buffers large enough for maximal
  throughput and greedily shrink, yielding an upper bound on the
  minimal size for a throughput constraint rather than the exact
  value.
"""

from repro.baselines.deadlockfree import minimal_deadlock_free_distribution
from repro.baselines.greedy import greedy_minimize

__all__ = [
    "greedy_minimize",
    "minimal_deadlock_free_distribution",
]
