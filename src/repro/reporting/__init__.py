"""Rendering of the paper's tables and figures as text artefacts.

* :mod:`repro.reporting.tables` — Table-1-style schedule Gantt charts
  and the Table-2 experiment summary;
* :mod:`repro.reporting.plots` — ASCII Pareto-space charts in the
  style of Figs. 5 and 13;
* :mod:`repro.reporting.records` — paper-vs-measured experiment
  records used by the benchmark harness and EXPERIMENTS.md.
"""

from repro.reporting.periodic import (
    PeriodicPattern,
    render_pattern,
    steady_state_pattern,
    verify_pattern_counts,
)
from repro.reporting.plots import ascii_pareto
from repro.reporting.records import ExperimentRecord, render_records
from repro.reporting.svg import schedule_to_svg
from repro.reporting.tables import render_table, schedule_table, table2_row, table2

__all__ = [
    "ExperimentRecord",
    "PeriodicPattern",
    "ascii_pareto",
    "render_pattern",
    "render_records",
    "render_table",
    "schedule_table",
    "schedule_to_svg",
    "steady_state_pattern",
    "table2",
    "table2_row",
    "verify_pattern_counts",
]
