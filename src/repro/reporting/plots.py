"""ASCII charts of the storage/throughput Pareto space (Figs. 5, 13).

The feasible region lies on and to the right of the staircase; every
``o`` is a Pareto point (a minimal storage distribution).
"""

from __future__ import annotations

from fractions import Fraction

from repro.buffers.pareto import ParetoFront


def ascii_pareto(
    front: ParetoFront,
    *,
    width: int = 60,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Render *front* as an ASCII staircase chart.

    The x axis is the distribution size, the y axis the throughput.
    """
    points = front.points
    if not points:
        return "(empty Pareto front — the graph deadlocks at every size)\n"

    min_size = points[0].size
    max_size = points[-1].size
    max_thr = points[-1].throughput
    size_span = max(max_size - min_size, 1)
    thr_span = max_thr if max_thr > 0 else Fraction(1)

    def column(size: int) -> int:
        return round((size - min_size) / size_span * (width - 1))

    def row(thr: Fraction) -> int:
        return (height - 1) - round(thr / thr_span * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    # Staircase: horizontal segment at each point's level up to the
    # next point's column.
    for index, point in enumerate(points):
        r = row(point.throughput)
        c_start = column(point.size)
        c_end = column(points[index + 1].size) if index + 1 < len(points) else width - 1
        for c in range(c_start, c_end + 1):
            if grid[r][c] == " ":
                grid[r][c] = "-"
        if index + 1 < len(points):
            r_next = row(points[index + 1].throughput)
            for rr in range(min(r, r_next), max(r, r_next) + 1):
                if grid[rr][c_end] == " ":
                    grid[rr][c_end] = "|"
        grid[r][c_start] = "o"

    lines = []
    if title:
        lines.append(title)
    top_label = f"{max_thr} -"
    pad = len(top_label)
    for r, row_cells in enumerate(grid):
        prefix = top_label if r == 0 else " " * pad
        lines.append(prefix + "".join(row_cells))
    axis = " " * pad + "+" + "-" * (width - 1)
    lines.append(axis)
    left = str(min_size)
    right = str(max_size)
    gap = max(width - len(left) - len(right), 1)
    lines.append(" " * pad + left + " " * gap + right)
    lines.append(" " * pad + "distribution size (tokens)")
    return "\n".join(lines) + "\n"
