"""Textual tables: schedules (Table 1) and the experiment summary (Table 2)."""

from __future__ import annotations

import time as _time
from collections.abc import Mapping, Sequence

from repro.buffers.explorer import DesignSpaceResult, explore_design_space
from repro.engine.executor import Executor
from repro.engine.schedule import Schedule
from repro.graph.graph import SDFGraph


def schedule_table(schedule: Schedule, until: int, actors: Sequence[str] | None = None) -> str:
    """Render a schedule as the paper's Table 1: one row per actor,
    one column per time step; the actor letter marks a firing start
    and ``*`` marks continuation steps.
    """
    names = list(actors) if actors is not None else schedule.graph.actor_names
    header = ["time"] + [str(step + 1) for step in range(until)]
    rows = [header]
    for name in names:
        row = [name]
        for step in range(until):
            activity = schedule.activity(name, step)
            if activity == "start":
                row.append(name)
            elif activity == "running":
                row.append("*")
            else:
                row.append("")
        rows.append(row)
    return render_table(rows)


def render_table(rows: Sequence[Sequence[str]]) -> str:
    """Align a list of string rows into a fixed-width text table."""
    if not rows:
        return ""
    columns = max(len(row) for row in rows)
    widths = [0] * columns
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    for row in rows:
        padded = [str(cell).ljust(widths[index]) for index, cell in enumerate(row)]
        padded += ["".ljust(widths[index]) for index in range(len(row), columns)]
        lines.append("| " + " | ".join(padded) + " |")
    separator = "|" + "|".join("-" * (width + 2) for width in widths) + "|"
    lines.insert(1, separator)
    return "\n".join(lines)


def table2_row(
    graph: SDFGraph,
    observe: str | None = None,
    result: DesignSpaceResult | None = None,
) -> dict[str, object]:
    """One row of the paper's Table 2 for *graph*.

    Runs the full design-space exploration unless a precomputed
    *result* is passed.  Keys mirror the paper's rows: actor/channel
    counts, minimal distribution size for positive throughput, maximal
    throughput and its distribution size, number of Pareto points,
    maximum stored states, and exploration wall time.
    """
    started = _time.perf_counter()
    if result is None:
        result = explore_design_space(graph, observe)
    elapsed = _time.perf_counter() - started

    first = result.front.min_positive
    last = result.front.max_throughput_point
    return {
        "example": graph.name,
        "actors": graph.num_actors,
        "channels": graph.num_channels,
        "min thr > 0": str(first.throughput) if first else "-",
        "size (min)": first.size if first else "-",
        "max thr": str(last.throughput) if last else "-",
        "size (max)": last.size if last else "-",
        "#pareto": len(result.front),
        "max #states": result.stats.max_states_stored,
        "time [s]": f"{result.stats.wall_time_s or elapsed:.2f}",
    }


def table2(rows: Sequence[Mapping[str, object]]) -> str:
    """Render Table 2 from :func:`table2_row` dictionaries.

    Laid out like the paper: one column per example graph, one row per
    metric.
    """
    if not rows:
        return ""
    metrics = [key for key in rows[0] if key != "example"]
    table: list[list[str]] = [["" ] + [str(row["example"]) for row in rows]]
    for metric in metrics:
        table.append([metric] + [str(row.get(metric, "-")) for row in rows])
    return render_table(table)


def schedule_for(
    graph: SDFGraph, capacities: Mapping[str, int], observe: str | None = None
) -> Schedule:
    """Convenience: run *graph* under *capacities* and return the schedule."""
    result = Executor(graph, capacities, observe, record_schedule=True).run()
    assert result.schedule is not None
    return result.schedule
