"""Paper-vs-measured experiment records.

The benchmark harness emits one :class:`ExperimentRecord` per
reproduced table/figure quantity; EXPERIMENTS.md is the curated,
committed rendering of the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.reporting.tables import render_table


@dataclass(frozen=True)
class ExperimentRecord:
    """One reproduced quantity with its paper counterpart."""

    experiment: str
    quantity: str
    paper: str
    measured: str
    match: str = ""
    note: str = ""


def render_records(records: Sequence[ExperimentRecord]) -> str:
    """Render records as an aligned text table."""
    rows: list[list[str]] = [["experiment", "quantity", "paper", "measured", "match", "note"]]
    for record in records:
        rows.append(
            [record.experiment, record.quantity, record.paper, record.measured, record.match, record.note]
        )
    return render_table(rows)
