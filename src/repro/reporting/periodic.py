"""Extraction of the steady-state periodic schedule pattern.

Sec. 4 of the paper: every schedule of a consistent graph consists of
a transient phase followed by a periodic phase that repeats forever
("the schedule from time step 3 to time step 9 is repeated
indefinitely").  When a Pareto point is found, the paper's tool
generates that schedule; this module extracts and renders it — the
transient length, the period, and one period's firing pattern with
offsets relative to the period start.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.analysis.repetitions import repetition_vector
from repro.engine.executor import Executor
from repro.exceptions import DeadlockError
from repro.graph.graph import SDFGraph
from repro.reporting.tables import render_table


@dataclass(frozen=True)
class PeriodicFiring:
    """One firing of the repeating pattern, relative to the period start."""

    actor: str
    offset: int
    duration: int


@dataclass(frozen=True)
class PeriodicPattern:
    """The steady-state schedule: transient prefix + repeating pattern."""

    period: int
    transient_until: int
    firings: tuple[PeriodicFiring, ...]

    def firings_of(self, actor: str) -> list[PeriodicFiring]:
        """The pattern's firings of *actor*."""
        return [firing for firing in self.firings if firing.actor == actor]


def steady_state_pattern(
    graph: SDFGraph,
    capacities: Mapping[str, int] | None,
    observe: str | None = None,
) -> PeriodicPattern:
    """Execute and extract the repeating firing pattern.

    Raises :class:`DeadlockError` when the execution deadlocks (a
    deadlocked run has no periodic phase).
    """
    result = Executor(graph, capacities, observe, record_schedule=True).run()
    if result.deadlocked:
        raise DeadlockError(
            "the execution deadlocks; there is no periodic schedule", result.deadlock_time
        )
    start = result.cycle_start_time
    period = result.cycle_duration
    assert result.schedule is not None
    firings = tuple(
        PeriodicFiring(event.actor, event.start - start, event.duration)
        for event in result.schedule.events
        if start <= event.start < start + period
    )
    return PeriodicPattern(period=period, transient_until=start, firings=firings)


def verify_pattern_counts(graph: SDFGraph, pattern: PeriodicPattern) -> None:
    """Check the pattern contains repetition-vector-proportional firings.

    Within one period every actor fires ``k * q[a]`` times for a
    common integer ``k`` (the number of graph iterations per period).
    Raises :class:`AssertionError` otherwise — used by tests and
    available as a sanity check for applications.
    """
    q = repetition_vector(graph)
    counts = {name: len(pattern.firings_of(name)) for name in graph.actor_names}
    ratios = {name: counts[name] / q[name] for name in graph.actor_names}
    assert len(set(ratios.values())) == 1, f"unbalanced period: {counts} vs q={q}"
    k = next(iter(ratios.values()))
    assert k == int(k) and k >= 1, f"period covers a fractional iteration count {k}"


def render_pattern(pattern: PeriodicPattern) -> str:
    """Render the pattern as an aligned text table."""
    rows = [["actor", "offset", "duration"]]
    for firing in sorted(pattern.firings, key=lambda f: (f.offset, f.actor)):
        rows.append([firing.actor, str(firing.offset), str(firing.duration)])
    header = (
        f"transient until t={pattern.transient_until}; then every {pattern.period} steps:"
    )
    return header + "\n" + render_table(rows)
