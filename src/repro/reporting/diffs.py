"""Render and compare saved exploration artefacts.

The CLIs write two kinds of JSON document: full exploration results
(``--output-json``, schema of :meth:`~repro.buffers.explorer
.DesignSpaceResult.to_dict`) and telemetry snapshots (``--stats-json``,
schema of :meth:`~repro.runtime.telemetry.TelemetryHub.snapshot`).
This module is the shared engine behind the ``repro report`` and
``repro diff`` verbs: it classifies a document, renders it as fixed
width tables (reusing :func:`repro.reporting.tables.render_table`) and
computes deltas between two documents of the same kind — Pareto points
gained/lost/moved, probe-count deltas, per-timer (and therefore
per-backend) timing deltas.
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Mapping

from repro.exceptions import ParseError
from repro.reporting.tables import render_table

#: Stats keys worth surfacing in reports and diffs, in display order.
#: (``wall_time_s`` is deliberately last: it is the only
#: machine-dependent row.)
RESULT_STAT_KEYS = (
    "strategy",
    "backend",
    "workers",
    "evaluations",
    "cache_hits",
    "prunes",
    "bounds_exact",
    "bounds_cut",
    "speculative_issued",
    "speculative_useful",
    "batch_calls",
    "batch_lanes",
    "max_states_stored",
    "wall_time_s",
)


def classify_document(document: Mapping) -> str:
    """``"result"`` (a saved exploration) or ``"stats"`` (a telemetry
    snapshot); anything else raises :class:`ParseError`."""
    if not isinstance(document, Mapping):
        raise ParseError("expected a JSON object")
    if "pareto_front" in document:
        return "result"
    if "counters" in document:
        return "stats"
    raise ParseError(
        "unrecognised document: expected an exploration result"
        ' (with "pareto_front") or a telemetry snapshot (with "counters")'
    )


def load_document(path: str | Path) -> tuple[str, dict]:
    """Load *path* and classify it; returns ``(kind, document)``."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ParseError(f"{path}: not valid JSON: {error}") from None
    return classify_document(document), document


# -- rendering one document ------------------------------------------------
def front_table(result: Mapping) -> str:
    """The Pareto front of a result document as a table."""
    rows = [["size", "throughput", "witnesses"]]
    for point in result.get("pareto_front", []):
        witnesses = point.get("witnesses", [])
        shown = ", ".join(
            "{" + ", ".join(f"{k}={v}" for k, v in sorted(w.items())) + "}"
            for w in witnesses[:2]
        )
        if len(witnesses) > 2:
            shown += f" (+{len(witnesses) - 2} more)"
        rows.append([str(point.get("size")), str(point.get("throughput")), shown])
    return render_table(rows)


def result_stat_rows(result: Mapping) -> list[list[str]]:
    stats = result.get("stats", {})
    rows = [["metric", "value"]]
    for key in RESULT_STAT_KEYS:
        if key in stats and stats[key] is not None:
            value = stats[key]
            rows.append([key, f"{value:.4f}" if isinstance(value, float) else str(value)])
    return rows


def report_text(kind: str, document: Mapping, label: str = "document") -> str:
    """Human rendering of one document (``repro report``)."""
    lines: list[str] = []
    if kind == "result":
        graph = document.get("graph", "?")
        observe = document.get("observe", "?")
        front = document.get("pareto_front", [])
        status = "complete" if document.get("complete", True) else (
            f"PARTIAL (exhausted: {document.get('exhausted')})"
        )
        lines.append(
            f"{label}: exploration of {graph!r} observing {observe!r} — "
            f"{len(front)} Pareto point(s), {status}"
        )
        lines.append("")
        lines.append(front_table(document))
        lines.append("")
        lines.append(render_table(result_stat_rows(document)))
    else:
        counters = document.get("counters", {})
        timers = document.get("timers", {})
        lines.append(
            f"{label}: telemetry snapshot — {len(counters)} counter(s),"
            f" {len(timers)} timer(s), {document.get('elapsed_s', 0.0):.3f}s elapsed"
        )
        if counters:
            rows = [["counter", "count"]]
            rows += [[name, str(count)] for name, count in sorted(counters.items())]
            lines.append("")
            lines.append(render_table(rows))
        if timers:
            rows = [["timer", "count", "total_s"]]
            rows += [
                [name, str(int(timer["count"])), f"{timer['total_s']:.4f}"]
                for name, timer in sorted(timers.items())
            ]
            lines.append("")
            lines.append(render_table(rows))
    return "\n".join(lines)


# -- diffing two documents -------------------------------------------------
def _front_index(result: Mapping) -> dict[int, str]:
    """``{size: throughput}`` over the Pareto points of a result."""
    return {
        int(point["size"]): str(point["throughput"])
        for point in result.get("pareto_front", [])
    }


def front_diff(a: Mapping, b: Mapping) -> dict:
    """Structured Pareto delta between two result documents.

    ``added`` / ``removed`` are sizes present in only one front;
    ``changed`` maps sizes whose throughput moved; ``identical`` is
    true when the fronts agree point-for-point (witnesses included).
    """
    index_a, index_b = _front_index(a), _front_index(b)
    added = sorted(set(index_b) - set(index_a))
    removed = sorted(set(index_a) - set(index_b))
    changed = {
        size: (index_a[size], index_b[size])
        for size in sorted(set(index_a) & set(index_b))
        if index_a[size] != index_b[size]
    }
    identical = a.get("pareto_front", []) == b.get("pareto_front", [])
    return {
        "added": added,
        "removed": removed,
        "changed": changed,
        "identical": identical,
    }


def _delta_rows(
    header: list[str],
    keys,
    get_a,
    get_b,
    *,
    all_rows: bool = False,
) -> list[list[str]]:
    rows = [header]
    for key in keys:
        value_a, value_b = get_a(key), get_b(key)
        if value_a == value_b and not all_rows:
            continue
        if isinstance(value_a, (int, float)) and isinstance(value_b, (int, float)):
            delta = value_b - value_a
            rendered = f"{delta:+.4f}" if isinstance(delta, float) else f"{delta:+d}"
        else:
            rendered = "changed" if value_a != value_b else ""
        fmt = lambda v: (f"{v:.4f}" if isinstance(v, float) else str(v))  # noqa: E731
        rows.append([str(key), fmt(value_a), fmt(value_b), rendered])
    return rows


def diff_text(
    kind_a: str,
    a: Mapping,
    kind_b: str,
    b: Mapping,
    label_a: str = "A",
    label_b: str = "B",
) -> tuple[str, bool]:
    """Human rendering of the delta between two documents.

    Returns ``(text, identical)`` where *identical* reflects the
    payload that matters: the Pareto front for results, the counters
    for stats snapshots.  Mixing document kinds raises
    :class:`ParseError`.
    """
    if kind_a != kind_b:
        raise ParseError(
            f"cannot diff a {kind_a} document against a {kind_b} document"
        )
    lines: list[str] = []
    if kind_a == "result":
        delta = front_diff(a, b)
        if delta["identical"]:
            lines.append(
                f"Pareto fronts identical: {len(a.get('pareto_front', []))} point(s)."
            )
        else:
            lines.append("Pareto fronts differ:")
            rows = [["size", label_a, label_b]]
            for size in delta["removed"]:
                rows.append([str(size), _front_index(a)[size], "-"])
            for size in delta["added"]:
                rows.append([str(size), "-", _front_index(b)[size]])
            for size, (thr_a, thr_b) in delta["changed"].items():
                rows.append([str(size), thr_a, thr_b])
            lines.append(render_table(rows))
        stats_a, stats_b = a.get("stats", {}), b.get("stats", {})
        rows = _delta_rows(
            ["stat", label_a, label_b, "delta"],
            [key for key in RESULT_STAT_KEYS if key in stats_a or key in stats_b],
            lambda k: stats_a.get(k, 0),
            lambda k: stats_b.get(k, 0),
        )
        if len(rows) > 1:
            lines.append("")
            lines.append(render_table(rows))
        else:
            lines.append("")
            lines.append("stats identical (evaluations, cache hits, counters).")
        return "\n".join(lines), delta["identical"]

    counters_a = a.get("counters", {})
    counters_b = b.get("counters", {})
    identical = counters_a == counters_b
    if identical:
        lines.append(f"counters identical ({len(counters_a)} counter(s)).")
    else:
        rows = _delta_rows(
            ["counter", label_a, label_b, "delta"],
            sorted(set(counters_a) | set(counters_b)),
            lambda k: counters_a.get(k, 0),
            lambda k: counters_b.get(k, 0),
        )
        lines.append("counters differ:")
        lines.append(render_table(rows))
    timers_a = a.get("timers", {})
    timers_b = b.get("timers", {})
    rows = [["timer", f"{label_a} count", f"{label_b} count", f"{label_a} total_s", f"{label_b} total_s"]]
    for name in sorted(set(timers_a) | set(timers_b)):
        ta = timers_a.get(name, {"count": 0, "total_s": 0.0})
        tb = timers_b.get(name, {"count": 0, "total_s": 0.0})
        if ta == tb:
            continue
        rows.append(
            [
                name,
                str(int(ta["count"])),
                str(int(tb["count"])),
                f"{ta['total_s']:.4f}",
                f"{tb['total_s']:.4f}",
            ]
        )
    if len(rows) > 1:
        lines.append("")
        lines.append(render_table(rows))
    return "\n".join(lines), identical
