"""Per-time-step channel occupancy tables.

A textual complement to the schedule Gantt of Table 1: one row per
channel, one column per time step, showing the number of stored
tokens at each instant.  Built from the full tick state space of
Sec. 6, so each column is exactly one of the paper's Fig. 3 states.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.engine.executor import Executor
from repro.graph.graph import SDFGraph
from repro.reporting.tables import render_table


def token_table(
    graph: SDFGraph,
    capacities: Mapping[str, int] | None,
    until: int,
    observe: str | None = None,
) -> str:
    """Render channel token counts for the first *until* time steps."""
    executor = Executor(graph, capacities, observe)
    states, cycle_start = executor.explore_full_state_space()

    # Extend periodically when the requested horizon exceeds the
    # explored prefix (the cycle repeats forever).
    def state_at(step: int):
        if step < len(states):
            return states[step]
        period = len(states) - cycle_start
        return states[cycle_start + (step - cycle_start) % period]

    header = ["time"] + [str(step) for step in range(until)]
    rows = [header]
    for index, name in enumerate(graph.channel_names):
        row = [name]
        for step in range(until):
            row.append(str(state_at(step).tokens[index]))
        rows.append(row)
    return render_table(rows)


def occupancy_series(
    graph: SDFGraph,
    capacities: Mapping[str, int] | None,
    until: int,
    observe: str | None = None,
) -> dict[str, list[int]]:
    """The same data as :func:`token_table`, as per-channel lists."""
    executor = Executor(graph, capacities, observe)
    states, cycle_start = executor.explore_full_state_space()
    period = len(states) - cycle_start

    series: dict[str, list[int]] = {name: [] for name in graph.channel_names}
    for step in range(until):
        if step < len(states):
            state = states[step]
        else:
            state = states[cycle_start + (step - cycle_start) % period]
        for index, name in enumerate(graph.channel_names):
            series[name].append(state.tokens[index])
    return series
