"""SVG Gantt rendering of schedules.

A self-contained SVG document with one row per actor and one rectangle
per firing — the graphical version of the paper's Table 1, viewable in
any browser.  No third-party dependencies; plain string templating.
"""

from __future__ import annotations

from repro.engine.schedule import Schedule

#: Fill colours cycled over actors (a colour-blind-safe palette).
_PALETTE = ("#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb")

_ROW_HEIGHT = 28
_BAR_HEIGHT = 20
_LEFT_MARGIN = 90
_TOP_MARGIN = 30
_STEP_WIDTH = 22


def schedule_to_svg(schedule: Schedule, until: int | None = None, title: str | None = None) -> str:
    """Render *schedule* as an SVG Gantt chart.

    ``until`` truncates the time axis; zero-duration firings appear as
    thin ticks.
    """
    names = schedule.graph.actor_names
    horizon = schedule.horizon if until is None else min(until, schedule.horizon)
    width = _LEFT_MARGIN + horizon * _STEP_WIDTH + 20
    height = _TOP_MARGIN + len(names) * _ROW_HEIGHT + 30

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}"'
        f' font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(f'<text x="{_LEFT_MARGIN}" y="18" font-weight="bold">{title}</text>')

    # Grid and axis labels.
    for step in range(horizon + 1):
        x = _LEFT_MARGIN + step * _STEP_WIDTH
        parts.append(
            f'<line x1="{x}" y1="{_TOP_MARGIN}" x2="{x}"'
            f' y2="{_TOP_MARGIN + len(names) * _ROW_HEIGHT}" stroke="#dddddd"/>'
        )
        if step % max(1, horizon // 16) == 0:
            parts.append(
                f'<text x="{x}" y="{_TOP_MARGIN + len(names) * _ROW_HEIGHT + 16}"'
                f' text-anchor="middle" fill="#555555">{step}</text>'
            )

    for row, name in enumerate(names):
        y = _TOP_MARGIN + row * _ROW_HEIGHT
        parts.append(
            f'<text x="{_LEFT_MARGIN - 8}" y="{y + _BAR_HEIGHT - 4}" text-anchor="end">{name}</text>'
        )
        colour = _PALETTE[row % len(_PALETTE)]
        for event in schedule.firings(name):
            if event.start >= horizon:
                continue
            x = _LEFT_MARGIN + event.start * _STEP_WIDTH
            if event.duration == 0:
                parts.append(
                    f'<rect x="{x - 1}" y="{y}" width="2" height="{_BAR_HEIGHT}"'
                    f' fill="{colour}"/>'
                )
                continue
            span = (min(event.end, horizon) - event.start) * _STEP_WIDTH
            parts.append(
                f'<rect x="{x}" y="{y}" width="{span}" height="{_BAR_HEIGHT}"'
                f' fill="{colour}" fill-opacity="0.85" stroke="{colour}"/>'
            )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"
