"""Blocking HTTP client for the analysis service (stdlib ``urllib``).

Used by the ``repro submit`` / ``repro jobs`` CLI verbs and the test
suite; application code can use it as a minimal SDK::

    client = ServiceClient("http://127.0.0.1:8000")
    fingerprint = client.submit_graph(graph)
    job = client.submit_job(fingerprint, kind="dse", observe="c")
    job = client.wait(job["id"])
    result = DesignSpaceResult.from_dict(job["result"])

Server-side failures surface as :class:`~repro.exceptions
.ServiceError` carrying the HTTP status; transport failures (server
not running) surface as the underlying :class:`URLError`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from collections.abc import Mapping

from repro.exceptions import ServiceError
from repro.graph.graph import SDFGraph
from repro.io.jsonio import graph_to_dict

#: Job states after which polling stops.  ``partial`` is included: the
#: budget is spent, so without a restart the state will not change.
SETTLED_STATES = frozenset({"done", "partial", "failed", "cancelled"})


class ServiceClient:
    """Thin blocking wrapper over the service's JSON API."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ----------------------------------------------------------
    def _request(self, method: str, path: str, payload: Mapping | None = None):
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                raw = response.read()
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                message = json.loads(raw.decode("utf-8")).get("error", raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = raw.decode("utf-8", "replace") or str(error)
            raise ServiceError(message, status=error.code) from None
        return json.loads(raw.decode("utf-8"))

    # -- graphs -------------------------------------------------------------
    def submit_graph(self, graph: SDFGraph | Mapping) -> str:
        """Register *graph*; returns its content fingerprint."""
        document = graph_to_dict(graph) if isinstance(graph, SDFGraph) else dict(graph)
        return self._request("POST", "/graphs", document)["fingerprint"]

    def graphs(self) -> list[str]:
        return self._request("GET", "/graphs")["graphs"]

    # -- jobs ---------------------------------------------------------------
    def submit_job(
        self,
        graph: str | SDFGraph | Mapping,
        *,
        kind: str = "dse",
        observe: str | None = None,
        params: Mapping | None = None,
        priority: int = 0,
        deadline_s: float | None = None,
        max_probes: int | None = None,
    ) -> dict:
        """Submit a job; *graph* is a fingerprint, graph or document."""
        if isinstance(graph, SDFGraph):
            graph = graph_to_dict(graph)
        payload: dict = {"graph": graph, "kind": kind}
        if observe is not None:
            payload["observe"] = observe
        if params:
            payload["params"] = dict(params)
        if priority:
            payload["priority"] = priority
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        if max_probes is not None:
            payload["max_probes"] = max_probes
        return self._request("POST", "/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 60.0, poll_s: float = 0.05) -> dict:
        """Poll until the job settles (done / partial / failed /
        cancelled); raises :class:`ServiceError` on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in SETTLED_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']} after {timeout}s", status=504
                )
            time.sleep(poll_s)

    # -- observability ------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def backends(self) -> list[dict]:
        """The server's probe-backend registry (``GET /backends``):
        per backend its name, capabilities and availability on the
        *server's* host — e.g. whether ``cc`` found a C compiler."""
        return self._request("GET", "/backends")["backends"]

    def metrics(self) -> str:
        """The raw Prometheus text exposition of ``GET /metrics``."""
        request = urllib.request.Request(f"{self.base_url}/metrics")
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read().decode("utf-8")
