"""Blocking HTTP client for the analysis service (stdlib ``urllib``).

Used by the ``repro submit`` / ``repro jobs`` CLI verbs and the test
suite; application code can use it as a minimal SDK::

    client = ServiceClient("http://127.0.0.1:8000")
    fingerprint = client.submit_graph(graph)
    job = client.submit_job(fingerprint, kind="dse", observe="c")
    job = client.wait(job["id"])
    result = DesignSpaceResult.from_dict(job["result"])

The client speaks the versioned ``/v1`` surface and decodes its typed
error envelope into the exception hierarchy of :mod:`repro.exceptions`:

* :class:`~repro.exceptions.ServiceUnavailable` — HTTP 503 (full
  queue, open circuit breaker, draining server);
* :class:`~repro.exceptions.RateLimited` — HTTP 429 (per-class cap);
* :class:`~repro.exceptions.ServiceError` — every other failure,
  carrying ``status``, ``code`` and ``trace_id``;
* :class:`~repro.exceptions.JobFailed` / :class:`~repro.exceptions
  .JobPartial` — raised by :meth:`ServiceClient.result` when a job
  settles short of ``done``.

Transient failures (connection refused/reset, 429/502/503/504) are
retried with exponential backoff and full jitter under a
:class:`~repro.service.resilience.RetryPolicy`: idempotent GET/DELETE
requests always, POSTs only when they carry an idempotency key —
``submit_job`` mints one automatically, so a retried submission replays
the original job instead of double-submitting.  Transport failures that
outlive the retry budget surface as the underlying :class:`URLError`.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
import uuid
from collections.abc import Mapping

from repro.exceptions import (
    JobFailed,
    JobPartial,
    RateLimited,
    ServiceError,
    ServiceUnavailable,
)
from repro.graph.graph import SDFGraph
from repro.io.jsonio import graph_to_dict
from repro.service.resilience import RetryPolicy

#: Job states after which polling stops.  ``partial`` is included: the
#: budget is spent, so without a restart the state will not change.
SETTLED_STATES = frozenset({"done", "partial", "failed", "cancelled"})

#: HTTP statuses worth retrying: overload shedding and gateway hiccups.
RETRYABLE_STATUSES = frozenset({429, 502, 503, 504})


def _error_from_response(status: int, raw: bytes, fallback: str) -> ServiceError:
    """Decode an error body (v1 envelope or legacy string) into the
    matching exception class."""
    message, code, trace_id = fallback, None, None
    try:
        payload = json.loads(raw.decode("utf-8"))
        error = payload.get("error", payload)
        if isinstance(error, Mapping):
            message = str(error.get("message", fallback))
            code = error.get("code")
            trace_id = error.get("trace_id")
        elif isinstance(error, str):
            message = error
    except (json.JSONDecodeError, UnicodeDecodeError):
        message = raw.decode("utf-8", "replace") or fallback
    if status == 503:
        return ServiceUnavailable(message, code=code, trace_id=trace_id)
    if status == 429:
        return RateLimited(message, trace_id=trace_id)
    return ServiceError(message, status=status, code=code, trace_id=trace_id)


class ServiceClient:
    """Blocking wrapper over the service's versioned JSON API.

    Parameters
    ----------
    base_url / timeout:
        Where the server listens and the per-request socket timeout.
    retry:
        The :class:`~repro.service.resilience.RetryPolicy` for
        transient failures; ``RetryPolicy.none()`` restores the old
        single-shot behaviour.
    retry_seed:
        Seed for the jitter RNG — tests pin it for deterministic
        backoff schedules.
    api_prefix:
        Route prefix, ``"/v1"`` by default.  ``""`` targets the legacy
        unversioned aliases (which answer with a ``Deprecation``
        header).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        *,
        retry: RetryPolicy | None = None,
        retry_seed: int | None = None,
        api_prefix: str = "/v1",
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.api_prefix = api_prefix
        self._rng = random.Random(retry_seed)
        #: Trace id of the most recent response (the ``X-Trace-Id``
        #: header) — thread it into logs or ``GET /v1/traces/<id>``.
        self.last_trace_id: str | None = None

    # -- transport ----------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Mapping | None = None,
        *,
        headers: Mapping[str, str] | None = None,
        idempotent: bool | None = None,
    ):
        body = None
        send_headers = {"Accept": "application/json"}
        if headers:
            send_headers.update(headers)
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        if idempotent is None:
            idempotent = method in ("GET", "DELETE") or "Idempotency-Key" in send_headers
        url = f"{self.base_url}{self.api_prefix}{path}"
        slept = 0.0
        for attempt in range(self.retry.attempts):
            request = urllib.request.Request(
                url, data=body, headers=send_headers, method=method
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    self.last_trace_id = response.headers.get("X-Trace-Id")
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as error:
                raw = error.read()
                self.last_trace_id = error.headers.get("X-Trace-Id")
                failure = _error_from_response(error.code, raw, str(error))
                if not (idempotent and error.code in RETRYABLE_STATUSES):
                    raise failure from None
            except urllib.error.URLError as error:
                if not idempotent:
                    raise
                failure = error
            if attempt + 1 >= self.retry.attempts:
                raise failure from None
            delay = self.retry.delay(attempt, self._rng)
            if self.retry.budget_s is not None and slept + delay > self.retry.budget_s:
                raise failure from None
            slept += delay
            time.sleep(delay)
        raise AssertionError("unreachable: retry loop exhausted without raising")

    # -- graphs -------------------------------------------------------------
    def submit_graph(self, graph: SDFGraph | Mapping) -> str:
        """Register *graph*; returns its content fingerprint.

        Registration is content-addressed and therefore naturally
        idempotent — retries are always safe.
        """
        document = graph_to_dict(graph) if isinstance(graph, SDFGraph) else dict(graph)
        return self._request("POST", "/graphs", document, idempotent=True)["fingerprint"]

    def graphs(self) -> list[str]:
        return self._request("GET", "/graphs")["graphs"]

    # -- jobs ---------------------------------------------------------------
    def submit_job(
        self,
        graph: str | SDFGraph | Mapping,
        *,
        kind: str = "dse",
        observe: str | None = None,
        params: Mapping | None = None,
        priority: int = 0,
        deadline_s: float | None = None,
        max_probes: int | None = None,
        job_class: str | None = None,
        idempotency_key: str | None = None,
    ) -> dict:
        """Submit a job; *graph* is a fingerprint, graph or document.

        An ``idempotency_key`` is minted automatically (making retried
        POSTs replay-safe); pass your own to deduplicate submissions
        across client restarts, or ``""`` to opt out entirely.
        """
        if isinstance(graph, SDFGraph):
            graph = graph_to_dict(graph)
        if idempotency_key is None:
            idempotency_key = uuid.uuid4().hex
        payload: dict = {"graph": graph, "kind": kind}
        if observe is not None:
            payload["observe"] = observe
        if params:
            payload["params"] = dict(params)
        if priority:
            payload["priority"] = priority
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        if max_probes is not None:
            payload["max_probes"] = max_probes
        if job_class is not None:
            payload["job_class"] = job_class
        if idempotency_key:
            payload["idempotency_key"] = idempotency_key
        return self._request(
            "POST", "/jobs", payload, idempotent=bool(idempotency_key)
        )

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 60.0, poll_s: float = 0.05) -> dict:
        """Poll until the job settles (done / partial / failed /
        cancelled); raises :class:`ServiceError` on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in SETTLED_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']} after {timeout}s", status=504
                )
            time.sleep(poll_s)

    def result(self, job_id: str, timeout: float = 60.0, poll_s: float = 0.05) -> dict:
        """Wait for *job_id* and return its ``result`` payload.

        Raises :class:`~repro.exceptions.JobFailed` when the job
        settles ``failed``, :class:`~repro.exceptions.JobPartial` when
        a budget tripped, and :class:`ServiceError` on cancellation —
        the typed alternative to inspecting ``job["state"]`` by hand.
        """
        job = self.wait(job_id, timeout=timeout, poll_s=poll_s)
        state = job["state"]
        if state == "done":
            return job["result"] or {}
        if state == "failed":
            raise JobFailed(
                f"job {job_id} failed: {job.get('error') or 'unknown error'}", job=job
            )
        if state == "partial":
            raise JobPartial(
                f"job {job_id} returned a partial result"
                f" (budget exhausted: {job.get('exhausted')})",
                job=job,
            )
        raise ServiceError(f"job {job_id} was cancelled", status=409, code="cancelled")

    # -- observability ------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def backends(self) -> list[dict]:
        """The server's probe-backend registry (``GET /v1/backends``):
        per backend its name, capabilities and availability on the
        *server's* host — e.g. whether ``cc`` found a C compiler."""
        return self._request("GET", "/backends")["backends"]

    def trace(self, trace_id: str) -> dict:
        """The server-side span recorded for *trace_id*
        (``GET /v1/traces/<id>``)."""
        return self._request("GET", f"/traces/{trace_id}")

    def metrics(self) -> str:
        """The raw Prometheus text exposition of ``GET /v1/metrics``."""
        request = urllib.request.Request(f"{self.base_url}{self.api_prefix}/metrics")
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read().decode("utf-8")
