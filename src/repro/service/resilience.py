"""Overload-control primitives for the analysis service.

Three small, independently testable pieces give :mod:`repro.service`
its heavy-traffic story (the classic resilience patterns: circuit
breaker, bulkhead, retry-with-backoff):

:class:`CircuitBreaker`
    A failure-rate window over recent job executions.  While *closed*
    everything flows; when the windowed failure rate crosses the
    threshold the breaker *opens* and admission fast-fails (HTTP 503)
    instead of queueing work onto a wedged worker plane.  After a
    cooldown it goes *half-open* and admits a bounded number of trial
    executions: the first success closes it, the first failure re-opens
    it.  All transitions are counted and (optionally) emitted on a
    :class:`~repro.runtime.telemetry.TelemetryHub`.

:class:`Bulkhead`
    Partitions a worker pool between job classes so one class cannot
    starve another: ``reserved`` workers serve *only* their class,
    the rest float.  Also carries optional per-class queue caps for
    admission control (HTTP 429 when a class floods its own queue).

:class:`RetryPolicy`
    The client-side backoff schedule: exponential growth, a cap, full
    jitter from a *seeded* RNG (deterministic in tests), and an overall
    retry budget so a retrying client still honours its deadline.

Job classes
-----------
Every job belongs to exactly one class of :data:`JOB_CLASSES`:
``interactive`` (small point queries — ``throughput`` and
``minimal-distribution`` kinds) or ``batch`` (long ``dse``
explorations).  Clients may override the default with the spec's
``job_class`` field.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Mapping

from repro.exceptions import ServiceError

#: The service's job classes, in bulkhead-partition order.
JOB_CLASSES = ("interactive", "batch")

#: Default class per job kind (``job_class`` on the spec overrides).
KIND_CLASSES = {
    "throughput": "interactive",
    "minimal-distribution": "interactive",
    "dse": "batch",
    "dse-sadf": "batch",
}

#: Breaker states, also exported as a numeric gauge on ``/metrics``
#: (closed=0, half-open=1, open=2).
BREAKER_STATES = ("closed", "half-open", "open")


def classify(kind: str, job_class: str | None = None) -> str:
    """The job class for a job of *kind*, honouring an explicit override."""
    if job_class is not None:
        if job_class not in JOB_CLASSES:
            raise ServiceError(
                f"unknown job class {job_class!r}; expected one of {JOB_CLASSES}"
            )
        return job_class
    return KIND_CLASSES.get(kind, "batch")


class CircuitBreaker:
    """Closed / open / half-open breaker over a sliding outcome window.

    Parameters
    ----------
    name:
        Label used in telemetry events and error messages (the job
        class, for the service's per-class breakers).
    window:
        Number of most-recent execution outcomes considered.
    min_calls:
        Minimum outcomes in the window before the failure rate can trip
        the breaker (avoids opening on the first failure of a quiet
        class).
    failure_threshold:
        Windowed failure rate (``0..1``) at or above which the breaker
        opens.
    cooldown_s:
        Seconds the breaker stays open before probing half-open.
    half_open_max:
        Maximum trial executions admitted while half-open.
    clock / telemetry:
        Injectable monotonic clock (tests freeze it) and optional
        :class:`~repro.runtime.telemetry.TelemetryHub` receiving
        ``breaker_open`` / ``breaker_half_open`` / ``breaker_close`` /
        ``breaker_rejected`` events.
    """

    def __init__(
        self,
        name: str = "default",
        *,
        window: int = 32,
        min_calls: int = 4,
        failure_threshold: float = 0.5,
        cooldown_s: float = 5.0,
        half_open_max: int = 2,
        clock=time.monotonic,
        telemetry=None,
    ):
        if window < 1:
            raise ServiceError("breaker window must be >= 1")
        if not 0.0 < failure_threshold <= 1.0:
            raise ServiceError("breaker failure_threshold must be in (0, 1]")
        if cooldown_s <= 0:
            raise ServiceError("breaker cooldown_s must be positive")
        if half_open_max < 1:
            raise ServiceError("breaker half_open_max must be >= 1")
        self.name = name
        self.min_calls = max(1, int(min_calls))
        self.failure_threshold = float(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.half_open_max = int(half_open_max)
        self._clock = clock
        self._telemetry = telemetry
        self._lock = threading.Lock()
        self._outcomes: deque[bool] = deque(maxlen=int(window))
        self._state = "closed"
        self._opened_at: float | None = None
        self._trials = 0  # half-open admissions not yet resolved
        self.counters: dict[str, int] = {
            "rejected": 0, "opened": 0, "half_opened": 0, "closed": 0,
        }

    # -- observation --------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when cooled down."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def failure_rate(self) -> float:
        with self._lock:
            if not self._outcomes:
                return 0.0
            return 1.0 - sum(self._outcomes) / len(self._outcomes)

    def snapshot(self) -> dict:
        """JSON-friendly state for ``/healthz`` and debugging."""
        return {
            "name": self.name,
            "state": self.state,
            "failure_rate": self.failure_rate,
            "counters": dict(self.counters),
        }

    # -- admission ----------------------------------------------------------
    def allow(self) -> bool:
        """May one more execution be admitted right now?

        Half-open admissions are counted as trials; callers must report
        the outcome (:meth:`record_success` / :meth:`record_failure`)
        or give the slot back (:meth:`release`) if the work never ran.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == "open":
                self.counters["rejected"] += 1
                self._emit("breaker_rejected")
                return False
            if self._state == "half-open":
                if self._trials >= self.half_open_max:
                    self.counters["rejected"] += 1
                    self._emit("breaker_rejected")
                    return False
                self._trials += 1
            return True

    @property
    def retry_after_s(self) -> float:
        """Seconds until an open breaker will probe half-open (0 when
        not open) — the ``Retry-After`` hint for rejected requests."""
        with self._lock:
            if self._state != "open" or self._opened_at is None:
                return 0.0
            return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))

    # -- outcomes -----------------------------------------------------------
    def record_success(self) -> None:
        with self._lock:
            self._outcomes.append(True)
            if self._state == "half-open":
                self._release_trial()
                self._close()

    def record_failure(self) -> None:
        with self._lock:
            self._outcomes.append(False)
            if self._state == "half-open":
                self._release_trial()
                self._open()
            elif self._state == "closed":
                if (
                    len(self._outcomes) >= self.min_calls
                    and 1.0 - sum(self._outcomes) / len(self._outcomes)
                    >= self.failure_threshold
                ):
                    self._open()

    def release(self) -> None:
        """Give back an admission whose work never executed (e.g. a
        queued job cancelled before a worker picked it up)."""
        with self._lock:
            self._release_trial()

    # -- transitions (caller holds the lock) --------------------------------
    def _maybe_half_open(self) -> None:
        if (
            self._state == "open"
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = "half-open"
            self._trials = 0
            self.counters["half_opened"] += 1
            self._emit("breaker_half_open")

    def _open(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self._trials = 0
        self.counters["opened"] += 1
        self._emit("breaker_open")

    def _close(self) -> None:
        self._state = "closed"
        self._opened_at = None
        self._trials = 0
        self._outcomes.clear()
        self.counters["closed"] += 1
        self._emit("breaker_close")

    def _release_trial(self) -> None:
        if self._trials > 0:
            self._trials -= 1

    def _emit(self, event: str) -> None:
        if self._telemetry is not None:
            self._telemetry.emit(event, breaker=self.name)


class Bulkhead:
    """Worker-slot partition plan between job classes.

    ``reserved[cls]`` workers serve *only* class ``cls``; workers beyond
    the reservations float over every class.  A reservation for a class
    guarantees it forward progress no matter how deep the other class's
    backlog is — the bulkhead property the overload tests assert.

    ``queue_caps[cls]`` optionally bounds how many jobs of a class may
    *wait* (admission control, HTTP 429); ``None`` leaves a class
    uncapped, subject only to the manager's global ``queue_size``.
    """

    def __init__(
        self,
        workers: int,
        reserved: Mapping[str, int] | None = None,
        queue_caps: Mapping[str, int | None] | None = None,
    ):
        if workers < 1:
            raise ServiceError("bulkhead needs at least one worker")
        reserved = dict(reserved or {})
        for cls, count in reserved.items():
            if cls not in JOB_CLASSES:
                raise ServiceError(
                    f"unknown bulkhead class {cls!r}; expected one of {JOB_CLASSES}"
                )
            if count < 0:
                raise ServiceError(f"bulkhead reservation for {cls!r} must be >= 0")
        if sum(reserved.values()) > workers:
            raise ServiceError(
                f"bulkhead reservations ({sum(reserved.values())}) exceed the"
                f" worker pool ({workers})"
            )
        self.workers = int(workers)
        self.reserved = {cls: int(reserved.get(cls, 0)) for cls in JOB_CLASSES}
        self.queue_caps: dict[str, int | None] = {
            cls: None for cls in JOB_CLASSES
        }
        for cls, cap in (queue_caps or {}).items():
            if cls not in JOB_CLASSES:
                raise ServiceError(
                    f"unknown bulkhead class {cls!r}; expected one of {JOB_CLASSES}"
                )
            self.queue_caps[cls] = None if cap is None else int(cap)

    def allowed_classes(self, worker_index: int) -> tuple[str, ...]:
        """The classes worker *worker_index* may execute.

        The first ``reserved["interactive"]`` workers are pinned to
        interactive jobs, the next ``reserved["batch"]`` to batch jobs,
        and the rest float (interactive first on ties, so point queries
        win the race for a freed floater).
        """
        offset = 0
        for cls in JOB_CLASSES:
            count = self.reserved[cls]
            if offset <= worker_index < offset + count:
                return (cls,)
            offset += count
        return JOB_CLASSES

    def admits(self, job_class: str, queued: int) -> bool:
        """Is another *job_class* submission admissible with *queued*
        jobs of that class already waiting?"""
        cap = self.queue_caps.get(job_class)
        return cap is None or queued < cap

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "reserved": dict(self.reserved),
            "queue_caps": dict(self.queue_caps),
        }


class RetryPolicy:
    """Client-side retry schedule: exponential backoff with full jitter.

    ``delay(attempt, rng)`` is ``uniform(0, min(cap_s, base_s *
    multiplier**attempt))`` — the classic full-jitter curve that spreads
    a thundering herd.  With ``jitter=False`` the delay is the
    deterministic upper envelope (useful for exact assertions).

    ``budget_s`` bounds the *total* sleep across all retries of one
    logical request, so retries respect an overall deadline;
    ``attempts`` is the maximum number of tries (the first call
    included).
    """

    def __init__(
        self,
        attempts: int = 4,
        *,
        base_s: float = 0.1,
        cap_s: float = 2.0,
        multiplier: float = 2.0,
        jitter: bool = True,
        budget_s: float | None = None,
    ):
        if attempts < 1:
            raise ServiceError("retry attempts must be >= 1")
        if base_s < 0 or cap_s < 0:
            raise ServiceError("retry delays must be >= 0")
        if multiplier < 1.0:
            raise ServiceError("retry multiplier must be >= 1")
        self.attempts = int(attempts)
        self.base_s = float(base_s)
        self.cap_s = float(cap_s)
        self.multiplier = float(multiplier)
        self.jitter = bool(jitter)
        self.budget_s = budget_s

    def delay(self, attempt: int, rng) -> float:
        """Sleep before retry number *attempt* (0-based), drawn from *rng*."""
        envelope = min(self.cap_s, self.base_s * self.multiplier**attempt)
        if not self.jitter:
            return envelope
        return rng.uniform(0.0, envelope)

    #: A policy that never retries (drop-in for the old single-shot client).
    @classmethod
    def none(cls) -> "RetryPolicy":
        return cls(attempts=1)
