"""Content-addressed graph registry with shared memo banks.

The analysis server is multi-client: many clients may submit the same
graph (the same pipeline template instantiated by every user of a
product, say) and run overlapping analyses on it.  The registry makes
that cheap:

* graphs are stored under their **content fingerprint**
  (:func:`repro.io.jsonio.graph_fingerprint`), so identical graphs —
  whatever their display name or the order their actors were declared
  in — share one entry;
* each entry carries one :class:`MemoBank` per observed actor: the
  union of every exact evaluation any job ever paid for on that graph.
  A new job on a known graph starts with the bank pre-loaded into its
  :class:`~repro.buffers.evalcache.EvaluationService`, so probes other
  clients already ran are answered from memory.

Graphs are persisted as plain JSON under ``<data_dir>/graphs/`` so a
restarted server still resolves the fingerprints referenced by its
persisted job store.  Banks are in-memory only — the durable copy of
an interrupted job's evaluations is its checkpoint file (see
:mod:`repro.service.jobs`).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from collections.abc import Mapping

from repro.exceptions import ServiceError
from repro.graph.graph import SDFGraph
from repro.io.jsonio import graph_fingerprint, graph_from_dict, graph_to_dict
from repro.io.sadfjson import (
    is_sadf_document,
    sadf_fingerprint,
    sadf_from_dict,
    sadf_to_dict,
)
from repro.sadf.graph import SADFGraph


class MemoBank:
    """The accumulated exact evaluations of one (graph, observe) pair.

    Holds :meth:`~repro.buffers.evalcache.EvaluationService
    .export_state`-shaped entries keyed by capacity vector.  Absorbing
    a newer export never discards information: records carrying
    blocking data win over thin ones, and the throughput ceiling is
    kept once any job establishes it.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[int, ...], dict] = {}
        self._ceiling: str | None = None

    def __len__(self) -> int:
        return len(self._entries)

    def absorb(self, state: Mapping) -> None:
        """Merge an ``export_state`` payload into the bank."""
        if state.get("ceiling") is not None:
            self._ceiling = state["ceiling"]
        for entry in state.get("memo", ()):
            key = tuple(int(cap) for cap in entry["caps"])
            existing = self._entries.get(key)
            if existing is not None and existing.get("blocked") is not None:
                continue  # never replace a full record with a thinner one
            self._entries[key] = dict(entry)

    def snapshot(self) -> dict:
        """A ``restore_state``-ready payload (stats intentionally absent,
        so restoring never inflates a job's own counters)."""
        return {
            "ceiling": self._ceiling,
            "memo": [dict(entry) for entry in self._entries.values()],
        }


class GraphRegistry:
    """Thread-safe, content-addressed store of submitted graphs.

    Parameters
    ----------
    data_dir:
        Service data directory; graphs are persisted under
        ``data_dir/graphs/<fingerprint>.json``.  ``None`` keeps the
        registry purely in-memory (unit tests).
    """

    def __init__(self, data_dir: str | Path | None = None):
        self._lock = threading.RLock()
        self._graphs: dict[str, SDFGraph | SADFGraph] = {}
        self._banks: dict[tuple[str, str], MemoBank] = {}
        self._dir: Path | None = None
        if data_dir is not None:
            self._dir = Path(data_dir) / "graphs"
            self._dir.mkdir(parents=True, exist_ok=True)
            for path in sorted(self._dir.glob("*.json")):
                data = json.loads(path.read_text(encoding="utf-8"))
                if is_sadf_document(data):
                    self._graphs[path.stem] = sadf_from_dict(data)
                else:
                    self._graphs[path.stem] = graph_from_dict(data)

    def __len__(self) -> int:
        with self._lock:
            return len(self._graphs)

    def fingerprints(self) -> list[str]:
        with self._lock:
            return sorted(self._graphs)

    def add(self, graph: SDFGraph | SADFGraph | Mapping) -> tuple[str, bool]:
        """Register *graph* (an :class:`SDFGraph`, an
        :class:`~repro.sadf.graph.SADFGraph`, or a JSON dict — scenario
        documents are recognised by their ``"model": "sadf"`` marker).

        Returns ``(fingerprint, known)`` where *known* tells whether an
        identical graph was already registered — in which case the
        existing entry (and its warm memo banks) is kept.
        """
        if isinstance(graph, Mapping):
            graph = sadf_from_dict(graph) if is_sadf_document(graph) else (
                graph_from_dict(graph)
            )
        if isinstance(graph, SADFGraph):
            fingerprint = sadf_fingerprint(graph)
            payload = sadf_to_dict(graph)
        else:
            fingerprint = graph_fingerprint(graph)
            payload = graph_to_dict(graph)
        with self._lock:
            known = fingerprint in self._graphs
            if not known:
                self._graphs[fingerprint] = graph
                if self._dir is not None:
                    path = self._dir / f"{fingerprint}.json"
                    path.write_text(
                        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
                    )
        return fingerprint, known

    def get(self, fingerprint: str) -> SDFGraph | SADFGraph:
        """The graph stored under *fingerprint* (404 when unknown)."""
        with self._lock:
            try:
                return self._graphs[fingerprint]
            except KeyError:
                raise ServiceError(
                    f"unknown graph fingerprint {fingerprint!r}; POST the graph"
                    " to /graphs first", status=404
                ) from None

    def bank(self, fingerprint: str, observe: str) -> MemoBank:
        """The memo bank of (*fingerprint*, *observe*), created on demand."""
        with self._lock:
            self.get(fingerprint)  # validate the fingerprint
            return self._banks.setdefault((fingerprint, observe), MemoBank())
