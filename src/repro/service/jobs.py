"""Job manager: bounded priority queue, worker threads, durable store.

One :class:`JobManager` owns every analysis the server runs.  Clients
submit a :class:`JobSpec` (what to analyse); the manager queues it,
executes it on a worker thread through the PR 1-3 machinery — a
per-job :class:`~repro.buffers.evalcache.EvaluationService` carrying
the job's budget and cancel token — and keeps the full job table
observable over HTTP.

**States.**  ``queued → running →`` one of

* ``done`` — the analysis completed; ``result`` holds its payload
  (for DSE jobs: exactly ``DesignSpaceResult.to_dict()``);
* ``partial`` — a per-job budget (deadline / max probes) tripped;
  ``result`` holds the exact partial front and a checkpoint file holds
  the paid-for evaluations.  Partial jobs are *resumable*: a restarted
  server re-enqueues them and the next leg replays the checkpoint for
  free (deterministic-replay guarantee of :mod:`repro.runtime
  .checkpoint`);
* ``cancelled`` — a client issued ``DELETE /jobs/<id>``; an in-flight
  DSE stops at the next probe boundary and keeps its exact partial
  result;
* ``failed`` — the analysis raised; ``error`` holds the message.

A graceful shutdown (SIGTERM) cancels running jobs *without* marking
them cancelled: they checkpoint and return to ``queued``, so the next
server start continues them where the probes stopped.

**Durability.**  Every state transition appends one JSON line to
``<data_dir>/jobs.jsonl`` (last line per id wins).  Replaying the file
at startup rebuilds the job table; non-terminal jobs are re-enqueued.

**Memo sharing.**  Before a job runs, the graph's
:class:`~repro.service.registry.MemoBank` for the observed actor is
restored into its evaluation service; afterwards the service's export
is absorbed back.  Identical graphs submitted by different clients
therefore share every evaluation ever paid for.
"""

from __future__ import annotations

import heapq
import json
import threading
import time
import uuid
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from collections.abc import Mapping

from repro.buffers.distribution import StorageDistribution
from repro.buffers.evalcache import EvaluationService
from repro.buffers.explorer import explore_design_space, minimal_distribution_for_throughput
from repro.exceptions import (
    BudgetExhausted,
    RateLimited,
    ReproError,
    ServiceError,
    ServiceUnavailable,
)
from repro.runtime.budget import Budget, CancelToken
from repro.runtime.config import ExplorationConfig
from repro.runtime.telemetry import TelemetryEvent, TelemetryHub
from collections.abc import Callable
from repro.sadf.explorer import explore_design_space as explore_sadf_design_space
from repro.sadf.graph import SADFGraph
from repro.service.registry import GraphRegistry
from repro.service.resilience import JOB_CLASSES, Bulkhead, CircuitBreaker, classify

JOB_KINDS = ("throughput", "dse", "minimal-distribution", "dse-sadf")
JOB_STATES = ("queued", "running", "done", "partial", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


@dataclass(frozen=True)
class JobSpec:
    """What one job analyses — immutable, client-provided.

    ``params`` carries the kind-specific inputs: ``capacities`` for
    ``throughput`` jobs, ``throughput`` (a ``"p/q"`` string) for
    ``minimal-distribution`` jobs, and optional ``strategy`` /
    ``max_size`` for ``dse`` jobs.  ``dse-sadf`` jobs run the
    scenario-aware exploration (:mod:`repro.sadf`) against a registered
    SADF graph and take the same optional ``max_size``.  ``priority`` orders the queue —
    lower numbers run first, ties in submission order.  ``job_class``
    optionally overrides the bulkhead class derived from ``kind``
    (``"interactive"`` for point queries, ``"batch"`` for DSE).
    """

    kind: str
    fingerprint: str
    observe: str
    params: Mapping[str, object] = field(default_factory=dict)
    priority: int = 0
    deadline_s: float | None = None
    max_probes: int | None = None
    job_class: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ServiceError(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            )
        classify(self.kind, self.job_class)  # unknown class -> ServiceError

    @property
    def resolved_class(self) -> str:
        """The bulkhead class this job runs in."""
        return classify(self.kind, self.job_class)


class Job:
    """One queued/running/finished analysis (mutable server-side state)."""

    def __init__(self, spec: JobSpec, job_id: str | None = None):
        self.id = job_id if job_id is not None else uuid.uuid4().hex[:12]
        self.spec = spec
        self.state = "queued"
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.result: dict | None = None
        self.error: str | None = None
        self.exhausted: str | None = None
        self.legs = 0
        self.cancel = CancelToken()
        self.cancel_requested = False
        self.trace_id: str | None = None
        self.idempotency_key: str | None = None

    @property
    def job_class(self) -> str:
        """The bulkhead class this job is queued and executed in."""
        return self.spec.resolved_class

    def to_dict(self) -> dict:
        """The job as served by ``GET /jobs/<id>`` and stored as JSONL."""
        return {
            "id": self.id,
            "kind": self.spec.kind,
            "class": self.job_class,
            "graph": self.spec.fingerprint,
            "observe": self.spec.observe,
            "params": dict(self.spec.params),
            "priority": self.spec.priority,
            "deadline_s": self.spec.deadline_s,
            "max_probes": self.spec.max_probes,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "legs": self.legs,
            "exhausted": self.exhausted,
            "error": self.error,
            "result": self.result,
            "trace_id": self.trace_id,
            "idempotency_key": self.idempotency_key,
        }

    @classmethod
    def from_dict(cls, record: Mapping) -> "Job":
        """Rebuild a job from its last JSONL record (server restart)."""
        spec = JobSpec(
            kind=record["kind"],
            fingerprint=record["graph"],
            observe=record["observe"],
            params=dict(record.get("params", {})),
            priority=int(record.get("priority", 0)),
            deadline_s=record.get("deadline_s"),
            max_probes=record.get("max_probes"),
            job_class=record.get("class"),
        )
        job = cls(spec, job_id=record["id"])
        job.trace_id = record.get("trace_id")
        job.idempotency_key = record.get("idempotency_key")
        job.state = record.get("state", "queued")
        job.submitted_at = record.get("submitted_at", job.submitted_at)
        job.started_at = record.get("started_at")
        job.finished_at = record.get("finished_at")
        job.legs = int(record.get("legs", 0))
        job.exhausted = record.get("exhausted")
        job.error = record.get("error")
        job.result = record.get("result")
        return job


class JobManager:
    """Bounded queue + worker pool + durable JSONL job store.

    Parameters
    ----------
    registry:
        The server's :class:`~repro.service.registry.GraphRegistry`.
    data_dir:
        Durable state directory (``jobs.jsonl`` + per-job checkpoint
        files).  ``None`` keeps everything in memory.
    workers:
        Number of worker *threads*.  Analyses are CPU-bound Python, so
        this bounds concurrency fairness, not raw speed; per-probe
        process fan-out stays available through the evaluation layer.
    queue_size:
        Maximum number of *queued* jobs; submissions beyond it are
        rejected with HTTP 503 so clients back off instead of queueing
        unbounded work.
    engine:
        Simulation-kernel selector handed to every job's config.
    telemetry:
        Server-wide :class:`~repro.runtime.telemetry.TelemetryHub`;
        every finished job's hub is merged into it (``/metrics``).
    bulkhead:
        Worker-slot partition between job classes
        (:class:`~repro.service.resilience.Bulkhead`).  ``None`` lets
        every worker float over both classes (the pre-bulkhead
        behaviour) with no per-class queue caps.
    breakers:
        Per-class :class:`~repro.service.resilience.CircuitBreaker`
        map.  ``None`` builds a default breaker per job class;
        ``{}`` disables breaking entirely.  Only *internal* failures
        (a worker dying mid-job) count against a breaker — client
        mistakes (bad params, unknown channels) do not.
    allow_chaos:
        Honour the ``params.chaos`` fault-injection directives
        (``"fail"``, ``"sleep:<seconds>"``).  Off by default; the load
        harness and the overload tests switch it on to script
        worker-kill scenarios through the public API.
    """

    def __init__(
        self,
        registry: GraphRegistry,
        data_dir: str | Path | None = None,
        *,
        workers: int = 1,
        queue_size: int = 64,
        engine: str = "auto",
        telemetry: TelemetryHub | None = None,
        bulkhead: Bulkhead | None = None,
        breakers: Mapping[str, CircuitBreaker] | None = None,
        allow_chaos: bool = False,
    ):
        if workers < 1:
            raise ServiceError("workers must be >= 1")
        if queue_size < 1:
            raise ServiceError("queue_size must be >= 1")
        self.registry = registry
        self.telemetry = telemetry if telemetry is not None else TelemetryHub()
        self.engine = engine
        #: Optional ``(job, event)`` observer of every telemetry event of
        #: every running job — live dashboards, deterministic tests.
        self.probe_callback: Callable[[Job, TelemetryEvent], None] | None = None
        self.queue_size = queue_size
        self.bulkhead = bulkhead if bulkhead is not None else Bulkhead(workers)
        if self.bulkhead.workers != workers:
            raise ServiceError(
                f"bulkhead sized for {self.bulkhead.workers} workers but the"
                f" manager runs {workers}"
            )
        if breakers is None:
            breakers = {
                cls: CircuitBreaker(cls, telemetry=self.telemetry)
                for cls in JOB_CLASSES
            }
        self.breakers: dict[str, CircuitBreaker] = dict(breakers)
        for breaker in self.breakers.values():
            if breaker._telemetry is None:
                breaker._telemetry = self.telemetry
        self.allow_chaos = bool(allow_chaos)
        self._cond = threading.Condition()
        self._heaps: dict[str, list[tuple[int, int, str]]] = {
            cls: [] for cls in JOB_CLASSES
        }
        self._seq = 0
        self._jobs: dict[str, Job] = {}
        self._idempotency: dict[str, str] = {}
        self._closing = False
        self._store_path: Path | None = None
        self._checkpoint_dir: Path | None = None
        if data_dir is not None:
            base = Path(data_dir)
            base.mkdir(parents=True, exist_ok=True)
            self._store_path = base / "jobs.jsonl"
            self._checkpoint_dir = base / "checkpoints"
            self._checkpoint_dir.mkdir(exist_ok=True)
            self._recover()
        self._threads = [
            threading.Thread(
                target=self._worker,
                args=(self.bulkhead.allowed_classes(i),),
                name=f"repro-job-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission / lookup ------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        *,
        idempotency_key: str | None = None,
        trace_id: str | None = None,
    ) -> Job:
        """Queue a new job.

        Admission control, in order: an *idempotency-key replay*
        returns the original job without consuming any capacity; an
        open circuit breaker for the job's class raises
        :class:`~repro.exceptions.ServiceUnavailable` (503) with a
        ``Retry-After`` hint; a per-class queue cap raises
        :class:`~repro.exceptions.RateLimited` (429); a full global
        queue raises :class:`~repro.exceptions.ServiceUnavailable`
        (503).
        """
        graph = self.registry.get(spec.fingerprint)  # 404 on unknown graphs
        if (spec.kind == "dse-sadf") != isinstance(graph, SADFGraph):
            raise ServiceError(
                f"job kind {spec.kind!r} does not fit the registered graph:"
                " scenario (SADF) graphs take kind 'dse-sadf', plain SDF"
                " graphs take the other kinds"
            )
        job_class = spec.resolved_class
        with self._cond:
            if idempotency_key is not None:
                known = self._idempotency.get(idempotency_key)
                if known is not None:
                    self.telemetry.emit("job_replayed", kind=spec.kind)
                    return self._jobs[known]
            if self._closing:
                raise ServiceUnavailable("server is shutting down")
            breaker = self.breakers.get(job_class)
            if breaker is not None and not breaker.allow():
                raise ServiceUnavailable(
                    f"job class {job_class!r} is shedding load (circuit"
                    f" {breaker.state}); retry later",
                    code="breaker_open",
                    retry_after_s=breaker.retry_after_s or None,
                )
            admitted = False
            try:
                if not self.bulkhead.admits(
                    job_class, len(self._heaps[job_class])
                ):
                    raise RateLimited(
                        f"{job_class} queue cap"
                        f" ({self.bulkhead.queue_caps[job_class]}) reached;"
                        " retry later"
                    )
                if self.queue_depth >= self.queue_size:
                    raise ServiceError(
                        f"job queue is full ({self.queue_size} queued); retry later",
                        status=503,
                        code="queue_full",
                    )
                admitted = True
            finally:
                if not admitted and breaker is not None:
                    breaker.release()  # give the (half-open) trial slot back
            job = Job(spec)
            job.trace_id = trace_id
            job.idempotency_key = idempotency_key
            if idempotency_key is not None:
                self._idempotency[idempotency_key] = job.id
            self._jobs[job.id] = job
            self._push(job)
            self._persist(job)
            self.telemetry.emit("job_submitted", kind=spec.kind, job_class=job_class)
            self._cond.notify_all()
        return job

    def get(self, job_id: str) -> Job:
        with self._cond:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ServiceError(f"unknown job {job_id!r}", status=404) from None

    def jobs(self) -> list[Job]:
        """All known jobs, newest submission first."""
        with self._cond:
            return sorted(
                self._jobs.values(), key=lambda job: job.submitted_at, reverse=True
            )

    @property
    def queue_depth(self) -> int:
        """Jobs waiting for a worker (running jobs excluded)."""
        return sum(len(heap) for heap in self._heaps.values())

    def queue_depth_for(self, job_class: str) -> int:
        """Waiting jobs of one bulkhead class."""
        return len(self._heaps[job_class])

    def states_count(self) -> dict[str, int]:
        """``{state: number of jobs}`` over every known state."""
        counts = {state: 0 for state in JOB_STATES}
        with self._cond:
            for job in self._jobs.values():
                counts[job.state] += 1
        return counts

    def cancel(self, job_id: str) -> Job:
        """Cancel *job_id*: queued jobs finish immediately, running jobs
        stop at the next probe boundary keeping their partial result."""
        with self._cond:
            job = self.get(job_id)
            if job.state in TERMINAL_STATES:
                raise ServiceError(
                    f"job {job_id} is already {job.state}", status=409
                )
            job.cancel_requested = True
            job.cancel.cancel()
            if job.state in ("queued", "partial"):
                heap = self._heaps[job.job_class]
                if any(entry[2] == job.id for entry in heap):
                    heap[:] = [entry for entry in heap if entry[2] != job.id]
                    heapq.heapify(heap)
                    breaker = self.breakers.get(job.job_class)
                    if breaker is not None:
                        breaker.release()  # admitted but never executed
                self._finalize(job, "cancelled")
            # a running job transitions when its worker observes the token
        return job

    # -- shutdown -----------------------------------------------------------
    def drain(self, timeout: float = 30.0) -> None:
        """Graceful stop: interrupt running jobs so they checkpoint and
        return to ``queued``, then join the workers (idempotent)."""
        with self._cond:
            if self._closing:
                return
            self._closing = True
            for job in self._jobs.values():
                if job.state == "running" and not job.cancel_requested:
                    job.cancel.cancel()
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)

    # -- worker loop --------------------------------------------------------
    def _worker(self, allowed: tuple[str, ...] = JOB_CLASSES) -> None:
        while True:
            with self._cond:
                while not self._closing and not any(
                    self._heaps[cls] for cls in allowed
                ):
                    self._cond.wait()
                if self._closing:
                    return
                entry_class = min(
                    (cls for cls in allowed if self._heaps[cls]),
                    key=lambda cls: self._heaps[cls][0][:2],
                )
                _, _, job_id = heapq.heappop(self._heaps[entry_class])
                job = self._jobs[job_id]
                if job.cancel_requested:
                    self._finalize(job, "cancelled")
                    continue
                job.state = "running"
                job.started_at = time.time()
                job.legs += 1
                self._persist(job)
            self._run(job)

    def _run(self, job: Job) -> None:
        breaker = self.breakers.get(job.job_class)
        internal_failure = False
        try:
            self._maybe_chaos(job)
            graph = self.registry.get(job.spec.fingerprint)
            budget = Budget(
                deadline_s=job.spec.deadline_s,
                max_probes=job.spec.max_probes,
                cancel=job.cancel,
            )
            def forward(event: TelemetryEvent, _job: Job = job) -> None:
                callback = self.probe_callback
                if callback is not None:
                    callback(_job, event)

            if job.spec.kind == "dse-sadf":
                self._run_dse_sadf(job, graph, budget, forward)
                return
            service = EvaluationService(
                graph,
                job.spec.observe,
                config=ExplorationConfig(
                    engine=self.engine,
                    budget=budget,
                    on_event=forward,
                    bounds=bool(job.spec.params.get("bounds", False)),
                    speculate=bool(job.spec.params.get("speculate", False)),
                    backend=job.spec.params.get("backend"),
                    batch=int(job.spec.params.get("batch", 0)),
                ),
            )
            try:
                bank = self.registry.bank(job.spec.fingerprint, job.spec.observe)
                if len(bank):
                    service.restore_state(bank.snapshot())
                runner = {
                    "dse": self._run_dse,
                    "throughput": self._run_throughput,
                    "minimal-distribution": self._run_minimal,
                }[job.spec.kind]
                runner(job, graph, service)
            finally:
                bank = self.registry.bank(job.spec.fingerprint, job.spec.observe)
                bank.absorb(service.export_state())
                self.telemetry.merge(service.telemetry)
                service.close()
        except BudgetExhausted as stop:
            # Escapes only from non-DSE kinds (the explorer converts it
            # into a partial result itself).
            with self._cond:
                job.exhausted = stop.reason
                if job.cancel_requested:
                    self._finalize(job, "cancelled")
                elif stop.reason == "cancelled":
                    self._requeue_interrupted(job)
                else:
                    self._finalize(job, "partial")
        except ReproError as error:
            # A client mistake (bad params, unknown channel): the worker
            # plane is healthy, so this does not count against the breaker.
            with self._cond:
                job.error = str(error)
                self._finalize(job, "failed")
        except Exception as error:  # noqa: BLE001 - a worker must never die
            internal_failure = True
            with self._cond:
                job.error = f"internal error: {error!r}"
                self._finalize(job, "failed")
        finally:
            if breaker is not None:
                if internal_failure:
                    breaker.record_failure()
                else:
                    breaker.record_success()

    def _maybe_chaos(self, job: Job) -> None:
        """Honour ``params.chaos`` fault injection (opt-in via
        ``allow_chaos``): ``"fail"`` kills the execution the way a
        wedged worker would; ``"sleep:<seconds>"`` stretches it, so load
        tests can script long batches without burning CPU."""
        directive = job.spec.params.get("chaos") if self.allow_chaos else None
        if not directive:
            return
        directive = str(directive)
        if directive == "fail":
            raise RuntimeError("chaos: injected worker failure")
        if directive.startswith("sleep:"):
            deadline = time.monotonic() + float(directive.split(":", 1)[1])
            while time.monotonic() < deadline:
                if job.cancel.cancelled or self._closing:
                    return  # the run notices the token at its first probe
                time.sleep(min(0.02, max(0.0, deadline - time.monotonic())))
            return
        raise ServiceError(f"unknown chaos directive {directive!r}")

    def breaker_snapshots(self) -> list[dict]:
        """Per-class breaker state for ``/healthz`` and ``/metrics``."""
        return [self.breakers[cls].snapshot() for cls in JOB_CLASSES if cls in self.breakers]

    def _run_dse(self, job: Job, graph, service: EvaluationService) -> None:
        params = job.spec.params
        checkpoint = self._checkpoint_path(job)
        resume = (
            str(checkpoint)
            if checkpoint is not None and checkpoint.exists()
            else None
        )
        result = explore_design_space(
            graph,
            job.spec.observe,
            strategy=str(params.get("strategy", "dependency")),
            max_size=params.get("max_size"),
            config=ExplorationConfig(
                evaluator=service,
                checkpoint=checkpoint,
            ),
            resume=resume,
        )
        with self._cond:
            job.result = result.to_dict()
            job.exhausted = result.exhausted
            if result.complete:
                self._finalize(job, "done")
            elif job.cancel_requested:
                self._finalize(job, "cancelled")
            elif result.exhausted == "cancelled":
                self._requeue_interrupted(job)  # server-driven (shutdown)
            else:
                self._finalize(job, "partial")

    def _run_dse_sadf(
        self, job: Job, sadf: SADFGraph, budget: Budget, forward
    ) -> None:
        """Scenario-aware DSE: same lifecycle as :meth:`_run_dse`, but
        the exploration spans every scenario of an SADF graph, so the
        memo sharing is per scenario — one bank per
        ``observe@scenario`` key, seeded in and absorbed back through
        the explorer's ``scenario_states`` / ``on_export`` hooks."""
        params = job.spec.params
        checkpoint = self._checkpoint_path(job)
        resume = (
            str(checkpoint)
            if checkpoint is not None and checkpoint.exists()
            else None
        )
        fingerprint = job.spec.fingerprint
        observe = job.spec.observe
        scenario_states: dict[str, Mapping] = {}
        for name in sadf.scenario_names:
            bank = self.registry.bank(fingerprint, f"{observe}@{name}")
            if len(bank):
                scenario_states[name] = bank.snapshot()

        def absorb(name: str, state: Mapping) -> None:
            self.registry.bank(fingerprint, f"{observe}@{name}").absorb(state)

        result = explore_sadf_design_space(
            sadf,
            observe,
            strategy=str(params.get("strategy", "dependency")),
            max_size=params.get("max_size"),
            config=ExplorationConfig(
                engine=self.engine,
                budget=budget,
                on_event=forward,
                bounds=bool(params.get("bounds", False)),
                speculate=bool(params.get("speculate", False)),
                backend=params.get("backend"),
                batch=int(params.get("batch", 0)),
                checkpoint=checkpoint,
            ),
            resume=resume,
            scenario_states=scenario_states or None,
            on_export=absorb,
        )
        if result.telemetry is not None:
            self.telemetry.merge(result.telemetry)
        with self._cond:
            job.result = result.to_dict()
            job.exhausted = result.exhausted
            if result.complete:
                self._finalize(job, "done")
            elif job.cancel_requested:
                self._finalize(job, "cancelled")
            elif result.exhausted == "cancelled":
                self._requeue_interrupted(job)  # server-driven (shutdown)
            else:
                self._finalize(job, "partial")

    def _run_throughput(self, job: Job, graph, service: EvaluationService) -> None:
        capacities = job.spec.params.get("capacities")
        if not isinstance(capacities, Mapping):
            raise ServiceError(
                "throughput jobs need params.capacities: {channel: int}"
            )
        distribution = StorageDistribution(
            {name: int(cap) for name, cap in capacities.items()}
        )
        value = service(distribution)
        with self._cond:
            job.result = {
                "throughput": str(value),
                "throughput_float": float(value),
                "deadlocked": value == 0,
                "capacities": dict(distribution),
            }
            self._finalize(job, "done")

    def _run_minimal(self, job: Job, graph, service: EvaluationService) -> None:
        constraint = job.spec.params.get("throughput")
        if constraint is None:
            raise ServiceError(
                'minimal-distribution jobs need params.throughput: "p/q"'
            )
        point = minimal_distribution_for_throughput(
            graph,
            Fraction(str(constraint)),
            job.spec.observe,
            config=ExplorationConfig(evaluator=service),
        )
        with self._cond:
            if point is None:
                job.result = {"found": False}
            else:
                job.result = {
                    "found": True,
                    "size": point.size,
                    "throughput": str(point.throughput),
                    "distribution": dict(point.distribution),
                }
            self._finalize(job, "done")

    # -- state transitions (caller holds the lock) --------------------------
    def _push(self, job: Job) -> None:
        self._seq += 1
        heapq.heappush(
            self._heaps[job.job_class], (job.spec.priority, self._seq, job.id)
        )

    def _finalize(self, job: Job, state: str) -> None:
        job.state = state
        job.finished_at = time.time()
        self._persist(job)
        self.telemetry.emit("job_finished", kind=job.spec.kind, state=state)

    def _requeue_interrupted(self, job: Job) -> None:
        """A shutdown interrupted the job: back to ``queued`` with its
        checkpoint on disk, so the next server run resumes it."""
        job.state = "queued"
        self._persist(job)
        self.telemetry.emit("job_requeued", kind=job.spec.kind)

    # -- durability ---------------------------------------------------------
    def _checkpoint_path(self, job: Job) -> Path | None:
        if self._checkpoint_dir is None:
            return None
        return self._checkpoint_dir / f"{job.id}.ckpt.json"

    def _persist(self, job: Job) -> None:
        if self._store_path is None:
            return
        with self._store_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(job.to_dict(), sort_keys=True) + "\n")

    def _recover(self) -> None:
        """Replay ``jobs.jsonl``; re-enqueue every non-terminal job."""
        if self._store_path is None or not self._store_path.exists():
            return
        records: dict[str, dict] = {}
        for line in self._store_path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            records[record["id"]] = record
        for record in records.values():
            job = Job.from_dict(record)
            self._jobs[job.id] = job
            if job.idempotency_key:
                self._idempotency[job.idempotency_key] = job.id
            if job.state in TERMINAL_STATES:
                continue
            # queued, running and partial jobs all get another leg; DSE
            # jobs find their checkpoint and replay it for free.
            job.state = "queued"
            self._push(job)
            self._persist(job)
            self.telemetry.emit("job_recovered", kind=job.spec.kind)
