"""The resident analysis server (stdlib ``ThreadingHTTPServer``).

:class:`AnalysisServer` assembles the serving stack — a
:class:`~repro.service.registry.GraphRegistry`, a
:class:`~repro.service.jobs.JobManager` worker pool and the
:class:`~repro.service.api.AnalysisApi` routing table — behind one
HTTP socket.  HTTP handling threads only enqueue and observe; the
analyses themselves run on the manager's workers, so a slow DSE never
blocks ``/healthz`` or ``/metrics``.

Lifecycle::

    server = AnalysisServer(data_dir="state", port=0)
    server.start()                  # background thread; .url is bound
    ...
    server.stop()                   # graceful: running jobs checkpoint
                                    # and return to "queued"

``stop()`` (also wired to SIGTERM by ``repro serve``) drains
gracefully: running jobs are interrupted at a probe boundary, write
their checkpoint, and are persisted as ``queued`` — a server restarted
on the same ``data_dir`` picks them up and completes them without
re-paying any probe (see ``docs/SERVICE.md``).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.runtime.telemetry import TelemetryHub, TraceLog
from repro.service.api import AnalysisApi
from repro.service.jobs import JobManager
from repro.service.registry import GraphRegistry


class _Handler(BaseHTTPRequestHandler):
    """Thin adapter from http.server onto :class:`AnalysisApi`."""

    api: AnalysisApi  # installed by AnalysisServer on the subclass
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request accounting goes through telemetry, not stderr

    def _serve(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        response = self.api.handle(method, self.path, body, dict(self.headers))
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def do_GET(self) -> None:
        self._serve("GET")

    def do_POST(self) -> None:
        self._serve("POST")

    def do_DELETE(self) -> None:
        self._serve("DELETE")


class AnalysisServer:
    """Registry + job manager + HTTP front, owned as one unit.

    Parameters
    ----------
    data_dir:
        Durable state directory (graphs, job store, checkpoints).
        ``None`` runs fully in-memory — jobs do not survive restarts.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` / :attr:`url`).
    workers / queue_size / engine:
        Passed through to :class:`~repro.service.jobs.JobManager`.
    bulkhead / breakers / allow_chaos:
        The resilience plane, passed through to the manager: a
        :class:`~repro.service.resilience.Bulkhead` worker partition,
        per-class :class:`~repro.service.resilience.CircuitBreaker`
        overrides, and the fault-injection opt-in (load tests only).
    """

    def __init__(
        self,
        data_dir: str | Path | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        queue_size: int = 64,
        engine: str = "auto",
        bulkhead=None,
        breakers=None,
        allow_chaos: bool = False,
    ):
        self.telemetry = TelemetryHub(traces=TraceLog())
        self.registry = GraphRegistry(data_dir)
        self.manager = JobManager(
            self.registry,
            data_dir,
            workers=workers,
            queue_size=queue_size,
            engine=engine,
            telemetry=self.telemetry,
            bulkhead=bulkhead,
            breakers=breakers,
            allow_chaos=allow_chaos,
        )
        self.api = AnalysisApi(self.registry, self.manager)
        handler = type("BoundHandler", (_Handler,), {"api": self.api})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._stopped = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AnalysisServer":
        """Serve in a background thread; returns self (tests/embedding)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-analysis-server",
                daemon=True,
            )
            self._thread.start()
            self.telemetry.emit("server_started", url=self.url)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` is called."""
        self.telemetry.emit("server_started", url=self.url)
        self._httpd.serve_forever()

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown (idempotent): stop accepting requests,
        interrupt running jobs so they checkpoint and requeue, join the
        worker pool."""
        if self._stopped:
            return
        self._stopped = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        self.manager.drain(timeout=timeout)
        self.telemetry.emit("server_stopped")

    def __enter__(self) -> "AnalysisServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
