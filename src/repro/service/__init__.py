"""repro.service — the analysis library as a resident, multi-client server.

Turns one-shot explorations into *dimensioning as a service*:

* :mod:`repro.service.registry` — content-addressed graph store;
  identical graphs share one entry and one memo bank;
* :mod:`repro.service.jobs` — bounded priority queue, worker pool,
  JSONL-durable job table, resume-on-restart for interrupted DSE jobs;
* :mod:`repro.service.resilience` — the overload plane: per-class
  :class:`CircuitBreaker`, :class:`Bulkhead` worker partitioning and
  the client-side :class:`RetryPolicy`;
* :mod:`repro.service.server` / :mod:`repro.service.api` — stdlib
  HTTP/JSON endpoints (versioned under ``/v1``, legacy aliases kept
  deprecated), per-request trace ids, a Prometheus ``/metrics``
  exposition;
* :mod:`repro.service.client` — blocking client SDK with
  retry/backoff and idempotent submission replay;
* :mod:`repro.service.cli` — the ``repro serve|submit|jobs|report|diff``
  verbs.

See ``docs/SERVICE.md`` for the operator's guide and ``docs/API.md``
for the wire contract.
"""

from repro.exceptions import (
    JobFailed,
    JobPartial,
    RateLimited,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.client import ServiceClient
from repro.service.jobs import JOB_KINDS, JOB_STATES, Job, JobManager, JobSpec
from repro.service.registry import GraphRegistry, MemoBank
from repro.service.resilience import (
    JOB_CLASSES,
    Bulkhead,
    CircuitBreaker,
    RetryPolicy,
    classify,
)
from repro.service.server import AnalysisServer

__all__ = [
    "AnalysisServer",
    "Bulkhead",
    "CircuitBreaker",
    "GraphRegistry",
    "JOB_CLASSES",
    "JOB_KINDS",
    "JOB_STATES",
    "Job",
    "JobFailed",
    "JobManager",
    "JobPartial",
    "JobSpec",
    "MemoBank",
    "RateLimited",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "classify",
]
