"""repro.service — the analysis library as a resident, multi-client server.

Turns one-shot explorations into *dimensioning as a service*:

* :mod:`repro.service.registry` — content-addressed graph store;
  identical graphs share one entry and one memo bank;
* :mod:`repro.service.jobs` — bounded priority queue, worker pool,
  JSONL-durable job table, resume-on-restart for interrupted DSE jobs;
* :mod:`repro.service.server` / :mod:`repro.service.api` — stdlib
  HTTP/JSON endpoints plus a Prometheus ``/metrics`` exposition;
* :mod:`repro.service.client` — blocking client SDK;
* :mod:`repro.service.cli` — the ``repro serve|submit|jobs`` verbs.

See ``docs/SERVICE.md`` for the operator's guide.
"""

from repro.exceptions import ServiceError
from repro.service.client import ServiceClient
from repro.service.jobs import JOB_KINDS, JOB_STATES, Job, JobManager, JobSpec
from repro.service.registry import GraphRegistry, MemoBank
from repro.service.server import AnalysisServer

__all__ = [
    "AnalysisServer",
    "GraphRegistry",
    "JOB_KINDS",
    "JOB_STATES",
    "Job",
    "JobManager",
    "JobSpec",
    "MemoBank",
    "ServiceClient",
    "ServiceError",
]
