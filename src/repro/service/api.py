"""HTTP/JSON API of the analysis service (transport-independent).

The routing table lives here, decoupled from the socket layer
(:mod:`repro.service.server`) so every endpoint is unit-testable
without binding a port.  All endpoints speak JSON except
``GET /metrics``, which serves the Prometheus text exposition format.

Endpoints
---------
``POST /graphs``
    Body: a :mod:`repro.io.jsonio` graph document.  Registers the
    graph content-addressed; returns ``{"fingerprint", "known"}``.
``POST /jobs``
    Body: ``{"graph": <fingerprint or inline graph document>,
    "kind": "throughput" | "dse" | "minimal-distribution", "observe",
    "params", "priority", "deadline_s", "max_probes"}``.  Inline
    graphs are registered on the fly.  Returns 202 with the job
    rendering.
``GET /jobs`` / ``GET /jobs/<id>``
    The job table / one job, including ``result`` once available.
``DELETE /jobs/<id>``
    Cancels the job (HTTP 409 if already terminal); an in-flight DSE
    ends ``cancelled`` with its exact partial result.
``GET /backends``
    The probe-backend registry as seen by *this* host: name,
    capabilities, availability and — when unavailable — the reason
    (e.g. ``cc`` without a C compiler).  Mirrors the ``repro
    backends`` CLI verb.
``GET /healthz``
    Liveness: uptime, job counts, queue depth.
``GET /metrics``
    Prometheus text format: telemetry counters/timers (probes, cache
    hits, per-endpoint request latencies) plus queue-depth and
    jobs-by-state gauges.
"""

from __future__ import annotations

import json
from collections.abc import Mapping

from repro.exceptions import ReproError, ServiceError
from repro.runtime.telemetry import to_prometheus
from repro.service.jobs import JobManager, JobSpec
from repro.service.registry import GraphRegistry

API_VERSION = 1


class ApiResponse:
    """Status, content type and body of one handled request."""

    __slots__ = ("status", "content_type", "body")

    def __init__(self, status: int, body: bytes, content_type: str = "application/json"):
        self.status = status
        self.body = body
        self.content_type = content_type

    @classmethod
    def json(cls, payload, status: int = 200) -> "ApiResponse":
        return cls(status, (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"))

    @classmethod
    def text(cls, text: str, status: int = 200) -> "ApiResponse":
        return cls(status, text.encode("utf-8"), "text/plain; version=0.0.4; charset=utf-8")


class AnalysisApi:
    """Routes requests onto a registry + job manager pair."""

    def __init__(self, registry: GraphRegistry, manager: JobManager):
        self.registry = registry
        self.manager = manager

    # -- entry point --------------------------------------------------------
    def handle(self, method: str, path: str, body: bytes = b"") -> ApiResponse:
        """Dispatch one request; every failure maps to a JSON error."""
        route = self.route_label(method, path)
        hub = self.manager.telemetry
        try:
            with hub.timed(f"http {route}"):
                response = self._dispatch(method, path.rstrip("/") or "/", body)
            hub.emit("http_request", route=route, status=response.status)
            return response
        except ServiceError as error:
            hub.emit("http_request", route=route, status=error.status)
            return ApiResponse.json({"error": str(error)}, status=error.status)
        except ReproError as error:
            hub.emit("http_request", route=route, status=400)
            return ApiResponse.json({"error": str(error)}, status=400)

    @staticmethod
    def route_label(method: str, path: str) -> str:
        """Collapse ids out of the path so request timers aggregate per
        endpoint (``DELETE /jobs/<id>``), not per job."""
        parts = [part for part in path.split("/") if part]
        if len(parts) >= 2 and parts[0] in ("jobs", "graphs"):
            parts = [parts[0], "<id>"]
        return f"{method.upper()} /{'/'.join(parts)}"

    def _dispatch(self, method: str, path: str, body: bytes) -> ApiResponse:
        method = method.upper()
        parts = [part for part in path.split("/") if part]
        if method == "GET" and path == "/healthz":
            return self._healthz()
        if method == "GET" and path == "/metrics":
            return self._metrics()
        if method == "GET" and path == "/backends":
            return self._backends()
        if method == "POST" and path == "/graphs":
            return self._post_graph(self._json_body(body))
        if method == "GET" and path == "/graphs":
            return ApiResponse.json({"graphs": self.registry.fingerprints()})
        if method == "POST" and path == "/jobs":
            return self._post_job(self._json_body(body))
        if method == "GET" and path == "/jobs":
            return ApiResponse.json({"jobs": [job.to_dict() for job in self.manager.jobs()]})
        if len(parts) == 2 and parts[0] == "jobs":
            if method == "GET":
                return ApiResponse.json(self.manager.get(parts[1]).to_dict())
            if method == "DELETE":
                return ApiResponse.json(self.manager.cancel(parts[1]).to_dict())
        raise ServiceError(f"no route for {method} {path}", status=404)

    # -- endpoint bodies ----------------------------------------------------
    @staticmethod
    def _json_body(body: bytes) -> Mapping:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ServiceError(f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        return payload

    def _post_graph(self, payload: Mapping) -> ApiResponse:
        fingerprint, known = self.registry.add(payload)
        return ApiResponse.json(
            {"fingerprint": fingerprint, "known": known},
            status=200 if known else 201,
        )

    def _post_job(self, payload: Mapping) -> ApiResponse:
        graph_ref = payload.get("graph")
        if isinstance(graph_ref, Mapping):
            fingerprint, _known = self.registry.add(graph_ref)
        elif isinstance(graph_ref, str):
            fingerprint = graph_ref
        else:
            raise ServiceError(
                'jobs need "graph": a fingerprint string or an inline graph object'
            )
        graph = self.registry.get(fingerprint)
        observe = payload.get("observe")
        if observe is None:
            observe = graph.actor_names[-1]
        elif observe not in graph.actors:
            raise ServiceError(f"graph has no actor {observe!r}")
        spec = JobSpec(
            kind=str(payload.get("kind", "dse")),
            fingerprint=fingerprint,
            observe=str(observe),
            params=dict(payload.get("params", {})),
            priority=int(payload.get("priority", 0)),
            deadline_s=payload.get("deadline_s"),
            max_probes=payload.get("max_probes"),
        )
        job = self.manager.submit(spec)
        return ApiResponse.json(job.to_dict(), status=202)

    def _healthz(self) -> ApiResponse:
        return ApiResponse.json(
            {
                "status": "ok",
                "api_version": API_VERSION,
                "uptime_s": self.manager.telemetry.elapsed_s,
                "graphs": len(self.registry),
                "queue_depth": self.manager.queue_depth,
                "jobs": self.manager.states_count(),
            }
        )

    def _backends(self) -> ApiResponse:
        from repro.engine.backends import backend_descriptions

        return ApiResponse.json({"backends": backend_descriptions()})

    def _metrics(self) -> ApiResponse:
        gauges = [("queue_depth", {}, float(self.manager.queue_depth))]
        for state, count in sorted(self.manager.states_count().items()):
            gauges.append(("jobs", {"state": state}, float(count)))
        gauges.append(("graphs_registered", {}, float(len(self.registry))))
        # Probe-avoidance counters, always present (0.0 before any job
        # enables the oracle/speculation) so dashboards can rate() them.
        counters = self.manager.telemetry.counters
        issued = float(counters.get("speculative_issued", 0))
        useful = float(counters.get("speculative_useful", 0))
        gauges.append(("bounds_exact", {}, float(counters.get("bounds_exact", 0))))
        gauges.append(("bounds_cut", {}, float(counters.get("bounds_cut", 0))))
        gauges.append(("speculative_issued", {}, issued))
        gauges.append(("speculative_useful", {}, useful))
        gauges.append(("speculative_wasted", {}, max(0.0, issued - useful)))
        # Batched probe plane: wave count, total lanes, mean occupancy
        # (lanes per wave; 0.0 until a job runs with batch > 0).
        calls = float(counters.get("batch_call", 0))
        lanes = float(counters.get("batch_lanes", 0))
        gauges.append(("batch_calls", {}, calls))
        gauges.append(("batch_lanes", {}, lanes))
        gauges.append(("batch_occupancy", {}, lanes / calls if calls else 0.0))
        # Compiled-C probe plane: compile/cache activity is process-wide
        # (kernels are shared across jobs), so the gauges read the ccore
        # hub rather than the per-manager one.
        from repro.engine import ccore

        cc_counters = ccore.telemetry.counters
        for counter in (
            "cc_compiles",
            "cc_cache_hits",
            "cc_compile_failures",
            "cc_cache_corrupt",
            "cc_cache_evictions",
        ):
            gauges.append((counter, {}, float(cc_counters.get(counter, 0))))
        return ApiResponse.text(
            to_prometheus(self.manager.telemetry, gauges=gauges)
        )
