"""HTTP/JSON API of the analysis service (transport-independent).

The routing table lives here, decoupled from the socket layer
(:mod:`repro.service.server`) so every endpoint is unit-testable
without binding a port.  All endpoints speak JSON except
``GET /metrics``, which serves the Prometheus text exposition format.

Versioning
----------
The stable surface lives under ``/v1/...``.  Legacy unversioned routes
(``/jobs``, ``/graphs``, ...) remain as aliases for existing clients
but answer with a ``Deprecation: true`` header; new integrations should
use ``/v1``.  The two differ in their *failure* shape only:

* ``/v1`` errors use the typed envelope ``{"error": {"code",
  "message", "trace_id"}}`` and ``/v1`` JSON object responses carry a
  top-level ``"trace_id"``;
* legacy errors keep the historical ``{"error": "<message>"}`` body.

Every response (both surfaces) carries an ``X-Trace-Id`` header.  The
trace id is minted per request (or adopted from a well-formed client
``X-Trace-Id`` header), threaded through the job table and the
telemetry span log, and queryable back via ``GET /v1/traces/<id>``.

Endpoints
---------
``POST /v1/graphs``
    Body: a :mod:`repro.io.jsonio` graph document or a
    :mod:`repro.io.sadfjson` scenario (SADF) document (recognised by
    its ``"model": "sadf"`` marker).  Registers the graph
    content-addressed; returns ``{"fingerprint", "known"}``.
``POST /v1/jobs``
    Body: ``{"graph": <fingerprint or inline graph document>,
    "kind": "throughput" | "dse" | "minimal-distribution" |
    "dse-sadf" (scenario-aware DSE on an SADF graph), "observe",
    "params", "priority", "deadline_s", "max_probes", "job_class",
    "idempotency_key"}``.  Inline graphs are registered on the fly.
    Returns 202 with the job rendering — or 200 with the *original*
    job when the idempotency key replays an earlier submission (an
    ``Idempotency-Key`` header is honoured too).  Overload answers:
    503 (circuit open / queue full, with ``Retry-After``) and 429
    (per-class queue cap).
``GET /v1/jobs`` / ``GET /v1/jobs/<id>``
    The job table / one job, including ``result`` once available.
``DELETE /v1/jobs/<id>``
    Cancels the job (HTTP 409 if already terminal); an in-flight DSE
    ends ``cancelled`` with its exact partial result.
``GET /v1/backends``
    The probe-backend registry as seen by *this* host.
``GET /v1/traces`` / ``GET /v1/traces/<trace_id>``
    The recent request-span ring / one span — the server-side half of
    the ``trace_id`` contract.
``GET /v1/healthz``
    Liveness: uptime, job counts, queue depth per class, breaker and
    bulkhead state.
``GET /v1/metrics``
    Prometheus text format: telemetry counters/timers plus queue-depth
    (global and per class), jobs-by-state and breaker-state gauges.
"""

from __future__ import annotations

import json
import re
import time
import uuid
from collections.abc import Mapping

from repro.exceptions import ReproError, ServiceError
from repro.runtime.telemetry import TraceLog, to_prometheus
from repro.service.jobs import JobManager, JobSpec
from repro.service.registry import GraphRegistry
from repro.service.resilience import BREAKER_STATES, JOB_CLASSES

API_VERSION = 1

#: Client-supplied trace ids must look like trace ids; anything else is
#: replaced by a freshly minted one (no header-content echoing).
_TRACE_ID = re.compile(r"^[0-9a-zA-Z_-]{1,64}$")


def mint_trace_id() -> str:
    return uuid.uuid4().hex[:16]


class ApiResponse:
    """Status, content type, headers and body of one handled request."""

    __slots__ = ("status", "content_type", "body", "headers", "payload")

    def __init__(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        headers: dict[str, str] | None = None,
        payload: object = None,
    ):
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = dict(headers or {})
        #: The pre-serialisation payload of JSON responses, kept so the
        #: dispatcher can inject the trace id without re-parsing.
        self.payload = payload

    @classmethod
    def json(cls, payload, status: int = 200, headers: dict[str, str] | None = None) -> "ApiResponse":
        return cls(
            status,
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
            headers=headers,
            payload=payload,
        )

    @classmethod
    def text(cls, text: str, status: int = 200) -> "ApiResponse":
        return cls(status, text.encode("utf-8"), "text/plain; version=0.0.4; charset=utf-8")


class AnalysisApi:
    """Routes requests onto a registry + job manager pair."""

    def __init__(self, registry: GraphRegistry, manager: JobManager):
        self.registry = registry
        self.manager = manager
        if manager.telemetry.traces is None:
            manager.telemetry.traces = TraceLog()
        self.traces: TraceLog = manager.telemetry.traces

    # -- entry point --------------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Mapping[str, str] | None = None,
    ) -> ApiResponse:
        """Dispatch one request; every failure maps to a JSON error."""
        lowered = {key.lower(): value for key, value in (headers or {}).items()}
        supplied = lowered.get("x-trace-id", "")
        trace_id = supplied if _TRACE_ID.match(supplied) else mint_trace_id()
        clean = path.rstrip("/") or "/"
        versioned = clean == "/v1" or clean.startswith("/v1/")
        if versioned:
            clean = clean[len("/v1"):] or "/"
        route = self.route_label(method, path)
        hub = self.manager.telemetry
        started = time.monotonic()
        try:
            with hub.timed(f"http {route}"):
                response = self._dispatch(method, clean, body, lowered, trace_id)
        except ServiceError as error:
            response = self._error_response(error, error.status, versioned, trace_id)
        except ReproError as error:
            response = self._error_response(error, 400, versioned, trace_id)
        hub.emit("http_request", route=route, status=response.status, trace_id=trace_id)
        self._decorate(response, versioned, trace_id)
        self.traces.record(
            trace_id,
            route,
            status=response.status,
            elapsed_s=time.monotonic() - started,
            versioned=versioned,
        )
        return response

    def _error_response(
        self, error: Exception, status: int, versioned: bool, trace_id: str
    ) -> ApiResponse:
        headers: dict[str, str] = {}
        retry_after = getattr(error, "retry_after_s", None)
        if retry_after:
            headers["Retry-After"] = f"{max(0.0, float(retry_after)):.3f}"
        if versioned:
            code = getattr(error, "code", None) or ServiceError.STATUS_CODES.get(
                status, "error"
            )
            payload = {
                "error": {"code": code, "message": str(error), "trace_id": trace_id}
            }
        else:
            payload = {"error": str(error)}
        return ApiResponse.json(payload, status=status, headers=headers)

    def _decorate(self, response: ApiResponse, versioned: bool, trace_id: str) -> None:
        """Stamp the trace id (header always, body on v1 JSON objects)
        and mark legacy routes deprecated."""
        response.headers.setdefault("X-Trace-Id", trace_id)
        if not versioned:
            response.headers.setdefault("Deprecation", "true")
            return
        if (
            isinstance(response.payload, dict)
            and response.content_type.startswith("application/json")
            and "trace_id" not in response.payload
        ):
            payload = dict(response.payload)
            payload["trace_id"] = trace_id
            response.payload = payload
            response.body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")

    @staticmethod
    def route_label(method: str, path: str) -> str:
        """Collapse ids out of the path so request timers aggregate per
        endpoint (``DELETE /v1/jobs/<id>``), not per job."""
        parts = [part for part in path.split("/") if part]
        prefix: list[str] = []
        if parts and parts[0] == "v1":
            prefix = [parts[0]]
            parts = parts[1:]
        if len(parts) >= 2 and parts[0] in ("jobs", "graphs", "traces"):
            parts = [parts[0], "<id>"]
        return f"{method.upper()} /{'/'.join(prefix + parts)}"

    def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str],
        trace_id: str,
    ) -> ApiResponse:
        method = method.upper()
        parts = [part for part in path.split("/") if part]
        if method == "GET" and path == "/healthz":
            return self._healthz()
        if method == "GET" and path == "/metrics":
            return self._metrics()
        if method == "GET" and path == "/backends":
            return self._backends()
        if method == "GET" and path == "/traces":
            return ApiResponse.json({"traces": self.traces.spans()})
        if method == "GET" and len(parts) == 2 and parts[0] == "traces":
            span = self.traces.get(parts[1])
            if span is None:
                raise ServiceError(f"unknown trace {parts[1]!r}", status=404)
            return ApiResponse.json(span)
        if method == "POST" and path == "/graphs":
            return self._post_graph(self._json_body(body))
        if method == "GET" and path == "/graphs":
            return ApiResponse.json({"graphs": self.registry.fingerprints()})
        if method == "POST" and path == "/jobs":
            return self._post_job(self._json_body(body), headers, trace_id)
        if method == "GET" and path == "/jobs":
            return ApiResponse.json({"jobs": [job.to_dict() for job in self.manager.jobs()]})
        if len(parts) == 2 and parts[0] == "jobs":
            if method == "GET":
                return ApiResponse.json(self.manager.get(parts[1]).to_dict())
            if method == "DELETE":
                return ApiResponse.json(self.manager.cancel(parts[1]).to_dict())
        raise ServiceError(f"no route for {method} {path}", status=404)

    # -- endpoint bodies ----------------------------------------------------
    @staticmethod
    def _json_body(body: bytes) -> Mapping:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ServiceError(f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        return payload

    def _post_graph(self, payload: Mapping) -> ApiResponse:
        fingerprint, known = self.registry.add(payload)
        return ApiResponse.json(
            {"fingerprint": fingerprint, "known": known},
            status=200 if known else 201,
        )

    def _post_job(
        self, payload: Mapping, headers: Mapping[str, str], trace_id: str
    ) -> ApiResponse:
        graph_ref = payload.get("graph")
        if isinstance(graph_ref, Mapping):
            fingerprint, _known = self.registry.add(graph_ref)
        elif isinstance(graph_ref, str):
            fingerprint = graph_ref
        else:
            raise ServiceError(
                'jobs need "graph": a fingerprint string or an inline graph object'
            )
        graph = self.registry.get(fingerprint)
        observe = payload.get("observe")
        if observe is None:
            observe = graph.actor_names[-1]
        elif observe not in graph.actors:
            raise ServiceError(f"graph has no actor {observe!r}")
        job_class = payload.get("job_class")
        spec = JobSpec(
            kind=str(payload.get("kind", "dse")),
            fingerprint=fingerprint,
            observe=str(observe),
            params=dict(payload.get("params", {})),
            priority=int(payload.get("priority", 0)),
            deadline_s=payload.get("deadline_s"),
            max_probes=payload.get("max_probes"),
            job_class=str(job_class) if job_class is not None else None,
        )
        idempotency_key = payload.get("idempotency_key") or headers.get(
            "idempotency-key"
        )
        job = self.manager.submit(
            spec,
            idempotency_key=str(idempotency_key) if idempotency_key else None,
            trace_id=trace_id,
        )
        replayed = job.trace_id is not None and job.trace_id != trace_id
        return ApiResponse.json(job.to_dict(), status=200 if replayed else 202)

    def _healthz(self) -> ApiResponse:
        return ApiResponse.json(
            {
                "status": "ok",
                "api_version": API_VERSION,
                "uptime_s": self.manager.telemetry.elapsed_s,
                "graphs": len(self.registry),
                "queue_depth": self.manager.queue_depth,
                "queue_depth_by_class": {
                    cls: self.manager.queue_depth_for(cls) for cls in JOB_CLASSES
                },
                "jobs": self.manager.states_count(),
                "breakers": self.manager.breaker_snapshots(),
                "bulkhead": self.manager.bulkhead.to_dict(),
            }
        )

    def _backends(self) -> ApiResponse:
        from repro.engine.backends import backend_descriptions

        return ApiResponse.json({"backends": backend_descriptions()})

    def _metrics(self) -> ApiResponse:
        gauges = [("queue_depth", {}, float(self.manager.queue_depth))]
        for cls in JOB_CLASSES:
            gauges.append(
                ("queue_depth_class", {"class": cls}, float(self.manager.queue_depth_for(cls)))
            )
        for state, count in sorted(self.manager.states_count().items()):
            gauges.append(("jobs", {"state": state}, float(count)))
        gauges.append(("graphs_registered", {}, float(len(self.registry))))
        # Resilience plane: breaker state (closed=0 / half-open=1 /
        # open=2) and its admission-rejection counter, per job class.
        for snapshot in self.manager.breaker_snapshots():
            labels = {"class": snapshot["name"]}
            gauges.append(
                ("breaker_state", labels, float(BREAKER_STATES.index(snapshot["state"])))
            )
            gauges.append(
                ("breaker_rejected", labels, float(snapshot["counters"]["rejected"]))
            )
        # Probe-avoidance counters, always present (0.0 before any job
        # enables the oracle/speculation) so dashboards can rate() them.
        counters = self.manager.telemetry.counters
        issued = float(counters.get("speculative_issued", 0))
        useful = float(counters.get("speculative_useful", 0))
        gauges.append(("bounds_exact", {}, float(counters.get("bounds_exact", 0))))
        gauges.append(("bounds_cut", {}, float(counters.get("bounds_cut", 0))))
        gauges.append(("speculative_issued", {}, issued))
        gauges.append(("speculative_useful", {}, useful))
        gauges.append(("speculative_wasted", {}, max(0.0, issued - useful)))
        # Batched probe plane: wave count, total lanes, mean occupancy
        # (lanes per wave; 0.0 until a job runs with batch > 0).
        calls = float(counters.get("batch_call", 0))
        lanes = float(counters.get("batch_lanes", 0))
        gauges.append(("batch_calls", {}, calls))
        gauges.append(("batch_lanes", {}, lanes))
        gauges.append(("batch_occupancy", {}, lanes / calls if calls else 0.0))
        # Compiled-C probe plane: compile/cache activity is process-wide
        # (kernels are shared across jobs), so the gauges read the ccore
        # hub rather than the per-manager one.
        from repro.engine import ccore

        cc_counters = ccore.telemetry.counters
        for counter in (
            "cc_compiles",
            "cc_cache_hits",
            "cc_compile_failures",
            "cc_cache_corrupt",
            "cc_cache_evictions",
        ):
            gauges.append((counter, {}, float(cc_counters.get(counter, 0))))
        return ApiResponse.text(
            to_prometheus(self.manager.telemetry, gauges=gauges)
        )
