"""``repro`` — serve and query the resident analysis service.

Three verbs:

``repro serve``
    Run an :class:`~repro.service.server.AnalysisServer` in the
    foreground.  SIGTERM/SIGINT drain gracefully: running jobs
    checkpoint and return to ``queued``, so ``repro serve`` on the same
    ``--data-dir`` resumes them.

``repro submit``
    Submit a graph (a file or ``gallery:<name>``) and a job in one
    call; ``--wait`` polls to completion and prints the result.

``repro jobs``
    List jobs, show one job, or cancel one (``--cancel``).

``repro backends``
    Show the probe-backend registry: capabilities and availability on
    this host (or, with ``--url``, on a running server's host) — the
    quickest way to see whether the compiled ``cc`` backend found a C
    compiler.

``repro report``
    Render a saved exploration result (``--output-json``) or telemetry
    snapshot (``--stats-json``) as tables: the Pareto front, the cost
    stats, the counters and per-backend timers.

``repro diff``
    Compare two such documents: Pareto deltas (points gained, lost,
    moved), probe-count deltas, timing deltas.  Exits 0 when the
    payloads match, 4 when they differ — usable as a regression gate.

Examples
--------
::

    repro serve --port 8000 --data-dir state --workers 4 \
        --bulkhead-interactive 1 --batch-queue-cap 32 &
    repro submit gallery:example --observe c --wait
    repro submit gallery:modem --kind minimal-distribution --throughput 1/20
    repro jobs --url http://127.0.0.1:8000
    repro backends
    repro report front.json
    repro diff front_before.json front_after.json
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import urllib.error

from repro.exceptions import ReproError
from repro.io.jsonio import graph_to_dict

DEFAULT_URL = "http://127.0.0.1:8000"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Long-lived SDF buffer/throughput analysis service.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run the analysis server in the foreground")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8000, help="bind port; 0 picks one (default: 8000)")
    serve.add_argument("--data-dir", metavar="DIR", help="durable state: graphs, job store, checkpoints")
    serve.add_argument("--workers", type=int, default=1, metavar="N", help="job worker threads (default: 1)")
    serve.add_argument("--queue-size", type=int, default=64, metavar="N", help="max queued jobs (default: 64)")
    serve.add_argument(
        "--engine",
        choices=("auto", "fast", "reference"),
        default="auto",
        help="simulation kernel for job probes (default: auto)",
    )
    serve.add_argument(
        "--bulkhead-interactive",
        type=int,
        default=0,
        metavar="N",
        help="workers reserved for interactive jobs (default: 0 = all float)",
    )
    serve.add_argument(
        "--bulkhead-batch",
        type=int,
        default=0,
        metavar="N",
        help="workers reserved for batch (DSE) jobs (default: 0 = all float)",
    )
    serve.add_argument(
        "--interactive-queue-cap",
        type=int,
        metavar="N",
        help="max queued interactive jobs before 429 (default: uncapped)",
    )
    serve.add_argument(
        "--batch-queue-cap",
        type=int,
        metavar="N",
        help="max queued batch jobs before 429 (default: uncapped)",
    )
    serve.add_argument(
        "--breaker-window",
        type=int,
        default=32,
        metavar="N",
        help="circuit breaker: outcomes in the sliding window (default: 32)",
    )
    serve.add_argument(
        "--breaker-min-calls",
        type=int,
        default=4,
        metavar="N",
        help="circuit breaker: outcomes required before it can trip (default: 4)",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=float,
        default=0.5,
        metavar="RATE",
        help="circuit breaker: windowed failure rate that opens it (default: 0.5)",
    )
    serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="circuit breaker: open time before half-open probing (default: 5)",
    )
    serve.add_argument(
        "--allow-chaos",
        action="store_true",
        help=argparse.SUPPRESS,  # fault injection for load tests only
    )

    submit = commands.add_parser("submit", help="submit a graph + job to a running server")
    submit.add_argument("graph", help="input graph: an .xml or .json file, or gallery:<name>")
    submit.add_argument("--url", default=DEFAULT_URL, help=f"server base URL (default: {DEFAULT_URL})")
    submit.add_argument(
        "--kind",
        choices=("dse", "throughput", "minimal-distribution", "dse-sadf"),
        default="dse",
        help="analysis to run; dse-sadf takes an SADF input (default: dse)",
    )
    submit.add_argument("--observe", metavar="ACTOR", help="actor whose throughput is analysed")
    submit.add_argument("--strategy", choices=("dependency", "divide", "exhaustive"), default="dependency")
    submit.add_argument("--max-size", type=int, metavar="N", help="dse: explore only sizes up to N")
    submit.add_argument("--throughput", metavar="P/Q", help="minimal-distribution: the constraint")
    submit.add_argument("--capacities", metavar="CH=N,...", help="throughput: the distribution to evaluate")
    submit.add_argument("--priority", type=int, default=0, help="queue priority; lower runs first")
    submit.add_argument(
        "--job-class",
        choices=("interactive", "batch"),
        help="bulkhead class (default: by kind — dse is batch, probes interactive)",
    )
    submit.add_argument(
        "--idempotency-key",
        metavar="KEY",
        help="replay-safe submission key (default: minted per call)",
    )
    submit.add_argument("--deadline", type=float, metavar="SECONDS", help="per-job wall-clock budget")
    submit.add_argument("--max-probes", type=int, metavar="N", help="per-job probe budget")
    submit.add_argument("--wait", action="store_true", help="poll until the job settles and print the result")
    submit.add_argument("--timeout", type=float, default=300.0, help="--wait timeout in seconds (default: 300)")
    submit.add_argument("--json", action="store_true", help="print the raw job JSON instead of a summary")

    jobs = commands.add_parser("jobs", help="list, inspect or cancel jobs")
    jobs.add_argument("job_id", nargs="?", help="show this job instead of the whole table")
    jobs.add_argument("--url", default=DEFAULT_URL, help=f"server base URL (default: {DEFAULT_URL})")
    jobs.add_argument("--cancel", action="store_true", help="cancel the given job")
    jobs.add_argument("--json", action="store_true", help="print raw JSON")

    backends = commands.add_parser(
        "backends", help="show probe backends: capabilities and availability"
    )
    backends.add_argument(
        "--url",
        metavar="URL",
        help="query a running server instead of this host's registry",
    )
    backends.add_argument("--json", action="store_true", help="print raw JSON")

    report = commands.add_parser(
        "report", help="render a saved result or telemetry snapshot as tables"
    )
    report.add_argument("document", help="a --output-json result or --stats-json snapshot")
    report.add_argument("--label", help="heading label (default: the file name)")

    diff = commands.add_parser(
        "diff", help="compare two saved results or snapshots (exit 4 on differences)"
    )
    diff.add_argument("document_a", help="baseline document")
    diff.add_argument("document_b", help="candidate document")
    diff.add_argument("--label-a", default=None, help="name for the baseline (default: file name)")
    diff.add_argument("--label-b", default=None, help="name for the candidate (default: file name)")
    return parser


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    try:
        if arguments.command == "serve":
            return _serve(arguments)
        if arguments.command == "submit":
            return _submit(arguments)
        if arguments.command == "backends":
            return _backends(arguments)
        if arguments.command == "report":
            return _report(arguments)
        if arguments.command == "diff":
            return _diff(arguments)
        return _jobs(arguments)
    except ReproError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 1
    except urllib.error.URLError as error:
        print(f"repro: error: cannot reach the server ({error.reason})", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 1


def _serve(arguments: argparse.Namespace) -> int:
    from repro.service.resilience import JOB_CLASSES, Bulkhead, CircuitBreaker
    from repro.service.server import AnalysisServer

    queue_caps = {}
    if arguments.interactive_queue_cap is not None:
        queue_caps["interactive"] = arguments.interactive_queue_cap
    if arguments.batch_queue_cap is not None:
        queue_caps["batch"] = arguments.batch_queue_cap
    bulkhead = Bulkhead(
        arguments.workers,
        reserved={
            "interactive": arguments.bulkhead_interactive,
            "batch": arguments.bulkhead_batch,
        },
        queue_caps=queue_caps,
    )
    breakers = {
        job_class: CircuitBreaker(
            job_class,
            window=arguments.breaker_window,
            min_calls=arguments.breaker_min_calls,
            failure_threshold=arguments.breaker_threshold,
            cooldown_s=arguments.breaker_cooldown,
        )
        for job_class in JOB_CLASSES
    }
    server = AnalysisServer(
        arguments.data_dir,
        host=arguments.host,
        port=arguments.port,
        workers=arguments.workers,
        queue_size=arguments.queue_size,
        engine=arguments.engine,
        bulkhead=bulkhead,
        breakers=breakers,
        allow_chaos=arguments.allow_chaos,
    )

    # The handler only sets an event: calling stop() from inside the
    # signal handler would deadlock (the main thread is the serve loop
    # that httpd.shutdown() waits on).
    stop_requested = threading.Event()

    def shut_down(signum, frame):  # noqa: ARG001
        stop_requested.set()

    signal.signal(signal.SIGTERM, shut_down)
    signal.signal(signal.SIGINT, shut_down)
    server.start()
    print(f"repro serve: listening on {server.url}", flush=True)
    stop_requested.wait()
    print("repro serve: draining (jobs checkpoint and requeue)", flush=True)
    server.stop()
    print("repro serve: stopped", flush=True)
    return 0


def _submit(arguments: argparse.Namespace) -> int:
    from repro.cli import load_graph, parse_capacities
    from repro.service.client import ServiceClient

    params: dict = {}
    if arguments.kind in ("dse", "dse-sadf"):
        params["strategy"] = arguments.strategy
        if arguments.max_size is not None:
            params["max_size"] = arguments.max_size
    elif arguments.kind == "minimal-distribution":
        if not arguments.throughput:
            print("repro: error: --throughput is required for minimal-distribution", file=sys.stderr)
            return 2
        params["throughput"] = arguments.throughput
    elif arguments.kind == "throughput":
        if not arguments.capacities:
            print("repro: error: --capacities is required for throughput jobs", file=sys.stderr)
            return 2
        params["capacities"] = dict(parse_capacities(arguments.capacities))

    client = ServiceClient(arguments.url)
    if arguments.kind == "dse-sadf":
        from repro.cli import load_sadf
        from repro.io.sadfjson import sadf_to_dict

        document = sadf_to_dict(load_sadf(arguments.graph))
    else:
        document = graph_to_dict(load_graph(arguments.graph))
    job = client.submit_job(
        document,
        kind=arguments.kind,
        observe=arguments.observe,
        params=params,
        priority=arguments.priority,
        deadline_s=arguments.deadline,
        max_probes=arguments.max_probes,
        job_class=arguments.job_class,
        idempotency_key=arguments.idempotency_key,
    )
    if arguments.wait:
        job = client.wait(job["id"], timeout=arguments.timeout)
    if arguments.json:
        print(json.dumps(job, indent=2, sort_keys=True))
    else:
        _print_job(job)
    if job["state"] in ("failed",):
        return 1
    if job["state"] in ("partial", "cancelled"):
        return 3
    return 0


def _jobs(arguments: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(arguments.url)
    if arguments.cancel:
        if not arguments.job_id:
            print("repro: error: --cancel needs a job id", file=sys.stderr)
            return 2
        job = client.cancel(arguments.job_id)
        print(f"job {job['id']} -> {job['state']}")
        return 0
    if arguments.job_id:
        job = client.job(arguments.job_id)
        if arguments.json:
            print(json.dumps(job, indent=2, sort_keys=True))
        else:
            _print_job(job)
        return 0
    jobs = client.jobs()
    if arguments.json:
        print(json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        print(
            f"{job['id']}  {job['state']:<9}  {job['kind']:<20}"
            f"  graph {job['graph'][:12]}  observe {job['observe']}"
        )
    return 0


def _backends(arguments: argparse.Namespace) -> int:
    if arguments.url:
        from repro.service.client import ServiceClient

        rows = ServiceClient(arguments.url).backends()
    else:
        from repro.engine.backends import backend_descriptions

        rows = backend_descriptions()
    if arguments.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    for row in rows:
        status = "available" if row["available"] else f"unavailable — {row['reason']}"
        print(f"{row['name']}: {status}  [{', '.join(row['capabilities'])}]")
    return 0


def _report(arguments: argparse.Namespace) -> int:
    from repro.reporting.diffs import load_document, report_text

    kind, document = load_document(arguments.document)
    print(report_text(kind, document, label=arguments.label or arguments.document))
    return 0


def _diff(arguments: argparse.Namespace) -> int:
    from repro.reporting.diffs import diff_text, load_document

    kind_a, document_a = load_document(arguments.document_a)
    kind_b, document_b = load_document(arguments.document_b)
    text, identical = diff_text(
        kind_a,
        document_a,
        kind_b,
        document_b,
        label_a=arguments.label_a or arguments.document_a,
        label_b=arguments.label_b or arguments.document_b,
    )
    print(text)
    return 0 if identical else 4


def _print_job(job: dict) -> None:
    print(f"job {job['id']}: {job['kind']} on graph {job['graph'][:12]} -> {job['state']}")
    if job.get("error"):
        print(f"  error: {job['error']}")
    result = job.get("result")
    if not result:
        return
    if job["kind"] in ("dse", "dse-sadf"):
        front = result.get("pareto_front", [])
        flag = "" if result.get("complete", True) else f"  (partial: {result.get('exhausted')})"
        print(f"  Pareto points: {len(front)}{flag}")
        for point in front:
            print(f"    size={point['size']} throughput={point['throughput']}")
        stats = result.get("stats", {})
        print(
            f"  cost: {stats.get('evaluations')} evaluations,"
            f" {stats.get('cache_hits')} cache hits"
        )
    elif job["kind"] == "throughput":
        print(f"  throughput: {result['throughput']} (deadlocked: {result['deadlocked']})")
    elif job["kind"] == "minimal-distribution":
        if result.get("found"):
            print(
                f"  minimal size {result['size']} at throughput {result['throughput']}:"
                f" {result['distribution']}"
            )
        else:
            print("  constraint not achievable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
