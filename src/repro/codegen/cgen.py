"""Generate C source in the style of the paper's Fig. 8.

The paper's ``buffy`` emits a C++ program per graph; Fig. 8 shows the
generated code for the running example, built from a handful of
macros (``CH``, ``CHECK_TOKENS``, ``CHECK_SPACE``, ``CONSUME``,
``PRODUCE``, ``ACT_CLK``, ``LOWER_CLK``) around a ``while`` loop that
advances one time step per iteration.  This module reproduces that
artefact textually — the output is compilable C given a ``storeState``
implementation, but this reproduction treats it as a documentation
artefact and uses :mod:`repro.codegen.pygen` for executable output.

Note the printed ``CHECK_SPACE`` macro in the paper is corrupted by
OCR; the version emitted here implements the semantics of Sec. 2
(``sz[c] - CH(c) >= n``).
"""

from __future__ import annotations

from repro.graph.graph import SDFGraph


def generate_c(graph: SDFGraph, observe: str | None = None) -> str:
    """Return Fig.-8-style C source for *graph*."""
    if observe is None:
        observe = graph.actor_names[-1]
    actor_names = graph.actor_names
    channel_names = graph.channel_names
    channel_index = {name: j for j, name in enumerate(channel_names)}
    observe_index = actor_names.index(observe)

    lines = [
        f"/* Generated explorer for SDF graph '{graph.name}' (observing '{observe}').",
        "   Style of Fig. 8 of Stuijk/Geilen/Basten, DAC 2006. */",
        "",
        "#define CH(c) (sdfState.ch[c])",
        "#define CHECK_TOKENS(c,n) (CH(c) >= (n))",
        "#define CHECK_SPACE(c,n) (sz[c] - CH(c) >= (n))",
        "#define CONSUME(c,n) CH(c) = CH(c) - (n);",
        "#define PRODUCE(c,n) CH(c) = CH(c) + (n);",
        "#define ACT_CLK(a) (sdfState.act_clk[a])",
        "#define LOWER_CLK(a) if (ACT_CLK(a) > 0) { ACT_CLK(a) = ACT_CLK(a) - 1; }",
        "",
        f"static int sz[{len(channel_names)}];  /* storage distribution */",
        "",
        "typedef struct State {",
        f"    int act_clk[{len(actor_names)}];",
        f"    int ch[{len(channel_names)}];",
        "    int dist;",
        "} State;",
        "",
        "static State sdfState;",
        "",
        "int execSDFgraph() {",
        "    while (1) {",
    ]

    lower = " ".join(f"LOWER_CLK({i});" for i in range(len(actor_names)))
    lines.append(f"        {lower}")
    lines.append("        sdfState.dist = sdfState.dist + 1;")
    lines.append("")

    for index, name in enumerate(actor_names):
        conditions = [f"ACT_CLK({index}) == 0"]
        for channel in graph.incoming(name):
            conditions.append(f"CHECK_TOKENS({channel_index[channel.name]},{channel.consumption})")
        for channel in graph.outgoing(name):
            conditions.append(f"CHECK_SPACE({channel_index[channel.name]},{channel.production})")
        execution_time = graph.actors[name].execution_time
        lines.append(
            f"        if ({' && '.join(conditions)}) {{ ACT_CLK({index}) = {execution_time}; }}"
            f"  /* start {name} */"
        )
    lines.append("")

    for index, name in enumerate(actor_names):
        effects = "".join(
            f" CONSUME({channel_index[c.name]},{c.consumption});" for c in graph.incoming(name)
        ) + "".join(
            f" PRODUCE({channel_index[c.name]},{c.production});" for c in graph.outgoing(name)
        )
        suffix = ""
        if index == observe_index:
            suffix = " if (storeState(sdfState)) return 1; sdfState.dist = 0;"
        lines.append(
            f"        if (ACT_CLK({index}) == 1) {{{effects}{suffix} }}  /* end {name} */"
        )

    lines += [
        "",
        "        /* deadlock detection omitted (no actor firing or enabled) */",
        "    }",
        "}",
        "",
    ]
    return "\n".join(lines)
