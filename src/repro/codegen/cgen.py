"""Generate C source for SDF graphs: the Fig.-8 artefact and the probe kernel.

Two generators live here:

:func:`generate_c`
    Reproduces the paper's Fig. 8 textually — the C program ``buffy``
    emits per graph, built from a handful of macros (``CH``,
    ``CHECK_TOKENS``, ``CHECK_SPACE``, ``CONSUME``, ``PRODUCE``,
    ``ACT_CLK``, ``LOWER_CLK``) around a ``while`` loop that advances
    one time step per iteration.  The paper's figure assumes a
    ``storeState`` provided by the surrounding framework; the output
    here is *self-contained* — it emits a linear-scan visited-state
    set, deadlock detection and a ``main`` reading a storage
    distribution from ``argv``, so the artefact actually compiles and
    runs standalone.  It remains a documentation artefact (one step per
    loop iteration, ``int`` state); executable probes use
    :func:`generate_kernel_c` below or :mod:`repro.codegen.pygen`.

    Note the printed ``CHECK_SPACE`` macro in the paper is corrupted by
    OCR; the version emitted here implements the semantics of Sec. 2
    (``sz[c] - CH(c) >= n``).

:func:`generate_kernel_c`
    Emits the production probe kernel behind the ``"cc"`` backend
    (:mod:`repro.engine.ccore`): a complete, self-contained C
    translation unit specialised to one ``(graph, observe)`` pair —
    event-calendar loop over absolute completion times, an
    open-addressing hash set of reduced states for cycle detection,
    stall/starvation detection, throughput extraction at the observed
    actor, and the batched lane entry points ``probe_many`` /
    ``probe_many_exact``.  Semantics mirror
    :class:`repro.engine.fastcore.FastKernel` instruction for
    instruction so results are bit-identical to the reference
    executor (the backend-conformance suite is the gate).

``CODEGEN_VERSION`` participates in the on-disk kernel-cache key, so
any change to the emitted source must bump it — stale shared objects
are then simply never looked up again.
"""

from __future__ import annotations

from repro.exceptions import GraphError
from repro.graph.graph import SDFGraph

#: Version tag of the emitted kernel source.  Part of the
#: content-addressed cache key in :mod:`repro.engine.ccore`: bump it
#: whenever :func:`generate_kernel_c` output changes so cached shared
#: objects from older generators can never be loaded.
CODEGEN_VERSION = "cc-1"

#: ABI stamp compiled into every kernel (``repro_kernel_abi()``); the
#: loader refuses shared objects reporting anything else, which turns
#: truncated or foreign files in the cache into a clean recompile.
KERNEL_ABI = 1


def generate_c(graph: SDFGraph, observe: str | None = None) -> str:
    """Return Fig.-8-style C source for *graph*, compilable standalone."""
    if observe is None:
        observe = graph.actor_names[-1]
    actor_names = graph.actor_names
    channel_names = graph.channel_names
    channel_index = {name: j for j, name in enumerate(channel_names)}
    observe_index = actor_names.index(observe)

    lines = [
        f"/* Generated explorer for SDF graph '{graph.name}' (observing '{observe}').",
        "   Style of Fig. 8 of Stuijk/Geilen/Basten, DAC 2006. */",
        "",
        "#include <stdio.h>",
        "#include <stdlib.h>",
        "#include <string.h>",
        "",
        "#define CH(c) (sdfState.ch[c])",
        "#define CHECK_TOKENS(c,n) (CH(c) >= (n))",
        "#define CHECK_SPACE(c,n) (sz[c] - CH(c) >= (n))",
        "#define CONSUME(c,n) CH(c) = CH(c) - (n);",
        "#define PRODUCE(c,n) CH(c) = CH(c) + (n);",
        "#define ACT_CLK(a) (sdfState.act_clk[a])",
        "#define LOWER_CLK(a) if (ACT_CLK(a) > 0) { ACT_CLK(a) = ACT_CLK(a) - 1; }",
        "",
        f"static int sz[{len(channel_names)}];  /* storage distribution */",
        "",
        "typedef struct State {",
        f"    int act_clk[{len(actor_names)}];",
        f"    int ch[{len(channel_names)}];",
        "    int dist;",
        "} State;",
        "",
        "static State sdfState;",
        "",
        "/* The paper's figure assumes a framework-provided storeState();",
        "   this self-contained version implements it as a growable",
        "   visited-state store with linear lookup.  Returning 1 closes",
        "   the periodic phase (state recurrence). */",
        "#define MAX_STATES 65536",
        "static State stored[MAX_STATES];",
        "static int storedCount = 0;",
        "static int cycleStart = -1;",
        "",
        "static int storeState(State s) {",
        "    for (int i = 0; i < storedCount; i++) {",
        "        if (memcmp(&stored[i], &s, sizeof(State)) == 0) { cycleStart = i; return 1; }",
        "    }",
        "    if (storedCount < MAX_STATES) { stored[storedCount] = s; storedCount = storedCount + 1; }",
        "    return 0;",
        "}",
        "",
        "int execSDFgraph() {",
        "    while (1) {",
    ]

    lower = " ".join(f"LOWER_CLK({i});" for i in range(len(actor_names)))
    lines.append(f"        {lower}")
    lines.append("        sdfState.dist = sdfState.dist + 1;")
    lines.append("")

    for index, name in enumerate(actor_names):
        conditions = [f"ACT_CLK({index}) == 0"]
        for channel in graph.incoming(name):
            conditions.append(f"CHECK_TOKENS({channel_index[channel.name]},{channel.consumption})")
        for channel in graph.outgoing(name):
            conditions.append(f"CHECK_SPACE({channel_index[channel.name]},{channel.production})")
        execution_time = graph.actors[name].execution_time
        lines.append(
            f"        if ({' && '.join(conditions)}) {{ ACT_CLK({index}) = {execution_time}; }}"
            f"  /* start {name} */"
        )
    lines.append("")

    for index, name in enumerate(actor_names):
        effects = "".join(
            f" CONSUME({channel_index[c.name]},{c.consumption});" for c in graph.incoming(name)
        ) + "".join(
            f" PRODUCE({channel_index[c.name]},{c.production});" for c in graph.outgoing(name)
        )
        suffix = ""
        if index == observe_index:
            suffix = " if (storeState(sdfState)) return 1; sdfState.dist = 0;"
        lines.append(
            f"        if (ACT_CLK({index}) == 1) {{{effects}{suffix} }}  /* end {name} */"
        )

    # All clocks zero at the bottom of an iteration means nothing is
    # running, nothing started this step, and (since ends leave the
    # clock at 1 until the next LOWER_CLK) nothing ended either — the
    # token state can never change again.
    idle = " && ".join(f"ACT_CLK({i}) == 0" for i in range(len(actor_names)))
    lines += [
        "",
        f"        if ({idle}) {{ return 0; }}  /* deadlock: nothing running or enabled */",
        "    }",
        "}",
        "",
        "int main(int argc, char **argv) {",
        f"    for (int c = 0; c < {len(channel_names)}; c++) {{",
        "        sz[c] = (c + 1 < argc) ? atoi(argv[c + 1]) : (1 << 30);",
        "    }",
        "    memset(&sdfState, 0, sizeof(State));",
    ]
    for index, name in enumerate(channel_names):
        tokens = graph.channels[name].initial_tokens
        if tokens:
            lines.append(f"    sdfState.ch[{index}] = {tokens};  /* {name} */")
    lines += [
        "    if (execSDFgraph()) {",
        "        int firings = storedCount - cycleStart;",
        "        int duration = sdfState.dist;",
        "        for (int i = cycleStart + 1; i < storedCount; i++) { duration += stored[i].dist; }",
        '        printf("throughput %d/%d (%d states)\\n", firings, duration, storedCount);',
        "    } else {",
        '        printf("deadlock\\n");',
        "    }",
        "    return 0;",
        "}",
        "",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The probe kernel behind the "cc" backend
# ---------------------------------------------------------------------------


def _int_array(name: str, values: list[int], ctype: str = "int64_t") -> str:
    """A ``static const`` array line; zero-length arrays are padded (C
    forbids empty initialisers) and never read past their real count."""
    body = ", ".join(str(v) for v in values) if values else "0"
    return f"static const {ctype} {name}[{max(1, len(values))}] = {{{body}}};"


def generate_kernel_c(graph: SDFGraph, observe: str | None = None) -> str:
    """Self-contained probe-kernel C source for ``(graph, observe)``.

    The emitted translation unit exports:

    ``int64_t repro_kernel_abi(void)`` /
    ``repro_kernel_actors`` / ``repro_kernel_channels``
        Loader handshake: ABI stamp and graph shape, checked before a
        cached shared object is trusted.
    ``int32_t probe_many_exact(const int64_t *caps, int32_t lanes,
    int64_t stall_threshold, int64_t max_firings, int64_t *out)``
        The exact batched entry point the backend uses.  ``caps`` is
        ``lanes * N_CHANNELS`` capacities (unbounded channels carry a
        huge sentinel), ``out`` receives four ``int64`` per lane:
        firings-in-cycle, cycle-duration, states-stored, deadlocked.
        Throughput is reconstructed host-side as the exact
        ``Fraction(firings, duration)``.  Returns 0, or 1 when the
        per-instant firing guard trips (diverging zero-time cascade),
        or 2 on allocation failure.
    ``int32_t probe_many(const int64_t *caps, int32_t lanes,
    double *out)``
        Convenience lane entry point writing throughput as a double
        per lane, with the default stall/guard thresholds baked in.

    Execution semantics are exactly those of
    :class:`repro.engine.fastcore.FastKernel`: tokens are consumed
    *and* produced at the end of a firing, enabled firings start as a
    fixpoint over zero-execution-time cascades (sound by confluence —
    each channel has a unique producer and consumer), reduced states
    ``(relative clocks, tokens, distance, firings)`` are recorded
    whenever the observed actor completes a firing, a revisited state
    closes the periodic phase, and ``stall_threshold`` observation-free
    instants arm a full-state recurrence check that reports starvation
    as throughput zero.
    """
    if graph.num_actors == 0:
        raise GraphError("cannot generate a kernel for an empty graph")
    if observe is None:
        observe = graph.actor_names[-1]
    if observe not in graph.actors:
        raise GraphError(f"unknown observed actor {observe!r}")

    actor_names = graph.actor_names
    channel_names = graph.channel_names
    n, m = len(actor_names), len(channel_names)
    actor_index = {name: i for i, name in enumerate(actor_names)}
    channel_index = {name: j for j, name in enumerate(channel_names)}
    observe_idx = actor_index[observe]

    exec_times = [graph.actors[name].execution_time for name in actor_names]
    initial_tokens = [graph.channels[name].initial_tokens for name in channel_names]
    cons_rate = [graph.channels[name].consumption for name in channel_names]
    prod_rate = [graph.channels[name].production for name in channel_names]

    # Flattened per-actor adjacency (rates live on the channel: each
    # channel has a unique producer and a unique consumer).
    in_off, in_ch, out_off, out_ch = [0], [], [0], []
    for name in actor_names:
        in_ch.extend(channel_index[c.name] for c in graph.incoming(name))
        in_off.append(len(in_ch))
        out_ch.extend(channel_index[c.name] for c in graph.outgoing(name))
        out_off.append(len(out_ch))

    from repro.engine import executor as _reference

    default_stall = _reference._DEFAULT_STALL_THRESHOLD
    default_guard = _reference._MAX_FIRINGS_PER_INSTANT

    graph_label = graph.name.replace("*/", "* /")
    header = f"""\
/* Probe kernel for SDF graph '{graph_label}' (observing '{observe}').
 * Generated by repro.codegen.cgen version {CODEGEN_VERSION}; do not edit.
 *
 * Self-timed bounded execution to the periodic phase, bit-identical
 * to repro.engine.executor (tokens move at firing END; zero-time
 * cascades run to a fixpoint; reduced-state recurrence closes the
 * cycle; stall_threshold observation-free instants arm starvation
 * detection on full states).
 */
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define N_ACTORS {n}
#define N_CHANNELS {m}
#define OBSERVE {observe_idx}
#define KEY_WORDS (N_ACTORS + N_CHANNELS + 2)  /* clocks, tokens, distance, firings */
#define FULL_WORDS (N_ACTORS + N_CHANNELS)     /* clocks, tokens (stall keys) */
#define KERNEL_ABI {KERNEL_ABI}
#define DEFAULT_STALL_THRESHOLD {default_stall}
#define DEFAULT_MAX_FIRINGS {default_guard}

#define RC_OK 0
#define RC_CASCADE 1  /* per-instant firing guard tripped */
#define RC_NOMEM 2

{_int_array("EXEC_TIME", exec_times)}
{_int_array("INITIAL_TOKENS", initial_tokens)}
{_int_array("CONS_RATE", cons_rate)}
{_int_array("PROD_RATE", prod_rate)}
{_int_array("IN_OFF", in_off, "int32_t")}
{_int_array("IN_CH", in_ch, "int32_t")}
{_int_array("OUT_OFF", out_off, "int32_t")}
{_int_array("OUT_CH", out_ch, "int32_t")}
"""

    body = """\
/* ---- open-addressing visited-state set ------------------------------ */

typedef struct StateSet {
    int64_t *keys;   /* cap * words, insertion order */
    int64_t *dist;   /* per record: distance since previous record */
    int64_t *cnt;    /* per record: observed firings at the record */
    int32_t *slots;  /* hash table: record index + 1; 0 = empty */
    int32_t  count;
    int32_t  cap;
    int32_t  mask;   /* table size - 1 (power of two) */
    int32_t  words;
    int32_t  track;  /* keep dist/cnt (the record set; stall set does not) */
} StateSet;

static uint64_t hash_key(const int64_t *key, int32_t words) {
    uint64_t h = 1469598103934665603ULL;  /* FNV-1a over the key words */
    for (int32_t w = 0; w < words; w++) {
        h ^= (uint64_t)key[w];
        h *= 1099511628211ULL;
    }
    return h ^ (h >> 29);
}

static int32_t set_init(StateSet *s, int32_t words, int32_t track) {
    memset(s, 0, sizeof(StateSet));
    s->cap = 64;
    s->mask = 255;
    s->words = words;
    s->track = track;
    s->keys = (int64_t *)malloc((size_t)s->cap * (size_t)words * sizeof(int64_t));
    s->slots = (int32_t *)calloc((size_t)s->mask + 1, sizeof(int32_t));
    if (track) {
        s->dist = (int64_t *)malloc((size_t)s->cap * sizeof(int64_t));
        s->cnt = (int64_t *)malloc((size_t)s->cap * sizeof(int64_t));
    }
    if (!s->keys || !s->slots || (track && (!s->dist || !s->cnt))) return RC_NOMEM;
    return RC_OK;
}

static void set_clear(StateSet *s) {
    s->count = 0;
    if (s->slots) memset(s->slots, 0, ((size_t)s->mask + 1) * sizeof(int32_t));
}

static void set_release(StateSet *s) {
    free(s->keys);
    free(s->dist);
    free(s->cnt);
    free(s->slots);
    memset(s, 0, sizeof(StateSet));
}

static int32_t set_rehash(StateSet *s) {
    int32_t size = (s->mask + 1) * 2;
    int32_t *slots = (int32_t *)calloc((size_t)size, sizeof(int32_t));
    if (!slots) return RC_NOMEM;
    free(s->slots);
    s->slots = slots;
    s->mask = size - 1;
    for (int32_t j = 0; j < s->count; j++) {
        uint64_t idx = hash_key(s->keys + (size_t)j * s->words, s->words) & (uint64_t)s->mask;
        while (s->slots[idx]) idx = (idx + 1) & (uint64_t)s->mask;
        s->slots[idx] = j + 1;
    }
    return RC_OK;
}

/* Insert *key* if absent.  Returns the existing record index (>= 0) on
 * a revisit, -1 on a fresh insert, -2 on allocation failure. */
static int64_t set_find_or_insert(StateSet *s, const int64_t *key, int64_t d, int64_t c) {
    size_t bytes = (size_t)s->words * sizeof(int64_t);
    uint64_t idx = hash_key(key, s->words) & (uint64_t)s->mask;
    while (s->slots[idx]) {
        int32_t j = s->slots[idx] - 1;
        if (memcmp(s->keys + (size_t)j * s->words, key, bytes) == 0) return j;
        idx = (idx + 1) & (uint64_t)s->mask;
    }
    if (s->count == s->cap) {
        int32_t cap = s->cap * 2;
        int64_t *keys = (int64_t *)realloc(s->keys, (size_t)cap * bytes);
        if (!keys) return -2;
        s->keys = keys;
        if (s->track) {
            int64_t *dist = (int64_t *)realloc(s->dist, (size_t)cap * sizeof(int64_t));
            if (!dist) return -2;
            s->dist = dist;
            int64_t *cnt = (int64_t *)realloc(s->cnt, (size_t)cap * sizeof(int64_t));
            if (!cnt) return -2;
            s->cnt = cnt;
        }
        s->cap = cap;
    }
    memcpy(s->keys + (size_t)s->count * s->words, key, bytes);
    if (s->track) {
        s->dist[s->count] = d;
        s->cnt[s->count] = c;
    }
    s->slots[idx] = ++s->count;
    if ((int64_t)s->count * 4 >= ((int64_t)s->mask + 1) * 3) {
        if (set_rehash(s) != RC_OK) return -2;
    }
    return -1;
}

/* ---- one lane: simulate to the periodic phase or deadlock ----------- */

/* out: {firings_in_cycle, cycle_duration, states_stored, deadlocked} */
static int32_t run_one(const int64_t *caps, int64_t stall_threshold,
                       int64_t max_firings, StateSet *seen, StateSet *stalls,
                       int64_t *out) {
    int64_t tokens[N_CHANNELS > 0 ? N_CHANNELS : 1];
    int64_t completion[N_ACTORS];
    int64_t key[KEY_WORDS];
    int64_t time = 0, last_firing = 0, idle_streak = 0;

    set_clear(seen);
    set_clear(stalls);
    for (int32_t c = 0; c < N_CHANNELS; c++) tokens[c] = INITIAL_TOKENS[c];
    for (int32_t a = 0; a < N_ACTORS; a++) completion[a] = -1;

    for (;;) {
        /* 1. complete due firings: tokens are consumed AND produced at
         * the END of a firing, one observed completion per event. */
        int64_t observed = 0;
        for (int32_t a = 0; a < N_ACTORS; a++) {
            if (completion[a] != time) continue;
            completion[a] = -1;
            for (int32_t k = IN_OFF[a]; k < IN_OFF[a + 1]; k++)
                tokens[IN_CH[k]] -= CONS_RATE[IN_CH[k]];
            for (int32_t k = OUT_OFF[a]; k < OUT_OFF[a + 1]; k++)
                tokens[OUT_CH[k]] += PROD_RATE[OUT_CH[k]];
            if (a == OBSERVE) observed++;
        }

        /* 2. start enabled firings, as a fixpoint over zero-time
         * cascades.  Confluence (unique producer/consumer per channel)
         * makes the scan order irrelevant: starting one enabled actor
         * can never disable another. */
        int64_t fired = 0;
        int32_t changed = 1;
        while (changed) {
            changed = 0;
            for (int32_t a = 0; a < N_ACTORS; a++) {
                if (completion[a] >= 0) continue;  /* busy */
                int32_t enabled = 1;
                for (int32_t k = IN_OFF[a]; enabled && k < IN_OFF[a + 1]; k++)
                    if (tokens[IN_CH[k]] < CONS_RATE[IN_CH[k]]) enabled = 0;
                for (int32_t k = OUT_OFF[a]; enabled && k < OUT_OFF[a + 1]; k++)
                    if (tokens[OUT_CH[k]] + PROD_RATE[OUT_CH[k]] > caps[OUT_CH[k]]) enabled = 0;
                if (!enabled) continue;
                if (++fired > max_firings) return RC_CASCADE;
                if (EXEC_TIME[a] == 0) {
                    /* fire-and-finish: zero-time firings move their
                     * tokens immediately and may cascade */
                    for (int32_t k = IN_OFF[a]; k < IN_OFF[a + 1]; k++)
                        tokens[IN_CH[k]] -= CONS_RATE[IN_CH[k]];
                    for (int32_t k = OUT_OFF[a]; k < OUT_OFF[a + 1]; k++)
                        tokens[OUT_CH[k]] += PROD_RATE[OUT_CH[k]];
                    if (a == OBSERVE) observed++;
                    changed = 1;
                } else {
                    completion[a] = time + EXEC_TIME[a];
                }
            }
        }

        /* 3. record / stall bookkeeping */
        if (observed > 0) {
            int64_t distance = time - last_firing;
            last_firing = time;
            idle_streak = 0;
            if (stalls->count) set_clear(stalls);
            for (int32_t a = 0; a < N_ACTORS; a++)
                key[a] = completion[a] >= 0 ? completion[a] - time : 0;
            for (int32_t c = 0; c < N_CHANNELS; c++) key[N_ACTORS + c] = tokens[c];
            key[N_ACTORS + N_CHANNELS] = distance;
            key[N_ACTORS + N_CHANNELS + 1] = observed;
            int64_t repeat = set_find_or_insert(seen, key, distance, observed);
            if (repeat == -2) return RC_NOMEM;
            if (repeat >= 0) {
                /* periodic phase closed: the cycle spans the records
                 * after the first visit plus the current recurrence */
                int64_t firings = observed, duration = distance;
                for (int32_t j = (int32_t)repeat + 1; j < seen->count; j++) {
                    firings += seen->cnt[j];
                    duration += seen->dist[j];
                }
                out[0] = firings;
                out[1] = duration;
                out[2] = seen->count;
                out[3] = 0;
                return RC_OK;
            }
        } else {
            idle_streak++;
            if (idle_streak >= stall_threshold) {
                /* the observed actor has starved for stall_threshold
                 * instants: full-state recurrence means it never fires
                 * again (throughput zero) */
                for (int32_t a = 0; a < N_ACTORS; a++)
                    key[a] = completion[a] >= 0 ? completion[a] - time : 0;
                for (int32_t c = 0; c < N_CHANNELS; c++) key[N_ACTORS + c] = tokens[c];
                int64_t repeat = set_find_or_insert(stalls, key, 0, 0);
                if (repeat == -2) return RC_NOMEM;
                if (repeat >= 0) {
                    out[0] = 0;
                    out[1] = 0;
                    out[2] = seen->count;
                    out[3] = 1;
                    return RC_OK;
                }
            }
        }

        /* 4. deadlock check, then advance to the next completion */
        int64_t next = INT64_MAX;
        for (int32_t a = 0; a < N_ACTORS; a++)
            if (completion[a] >= 0 && completion[a] < next) next = completion[a];
        if (next == INT64_MAX) {
            out[0] = 0;
            out[1] = 0;
            out[2] = seen->count;
            out[3] = 1;
            return RC_OK;
        }
        time = next;
    }
}

/* ---- exported entry points ------------------------------------------ */

int64_t repro_kernel_abi(void) { return KERNEL_ABI; }
int64_t repro_kernel_actors(void) { return N_ACTORS; }
int64_t repro_kernel_channels(void) { return N_CHANNELS; }

/* Exact batched entry point: caps is lanes * N_CHANNELS capacities,
 * out receives 4 int64 per lane (firings, duration, states, dead). */
int32_t probe_many_exact(const int64_t *caps, int32_t lanes,
                         int64_t stall_threshold, int64_t max_firings,
                         int64_t *out) {
    StateSet seen, stalls;
    int32_t rc = set_init(&seen, KEY_WORDS, 1);
    if (rc == RC_OK) rc = set_init(&stalls, FULL_WORDS, 0);
    else memset(&stalls, 0, sizeof(StateSet));
    for (int32_t lane = 0; rc == RC_OK && lane < lanes; lane++) {
        rc = run_one(caps + (size_t)lane * N_CHANNELS, stall_threshold,
                     max_firings, &seen, &stalls, out + (size_t)lane * 4);
    }
    set_release(&seen);
    set_release(&stalls);
    return rc;
}

/* Convenience lane entry point: throughput per lane as a double. */
int32_t probe_many(const int64_t *caps, int32_t lanes, double *out) {
    int64_t *raw = (int64_t *)malloc((size_t)(lanes > 0 ? lanes : 1) * 4 * sizeof(int64_t));
    if (!raw) return RC_NOMEM;
    int32_t rc = probe_many_exact(caps, lanes, DEFAULT_STALL_THRESHOLD,
                                  DEFAULT_MAX_FIRINGS, raw);
    if (rc == RC_OK) {
        for (int32_t lane = 0; lane < lanes; lane++) {
            const int64_t *row = raw + (size_t)lane * 4;
            out[lane] = row[3] ? 0.0 : (double)row[0] / (double)row[1];
        }
    }
    free(raw);
    return rc;
}
"""
    return header + "\n" + body
