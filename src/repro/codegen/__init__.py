"""Specialised explorer generation (the paper's ``buffy`` tool, Sec. 10).

``buffy`` reads an SDF graph and *generates a program* that performs
the design-space exploration for exactly that graph, with all rates
and execution times baked in as constants.  This package reproduces
both halves:

* :mod:`repro.codegen.pygen` — generates a runnable, dependency-free
  Python module (the working equivalent of the paper's generated C++
  program); the test suite executes generated modules and checks them
  against the library engine;
* :mod:`repro.codegen.cgen` — generates C source in the exact style of
  the paper's Fig. 8 (``CHECK_TOKENS`` / ``CHECK_SPACE`` / ``CONSUME``
  / ``PRODUCE`` / ``LOWER_CLK`` macros), as a textual artefact.
"""

from repro.codegen.cgen import generate_c
from repro.codegen.pygen import generate_python, load_generated

__all__ = ["generate_c", "generate_python", "load_generated"]
