"""repro — exact buffer-size / throughput trade-off exploration for SDF graphs.

A faithful, self-contained reproduction of

    S. Stuijk, M. Geilen, T. Basten,
    "Exploring Trade-Offs in Buffer Requirements and Throughput
    Constraints for Synchronous Dataflow Graphs", DAC 2006.

Quickstart
----------
>>> from repro import GraphBuilder, explore_design_space
>>> graph = (GraphBuilder("example")
...          .actor("a", 1).actor("b", 2).actor("c", 2)
...          .channel("a", "b", 2, 3, name="alpha")
...          .channel("b", "c", 1, 2, name="beta")
...          .build())
>>> space = explore_design_space(graph, observe="c")
>>> [(p.size, str(p.throughput)) for p in space.front]
[(6, '1/7'), (8, '1/6'), (9, '1/5'), (10, '1/4')]
"""

from repro.analysis import (
    is_consistent,
    is_deadlock_free,
    max_throughput,
    repetition_vector,
    throughput,
)
from repro.buffers import (
    DesignSpaceResult,
    ParetoFront,
    ParetoPoint,
    StorageDistribution,
    explore_design_space,
    lower_bound_distribution,
    minimal_distribution_for_throughput,
    upper_bound_distribution,
)
from repro.engine import ExecutionResult, Executor, Schedule, execute
from repro.exceptions import (
    CapacityError,
    DeadlockError,
    EngineError,
    ExplorationError,
    GraphError,
    InconsistentGraphError,
    ParseError,
    ReproError,
    ServiceError,
    ValidationError,
)
from repro.graph import Actor, Channel, GraphBuilder, SDFGraph
from repro.runtime import (
    Budget,
    BudgetExhausted,
    CancelToken,
    CheckpointError,
    ExplorationConfig,
    ResumeToken,
    TelemetryEvent,
    load_checkpoint,
    save_checkpoint,
)

__version__ = "1.0.0"

__all__ = [
    "Actor",
    "Budget",
    "BudgetExhausted",
    "CancelToken",
    "CapacityError",
    "Channel",
    "CheckpointError",
    "DeadlockError",
    "DesignSpaceResult",
    "EngineError",
    "ExecutionResult",
    "Executor",
    "ExplorationConfig",
    "ExplorationError",
    "GraphBuilder",
    "GraphError",
    "InconsistentGraphError",
    "ParetoFront",
    "ParetoPoint",
    "ParseError",
    "ReproError",
    "ResumeToken",
    "SDFGraph",
    "Schedule",
    "ServiceError",
    "StorageDistribution",
    "TelemetryEvent",
    "ValidationError",
    "__version__",
    "execute",
    "explore_design_space",
    "load_checkpoint",
    "save_checkpoint",
    "is_consistent",
    "is_deadlock_free",
    "lower_bound_distribution",
    "max_throughput",
    "minimal_distribution_for_throughput",
    "repetition_vector",
    "throughput",
    "upper_bound_distribution",
]
