"""Storage-dependency-guided exploration.

This is the refinement the SDF3 implementation of the paper uses to
avoid enumerating every distribution of every size: starting from the
per-channel lower bounds, only channels whose *fullness actually
blocked an otherwise-enabled actor* during the execution are worth
enlarging — increasing any other channel leaves the (deterministic)
execution unchanged.  Moreover a blocked channel needs to grow by at
least its smallest observed capacity shortfall before any firing
decision can change.

Both facts make the following search exact:

* maintain a frontier of storage distributions ordered by size,
  seeded with the lower-bound distribution;
* evaluate each popped distribution with blocking tracking;
* for every space-blocking channel, enqueue the distribution enlarged
  by the channel's minimal deficit;
* stop expanding distributions that already reach the target
  throughput.

Exactness argument (the induction used in the tests): let ``gamma*``
be any distribution with higher throughput than an explored
``gamma <= gamma*`` (pointwise).  The two executions diverge at some
first instant, where an actor starts under ``gamma*`` but is blocked
under ``gamma`` purely by space on channels whose capacities differ.
For such a channel the observed deficit at that instant is at most
``gamma*[c] - gamma[c]``, so the enqueued increment stays pointwise
below ``gamma*`` — by induction some explored distribution dominates
no more than ``gamma*`` and reaches its throughput.  Hence every
Pareto point has a witness in the explored set.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction

from collections.abc import Mapping

from repro.buffers.bounds import lower_bound_distribution
from repro.buffers.distribution import StorageDistribution
from repro.buffers.evalcache import EvaluationService
from repro.exceptions import BudgetExhausted
from repro.graph.graph import SDFGraph
from repro.runtime.config import UNSET, ExplorationConfig, coerce_config


@dataclass
class DependencyStats:
    """Bookkeeping of one dependency-guided sweep."""

    evaluations: int = 0
    max_states_stored: int = 0
    expansions: int = 0
    duplicates_skipped: int = 0


@dataclass(frozen=True)
class DependencySweepResult:
    """All distributions evaluated by the sweep, with throughputs.

    ``complete`` is ``False`` when a run-controller budget interrupted
    the sweep; ``pending`` then lists the frontier distributions that
    were queued but never evaluated (informational — resuming replays
    from the seed over the warm cache), and ``exhausted`` names the
    tripped limit.
    """

    evaluations: dict[StorageDistribution, Fraction]
    stats: DependencyStats
    first_reaching_target: StorageDistribution | None = None
    complete: bool = True
    exhausted: str | None = None
    pending: tuple[StorageDistribution, ...] = ()


def dependency_sweep(
    graph: SDFGraph,
    observe: str | None = None,
    *,
    stop_throughput: Fraction | None = None,
    stop_positive: bool = False,
    max_size: int | None = None,
    start: StorageDistribution | None = None,
    stop_at_first: bool = False,
    token_sizes: Mapping[str, int] | None = None,
    config: ExplorationConfig | None = None,
    evaluator: object = UNSET,
    engine: object = UNSET,
) -> DependencySweepResult:
    """Explore the useful sub-lattice of storage distributions.

    Parameters
    ----------
    stop_throughput:
        Distributions reaching this throughput are recorded but not
        expanded (use the graph's maximal throughput for a full Pareto
        sweep, or a constraint for a minimal-distribution query).
        ``None`` means "expand until nothing blocks on space anymore".
    max_size:
        Optional hard cap on distribution sizes to consider.
    start:
        Alternative seed; defaults to the lower-bound distribution.
    stop_at_first:
        Return as soon as the first distribution reaching
        *stop_throughput* is popped (minimal-size witness queries).
    config:
        The run's :class:`~repro.runtime.config.ExplorationConfig`.
        ``config.evaluator`` shares a ready-made
        :class:`~repro.buffers.evalcache.EvaluationService` (warm
        cache, budget, telemetry); otherwise a private service is
        built from the config and closed before returning.  Note the
        sweep's probes are blocking-aware, so they run on the
        reference executor under ``engine="auto"`` and
        ``engine="fast"`` raises
        :class:`~repro.exceptions.EngineError`.
        With ``workers > 1`` the frontier entries of one size — which
        are all known before any of them is processed, because every
        expansion strictly grows the size — are evaluated as one
        parallel batch; the results are then folded in the exact heap
        order of the serial sweep, so the explored set, the recorded
        throughputs and the first witness are identical.
        A budget interruption lands between probes; the sweep then
        returns everything evaluated so far with ``complete=False``.
    evaluator / engine:
        Removed legacy aliases: passing any of them raises
        :class:`~repro.exceptions.ConfigError` naming the migration.

    A sweep without *stop_throughput* diverges on most graphs (a
    source actor that is merely *ahead* keeps hitting full channels at
    any capacity), so one of *stop_throughput* / *max_size* is
    required.
    """
    if stop_throughput is None and max_size is None and not stop_positive:
        from repro.exceptions import ExplorationError

        raise ExplorationError(
            "dependency_sweep needs a stop_throughput (usually the graph's maximal"
            " throughput) or a max_size; otherwise capacity growth never terminates"
        )
    config = coerce_config(
        config, caller="dependency_sweep", evaluator=evaluator, engine=engine
    )
    seed = start if start is not None else lower_bound_distribution(graph)
    service = config.evaluator
    owns_service = service is None
    if service is None:
        service = EvaluationService(graph, observe, config=config.replaced(evaluator=None))
    stats = DependencyStats()
    evaluations: dict[StorageDistribution, Fraction] = {}
    first_reaching: StorageDistribution | None = None

    def reached(throughput: Fraction) -> bool:
        return (
            throughput > 0
            if stop_positive
            else stop_throughput is not None and throughput >= stop_throughput
        )

    order = graph.channel_names
    heap: list[tuple[int, tuple[int, ...], StorageDistribution]] = []
    queued: set[StorageDistribution] = set()

    def cost(distribution: StorageDistribution) -> int:
        return distribution.weighted_size(token_sizes)

    def push(distribution: StorageDistribution) -> None:
        if distribution in queued or distribution in evaluations:
            stats.duplicates_skipped += 1
            return
        if max_size is not None and cost(distribution) > max_size:
            return
        queued.add(distribution)
        heapq.heappush(
            heap, (cost(distribution), tuple(distribution[name] for name in order), distribution)
        )

    # Once some size S0 reaches the stop throughput, every Pareto
    # point has size <= S0 (the front cannot rise above the target),
    # so the exponential lattice beyond S0 need not be explored.
    ceiling: int | None = None
    interrupted: str | None = None
    pending: tuple[StorageDistribution, ...] = ()
    batch: list[StorageDistribution] = []
    batch_done = 0

    push(seed)
    try:
        while heap:
            size = heap[0][0]
            if ceiling is not None and size > ceiling:
                break
            # Every expansion strictly increases the cost, so all frontier
            # entries of the current cost are already queued: pop them as
            # one batch of independent probes.
            batch = []
            batch_done = 0
            while heap and heap[0][0] == size:
                batch.append(heapq.heappop(heap)[2])
            for distribution in batch:
                queued.discard(distribution)

            if service.workers > 1 and len(batch) > 1:
                if getattr(service, "speculate_enabled", False) and heap:
                    # The cheapest queued successors are very likely the
                    # next batch; let idle workers warm them while this
                    # batch occupies the demand path.
                    service.speculate(
                        entry[2]
                        for entry in heapq.nsmallest(4 * service.workers, heap)
                    )
                records = service.evaluate_blocking_many(batch, reached)
            else:
                records = None  # evaluate lazily, preserving serial early exits

            stop = False
            for position, distribution in enumerate(batch):
                batch_done = position
                record = (
                    records[position]
                    if records is not None
                    else service.evaluate_blocking(distribution, reached)
                )
                stats.evaluations += 1
                stats.max_states_stored = max(stats.max_states_stored, record.states_stored)
                evaluations[distribution] = record.throughput

                if reached(record.throughput):
                    if first_reaching is None:
                        first_reaching = distribution
                        if stop_at_first:
                            stop = True
                            break
                    if ceiling is None or size < ceiling:
                        ceiling = size
                        service.telemetry.emit(
                            "frontier_update",
                            size=size,
                            throughput=str(record.throughput),
                        )
                    continue
                for channel in record.space_blocked or ():
                    step = (record.space_deficits or {}).get(channel, 1)
                    stats.expansions += 1
                    successor = distribution.incremented(channel, step)
                    if ceiling is not None and cost(successor) > ceiling:
                        continue
                    push(successor)
            batch_done = len(batch)
            if stop:
                break
    except BudgetExhausted as exhausted:
        # Interruption is cooperative (between probes), so everything
        # recorded is exact; keep the unevaluated remainder of the
        # frontier for observability and return a partial result
        # instead of losing the work already paid for.
        interrupted = exhausted.reason
        pending = tuple(batch[batch_done:]) + tuple(
            entry for _, _, entry in sorted(heap)
        )
    finally:
        if owns_service:
            service.close()

    return DependencySweepResult(
        evaluations,
        stats,
        first_reaching,
        complete=interrupted is None,
        exhausted=interrupted,
        pending=pending,
    )


def find_minimal_distribution(
    graph: SDFGraph,
    constraint: Fraction,
    observe: str | None = None,
    *,
    max_size: int | None = None,
    token_sizes: Mapping[str, int] | None = None,
    config: ExplorationConfig | None = None,
    evaluator: object = UNSET,
    engine: object = UNSET,
) -> tuple[StorageDistribution, Fraction] | None:
    """Smallest distribution whose throughput meets *constraint*.

    Because the sweep pops distributions in size order and any minimal
    witness is reachable through strictly smaller, not-yet-satisfying
    distributions, the first popped distribution meeting the
    constraint has globally minimal size.  Returns ``None`` when the
    constraint is unachievable (above the graph's maximal throughput,
    or above *max_size*).  If a budget on *config* trips before a
    witness is popped, :class:`~repro.exceptions.BudgetExhausted`
    propagates — a plain ``None`` would be indistinguishable from
    "provably unachievable".
    """
    config = coerce_config(
        config, caller="find_minimal_distribution", evaluator=evaluator, engine=engine
    )
    # An unachievable constraint must be rejected up front: without a
    # reachable stop level the sweep's size ceiling never engages and
    # capacity growth would not terminate.
    from repro.analysis.throughput import max_throughput

    service = config.evaluator
    owns_service = service is None
    if service is None:
        service = EvaluationService(graph, observe, config=config.replaced(evaluator=None))
    try:
        if constraint > max_throughput(graph, observe, evaluator=service):
            return None
        result = dependency_sweep(
            graph,
            observe,
            stop_throughput=constraint,
            max_size=max_size,
            stop_at_first=True,
            token_sizes=token_sizes,
            config=ExplorationConfig(evaluator=service),
        )
    finally:
        if owns_service:
            service.close()
    witness = result.first_reaching_target
    if witness is None:
        if not result.complete:
            raise BudgetExhausted(
                "exploration budget exhausted before a minimal distribution"
                f" was found ({result.exhausted})",
                reason=result.exhausted or "budget",
            )
        return None
    return witness, result.evaluations[witness]
