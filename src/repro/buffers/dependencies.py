"""Storage-dependency-guided exploration.

This is the refinement the SDF3 implementation of the paper uses to
avoid enumerating every distribution of every size: starting from the
per-channel lower bounds, only channels whose *fullness actually
blocked an otherwise-enabled actor* during the execution are worth
enlarging — increasing any other channel leaves the (deterministic)
execution unchanged.  Moreover a blocked channel needs to grow by at
least its smallest observed capacity shortfall before any firing
decision can change.

Both facts make the following search exact:

* maintain a frontier of storage distributions ordered by size,
  seeded with the lower-bound distribution;
* evaluate each popped distribution with blocking tracking;
* for every space-blocking channel, enqueue the distribution enlarged
  by the channel's minimal deficit;
* stop expanding distributions that already reach the target
  throughput.

Exactness argument (the induction used in the tests): let ``gamma*``
be any distribution with higher throughput than an explored
``gamma <= gamma*`` (pointwise).  The two executions diverge at some
first instant, where an actor starts under ``gamma*`` but is blocked
under ``gamma`` purely by space on channels whose capacities differ.
For such a channel the observed deficit at that instant is at most
``gamma*[c] - gamma[c]``, so the enqueued increment stays pointwise
below ``gamma*`` — by induction some explored distribution dominates
no more than ``gamma*`` and reaches its throughput.  Hence every
Pareto point has a witness in the explored set.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction

from collections.abc import Mapping

from repro.buffers.bounds import lower_bound_distribution
from repro.buffers.distribution import StorageDistribution
from repro.buffers.evalcache import EvaluationService
from repro.graph.graph import SDFGraph


@dataclass
class DependencyStats:
    """Bookkeeping of one dependency-guided sweep."""

    evaluations: int = 0
    max_states_stored: int = 0
    expansions: int = 0
    duplicates_skipped: int = 0


@dataclass(frozen=True)
class DependencySweepResult:
    """All distributions evaluated by the sweep, with throughputs."""

    evaluations: dict[StorageDistribution, Fraction]
    stats: DependencyStats
    first_reaching_target: StorageDistribution | None = None


def dependency_sweep(
    graph: SDFGraph,
    observe: str | None = None,
    *,
    stop_throughput: Fraction | None = None,
    stop_positive: bool = False,
    max_size: int | None = None,
    start: StorageDistribution | None = None,
    stop_at_first: bool = False,
    token_sizes: Mapping[str, int] | None = None,
    evaluator: EvaluationService | None = None,
    engine: str = "auto",
) -> DependencySweepResult:
    """Explore the useful sub-lattice of storage distributions.

    Parameters
    ----------
    stop_throughput:
        Distributions reaching this throughput are recorded but not
        expanded (use the graph's maximal throughput for a full Pareto
        sweep, or a constraint for a minimal-distribution query).
        ``None`` means "expand until nothing blocks on space anymore".
    max_size:
        Optional hard cap on distribution sizes to consider.
    start:
        Alternative seed; defaults to the lower-bound distribution.
    stop_at_first:
        Return as soon as the first distribution reaching
        *stop_throughput* is popped (minimal-size witness queries).
    evaluator:
        Optional shared :class:`~repro.buffers.evalcache
        .EvaluationService`; a private serial one is created otherwise
        (with *engine*, which is ignored when *evaluator* is given —
        note the sweep's probes are blocking-aware, so they run on the
        reference executor under ``"auto"`` and ``engine="fast"``
        raises :class:`~repro.exceptions.EngineError`).
        With ``workers > 1`` the frontier entries of one size — which
        are all known before any of them is processed, because every
        expansion strictly grows the size — are evaluated as one
        parallel batch; the results are then folded in the exact heap
        order of the serial sweep, so the explored set, the recorded
        throughputs and the first witness are identical.

    A sweep without *stop_throughput* diverges on most graphs (a
    source actor that is merely *ahead* keeps hitting full channels at
    any capacity), so one of *stop_throughput* / *max_size* is
    required.
    """
    if stop_throughput is None and max_size is None and not stop_positive:
        from repro.exceptions import ExplorationError

        raise ExplorationError(
            "dependency_sweep needs a stop_throughput (usually the graph's maximal"
            " throughput) or a max_size; otherwise capacity growth never terminates"
        )
    seed = start if start is not None else lower_bound_distribution(graph)
    service = (
        evaluator
        if evaluator is not None
        else EvaluationService(graph, observe, engine=engine)
    )
    stats = DependencyStats()
    evaluations: dict[StorageDistribution, Fraction] = {}
    first_reaching: StorageDistribution | None = None

    def reached(throughput: Fraction) -> bool:
        return (
            throughput > 0
            if stop_positive
            else stop_throughput is not None and throughput >= stop_throughput
        )

    order = graph.channel_names
    heap: list[tuple[int, tuple[int, ...], StorageDistribution]] = []
    queued: set[StorageDistribution] = set()

    def cost(distribution: StorageDistribution) -> int:
        return distribution.weighted_size(token_sizes)

    def push(distribution: StorageDistribution) -> None:
        if distribution in queued or distribution in evaluations:
            stats.duplicates_skipped += 1
            return
        if max_size is not None and cost(distribution) > max_size:
            return
        queued.add(distribution)
        heapq.heappush(
            heap, (cost(distribution), tuple(distribution[name] for name in order), distribution)
        )

    # Once some size S0 reaches the stop throughput, every Pareto
    # point has size <= S0 (the front cannot rise above the target),
    # so the exponential lattice beyond S0 need not be explored.
    ceiling: int | None = None

    push(seed)
    while heap:
        size = heap[0][0]
        if ceiling is not None and size > ceiling:
            break
        # Every expansion strictly increases the cost, so all frontier
        # entries of the current cost are already queued: pop them as
        # one batch of independent probes.
        batch: list[StorageDistribution] = []
        while heap and heap[0][0] == size:
            batch.append(heapq.heappop(heap)[2])
        for distribution in batch:
            queued.discard(distribution)

        if service.workers > 1 and len(batch) > 1:
            records = service.evaluate_blocking_many(batch, reached)
        else:
            records = None  # evaluate lazily, preserving serial early exits

        stop = False
        for position, distribution in enumerate(batch):
            record = (
                records[position]
                if records is not None
                else service.evaluate_blocking(distribution, reached)
            )
            stats.evaluations += 1
            stats.max_states_stored = max(stats.max_states_stored, record.states_stored)
            evaluations[distribution] = record.throughput

            if reached(record.throughput):
                if first_reaching is None:
                    first_reaching = distribution
                    if stop_at_first:
                        stop = True
                        break
                if ceiling is None or size < ceiling:
                    ceiling = size
                continue
            for channel in record.space_blocked or ():
                step = (record.space_deficits or {}).get(channel, 1)
                stats.expansions += 1
                successor = distribution.incremented(channel, step)
                if ceiling is not None and cost(successor) > ceiling:
                    continue
                push(successor)
        if stop:
            break

    return DependencySweepResult(evaluations, stats, first_reaching)


def find_minimal_distribution(
    graph: SDFGraph,
    constraint: Fraction,
    observe: str | None = None,
    *,
    max_size: int | None = None,
    token_sizes: Mapping[str, int] | None = None,
    evaluator: EvaluationService | None = None,
    engine: str = "auto",
) -> tuple[StorageDistribution, Fraction] | None:
    """Smallest distribution whose throughput meets *constraint*.

    Because the sweep pops distributions in size order and any minimal
    witness is reachable through strictly smaller, not-yet-satisfying
    distributions, the first popped distribution meeting the
    constraint has globally minimal size.  Returns ``None`` when the
    constraint is unachievable (above the graph's maximal throughput,
    or above *max_size*).
    """
    # An unachievable constraint must be rejected up front: without a
    # reachable stop level the sweep's size ceiling never engages and
    # capacity growth would not terminate.
    from repro.analysis.throughput import max_throughput

    if constraint > max_throughput(graph, observe, evaluator=evaluator):
        return None
    result = dependency_sweep(
        graph,
        observe,
        stop_throughput=constraint,
        max_size=max_size,
        stop_at_first=True,
        token_sizes=token_sizes,
        evaluator=evaluator,
        engine=engine,
    )
    witness = result.first_reaching_target
    if witness is None:
        return None
    return witness, result.evaluations[witness]
