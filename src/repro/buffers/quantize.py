"""Throughput quantisation (Sec. 11).

The H.263 experiment of the paper produces a design space with very
many Pareto points whose throughputs are nearly identical; quantising
the throughputs searched "drastically improves the execution time of
the design-space exploration".  The helpers here snap throughput
values to a grid of the form ``k * quantum`` and thin a Pareto front
so that consecutive points differ by at least one quantum.
"""

from __future__ import annotations

from fractions import Fraction

from repro.buffers.pareto import ParetoFront, ParetoPoint
from repro.exceptions import ExplorationError


def quantize_down(value: Fraction, quantum: Fraction) -> Fraction:
    """Largest grid multiple of *quantum* not exceeding *value*."""
    if quantum <= 0:
        raise ExplorationError("quantum must be positive")
    return (value / quantum).__floor__() * quantum


def quantize_up(value: Fraction, quantum: Fraction) -> Fraction:
    """Smallest grid multiple of *quantum* not below *value*."""
    if quantum <= 0:
        raise ExplorationError("quantum must be positive")
    return (value / quantum).__ceil__() * quantum


def thin_front(front: ParetoFront, quantum: Fraction) -> ParetoFront:
    """Keep only the first (smallest) point of every quantum level.

    The result is still a valid Pareto front and contains, for every
    grid level ``k * quantum`` that the original front reaches, the
    cheapest distribution reaching it.
    """
    if quantum <= 0:
        raise ExplorationError("quantum must be positive")
    thinned = ParetoFront()
    level_seen: Fraction | None = None
    for point in front:
        level = quantize_down(point.throughput, quantum)
        if level_seen is None or level > level_seen:
            thinned._points.append(
                ParetoPoint(point.size, point.throughput, point.witnesses)
            )
            level_seen = level
    return thinned
