"""Hybrid storage models: channels grouped into memory banks (Sec. 3).

Between the paper's per-channel memories and the fully shared memory
of [MB00] lie hybrid forms ([GBS05]): channels are partitioned over
memory *banks* (one per processor tile, say), channels in a bank share
space, banks do not.  For a given storage distribution and its
deterministic schedule this module computes each bank's peak
occupancy — stored tokens plus output space claimed by running
firings — by replaying the recorded schedule.

Degenerate partitions recover the two pure models: one bank per
channel gives the per-channel capacities' peaks, a single bank gives
the shared-memory requirement of :mod:`repro.buffers.shared`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from collections.abc import Mapping

from repro.engine.executor import Executor
from repro.exceptions import ExplorationError
from repro.graph.graph import SDFGraph


@dataclass(frozen=True)
class BankReport:
    """Peak occupancies per memory bank for one distribution."""

    peaks: Mapping[str, int]
    throughput: Fraction

    @property
    def total(self) -> int:
        """Sum of the per-bank peaks (memory to provision overall)."""
        return sum(self.peaks.values())


def bank_peaks(
    graph: SDFGraph,
    capacities: Mapping[str, int],
    banks: Mapping[str, str],
    observe: str | None = None,
) -> BankReport:
    """Peak occupancy of every bank under *capacities*.

    *banks* maps each channel name to a bank label; every channel of
    the graph must be assigned.
    """
    missing = [name for name in graph.channel_names if name not in banks]
    if missing:
        raise ExplorationError(f"channels without a bank assignment: {missing}")
    unknown = [name for name in banks if name not in graph.channels]
    if unknown:
        raise ExplorationError(f"bank assignment for unknown channels: {unknown}")

    result = Executor(graph, capacities, observe, record_schedule=True).run()
    assert result.schedule is not None
    events = sorted(result.schedule.events, key=lambda event: event.start)

    tokens = {name: channel.initial_tokens for name, channel in graph.channels.items()}
    claims = {name: 0 for name in graph.channel_names}
    peaks: dict[str, int] = {}

    def measure() -> None:
        totals: dict[str, int] = {}
        for name in graph.channel_names:
            bank = banks[name]
            totals[bank] = totals.get(bank, 0) + tokens[name] + claims[name]
        for bank, value in totals.items():
            if value > peaks.get(bank, 0):
                peaks[bank] = value

    measure()
    times = sorted({event.start for event in events} | {event.end for event in events})
    for now in times:
        for event in events:
            if event.end == now and event.duration > 0:
                for channel in graph.incoming(event.actor):
                    tokens[channel.name] -= channel.consumption
                for channel in graph.outgoing(event.actor):
                    claims[channel.name] -= channel.production
                    tokens[channel.name] += channel.production
        for event in events:
            if event.start == now:
                if event.duration == 0:
                    for channel in graph.incoming(event.actor):
                        tokens[channel.name] -= channel.consumption
                    for channel in graph.outgoing(event.actor):
                        tokens[channel.name] += channel.production
                else:
                    for channel in graph.outgoing(event.actor):
                        claims[channel.name] += channel.production
        measure()

    return BankReport(peaks=peaks, throughput=result.throughput)
