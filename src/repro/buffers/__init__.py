"""Storage distributions and the storage/throughput design space.

This package is the paper's primary contribution:

* :mod:`repro.buffers.distribution` — storage distributions
  (Definitions 1-2),
* :mod:`repro.buffers.bounds` — per-channel and combined bounds on the
  meaningful design space (Sec. 8, Fig. 7),
* :mod:`repro.buffers.enumerate` — enumeration of the distributions of
  a given size inside the bound box,
* :mod:`repro.buffers.pareto` — Pareto points / minimal storage
  distributions,
* :mod:`repro.buffers.search` — the paper's exploration strategies:
  exhaustive size sweep and divide-and-conquer over the size dimension
  with (optionally quantised) binary search in the throughput
  dimension (Sec. 9),
* :mod:`repro.buffers.dependencies` — a storage-dependency-guided
  strategy (the refinement used by the SDF3 implementation of this
  work), exact and usually far cheaper,
* :mod:`repro.buffers.explorer` — the orchestrating public API.
"""

from repro.buffers.bounds import (
    channel_lower_bound,
    channel_upper_bound,
    lower_bound_distribution,
    upper_bound_distribution,
    verified_upper_bound_distribution,
)
from repro.buffers.distribution import StorageDistribution
from repro.buffers.explorer import (
    DesignSpaceResult,
    explore_design_space,
    maximal_throughput_point,
    minimal_distribution_for_throughput,
)
from repro.buffers.pareto import ParetoFront, ParetoPoint
from repro.buffers.shared import (
    SharedMemoryReport,
    compare_storage_models,
    shared_memory_requirement,
)

__all__ = [
    "DesignSpaceResult",
    "ParetoFront",
    "ParetoPoint",
    "SharedMemoryReport",
    "StorageDistribution",
    "compare_storage_models",
    "shared_memory_requirement",
    "channel_lower_bound",
    "channel_upper_bound",
    "explore_design_space",
    "lower_bound_distribution",
    "maximal_throughput_point",
    "minimal_distribution_for_throughput",
    "upper_bound_distribution",
    "verified_upper_bound_distribution",
]
