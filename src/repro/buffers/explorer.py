"""Public design-space exploration API (Secs. 8-9 of the paper).

:func:`explore_design_space` charts the complete Pareto space of
storage size vs. throughput for a consistent SDF graph, using one of
three strategies:

* ``"dependency"`` (default) — storage-dependency-guided sweep; exact
  and usually the cheapest by far;
* ``"divide"`` — the paper's divide-and-conquer over the size axis
  (optionally with quantised binary search in the throughput axis);
* ``"exhaustive"`` — plain scan of every size in the bound interval.

All strategies return the same Pareto front (a property-tested
invariant); they differ only in how much of the design space they must
evaluate.

Long runs are governed by the run controller of :mod:`repro.runtime`:
an :class:`~repro.runtime.config.ExplorationConfig` carries budgets,
checkpointing and telemetry, a tripped budget yields a *partial*
:class:`DesignSpaceResult` (``complete=False``) with a resume token,
and ``resume=`` continues a previous run by deterministic replay over
its exact memo cache — provably reaching the identical front an
uninterrupted run would have produced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from fractions import Fraction
from collections.abc import Mapping

from repro.analysis.consistency import assert_consistent
from repro.buffers.bounds import lower_bound_distribution, upper_bound_distribution
from repro.buffers.dependencies import dependency_sweep, find_minimal_distribution
from repro.buffers.distribution import StorageDistribution
from repro.buffers.enumerate import count_distributions_of_size
from repro.buffers.evalcache import EvaluationService
from repro.buffers.pareto import ParetoFront, ParetoPoint
from repro.buffers.quantize import thin_front
from repro.buffers.search import SizeProbe, divide_and_conquer, exhaustive_sweep
from repro.exceptions import BudgetExhausted, ExplorationError, ParseError
from repro.graph.graph import SDFGraph
from repro.runtime.checkpoint import (
    ResumeToken,
    build_token,
    coerce_resume,
    restore_service,
    save_checkpoint,
)
from repro.runtime.config import UNSET, ExplorationConfig, coerce_config

_STRATEGIES = ("dependency", "divide", "exhaustive")

#: Version stamped into every serialised :class:`DesignSpaceResult`
#: (``io/frontjson`` documents, ``--output-json``, service job
#: payloads).  Readers reject any other version explicitly instead of
#: failing on whatever key happens to be missing.
RESULT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ExplorationStats:
    """Cost metrics of one design-space exploration."""

    strategy: str
    evaluations: int
    max_states_stored: int
    wall_time_s: float
    sizes_probed: int = 0
    search_space: int | None = None
    cache_hits: int = 0
    prunes: int = 0
    workers: int = 1
    parallel_batches: int = 0
    pool_restarts: int = 0
    pool_fallback_reason: str | None = None
    bounds_exact: int = 0
    bounds_cut: int = 0
    speculative_issued: int = 0
    speculative_useful: int = 0
    speculative_wasted: int = 0
    backend: str | None = None
    batch_calls: int = 0
    batch_lanes: int = 0

    def to_dict(self) -> dict:
        """All counters as a JSON-ready dict."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExplorationStats":
        """Inverse of :meth:`to_dict` (unknown keys ignored)."""
        known = {field.name for field in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


@dataclass(frozen=True)
class DesignSpaceResult:
    """Outcome of :func:`explore_design_space`.

    ``front`` holds the Pareto points (minimal storage
    distributions); ``lower_bounds`` / ``upper_bounds`` the Fig. 7 box
    that delimited the search; ``max_throughput`` the maximal
    achievable throughput of the graph.

    ``complete`` is ``False`` when a budget or cancellation interrupted
    the run; ``exhausted`` then names the tripped limit
    (``"deadline"``, ``"probes"`` or ``"cancelled"``), ``front`` is the
    exact Pareto front *of everything evaluated so far* (every point is
    a true evaluation; none dominates another), and ``resume_token``
    continues the run — pass it (or a checkpoint file written from it)
    as ``resume=`` to :func:`explore_design_space`.
    """

    graph_name: str
    observe: str
    front: ParetoFront
    stats: ExplorationStats
    lower_bounds: StorageDistribution
    upper_bounds: StorageDistribution
    max_throughput: Fraction
    complete: bool = True
    exhausted: str | None = None
    resume_token: ResumeToken | None = None
    telemetry: Mapping | None = None

    def to_dict(self) -> dict:
        """JSON-ready rendering — the one schema shared with
        ``io/frontjson``, checkpoints and the CLI's ``--output-json``.

        The resume token and telemetry snapshot are *not* embedded
        (checkpoints have their own file; telemetry its own flag).
        """
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "graph": self.graph_name,
            "observe": self.observe,
            "complete": self.complete,
            "exhausted": self.exhausted,
            "max_throughput": str(self.max_throughput),
            "lower_bounds": dict(self.lower_bounds),
            "upper_bounds": dict(self.upper_bounds),
            "pareto_front": self.front.to_dicts(),
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "DesignSpaceResult":
        """Inverse of :meth:`to_dict`.

        Documents without a ``"schema"`` field (written before the
        field existed) are read as version 1; any other version is
        rejected with a :class:`~repro.exceptions.ParseError`.
        """
        version = data.get("schema", RESULT_SCHEMA_VERSION)
        if version != RESULT_SCHEMA_VERSION:
            raise ParseError(
                f"unsupported result schema version {version!r}; this build"
                f" reads version {RESULT_SCHEMA_VERSION}"
            )
        return cls(
            graph_name=data["graph"],
            observe=data["observe"],
            front=ParetoFront.from_dicts(data["pareto_front"]),
            stats=ExplorationStats.from_dict(data["stats"]),
            lower_bounds=StorageDistribution(
                {name: int(cap) for name, cap in data["lower_bounds"].items()}
            ),
            upper_bounds=StorageDistribution(
                {name: int(cap) for name, cap in data["upper_bounds"].items()}
            ),
            max_throughput=Fraction(data["max_throughput"]),
            complete=bool(data.get("complete", True)),
            exhausted=data.get("exhausted"),
        )

    def summary(self) -> str:
        """Short human-readable report."""
        lines = [
            f"design space of {self.graph_name!r} (observing {self.observe!r})",
            f"  size bounds: [{self.lower_bounds.size}, {self.upper_bounds.size}]",
            f"  maximal throughput: {self.max_throughput}",
            f"  Pareto points: {len(self.front)}",
        ]
        for point in self.front:
            lines.append(f"    {point}")
        lines.append(
            f"  cost: {self.stats.evaluations} evaluations,"
            f" max {self.stats.max_states_stored} states,"
            f" {self.stats.wall_time_s:.3f}s ({self.stats.strategy})"
        )
        lines.append(
            f"  cache: {self.stats.cache_hits} hits, {self.stats.prunes} prunes,"
            f" {self.stats.workers} worker(s),"
            f" {self.stats.parallel_batches} parallel batches"
        )
        if self.stats.bounds_exact or self.stats.bounds_cut:
            lines.append(
                f"  bounds oracle: {self.stats.bounds_exact} exact answers,"
                f" {self.stats.bounds_cut} probes cut"
            )
        if self.stats.speculative_issued:
            lines.append(
                f"  speculation: {self.stats.speculative_issued} issued,"
                f" {self.stats.speculative_useful} useful,"
                f" {self.stats.speculative_wasted} wasted"
            )
        if self.stats.batch_calls:
            occupancy = self.stats.batch_lanes / self.stats.batch_calls
            lines.append(
                f"  batching: {self.stats.batch_calls} waves,"
                f" {self.stats.batch_lanes} lanes"
                f" ({occupancy:.1f} mean occupancy,"
                f" backend {self.stats.backend or 'default'})"
            )
        if not self.complete:
            lines.append(
                f"  INCOMPLETE: budget exhausted ({self.exhausted});"
                " resume from the checkpoint / resume token to continue"
            )
        if self.stats.pool_fallback_reason:
            lines.append(
                f"  worker pool degraded to inline: {self.stats.pool_fallback_reason}"
            )
        return "\n".join(lines)


def explore_design_space(
    graph: SDFGraph,
    observe: str | None = None,
    *,
    strategy: str = "dependency",
    quantum: Fraction | None = None,
    max_size: int | None = None,
    throughput_bounds: tuple[Fraction | None, Fraction | None] | None = None,
    token_sizes: Mapping[str, int] | None = None,
    count_search_space: bool = False,
    collect_all_witnesses: bool = False,
    config: ExplorationConfig | None = None,
    resume: "ResumeToken | Mapping | str | None" = None,
    workers: object = UNSET,
    cache: object = UNSET,
    engine: object = UNSET,
    evaluator: object = UNSET,
) -> DesignSpaceResult:
    """Chart the full storage/throughput Pareto space of *graph*.

    Parameters
    ----------
    observe:
        Actor whose throughput defines the vertical axis; defaults to
        the last actor.
    strategy:
        ``"dependency"``, ``"divide"`` or ``"exhaustive"``.
    quantum:
        Optional throughput quantisation (the paper's H.263 trick):
        with the ``"divide"`` strategy the binary search probes only
        grid multiples, and for every strategy the resulting front is
        thinned to one point per reached grid level.
    max_size:
        Restrict the exploration to distributions of at most this
        size (partial Pareto space, as supported by the paper's tool).
    throughput_bounds:
        Optional ``(low, high)`` throughput window (either end may be
        ``None``), the second partial-space control of the paper's
        tool.  Points below ``low`` are dropped; the search stops once
        ``high`` is reached, and the front keeps the cheapest point at
        or above it.
    token_sizes:
        Optional per-channel token weights: the size axis becomes the
        weighted memory cost ``sum(capacity * weight)`` (weights
        default to 1, so tokens of different widths are accounted
        correctly).  Supported by the ``"dependency"`` strategy only;
        ``max_size`` is then a weighted cap.
    count_search_space:
        Also compute how many distributions lie in the bound box (the
        paper's complexity discussion); needs only a cheap dynamic
        program but is off by default.
    collect_all_witnesses:
        Only meaningful with the ``"exhaustive"`` strategy: scan every
        size to completion so that Pareto points list *every* tied
        minimal distribution (the paper's Fig. 6 non-uniqueness); by
        default scans stop as soon as the maximal throughput is found.
    config:
        The run's :class:`~repro.runtime.config.ExplorationConfig` —
        engine, workers, cache, a shared evaluator, budgets, a
        checkpoint path and the telemetry callback.  A tripped budget
        returns a partial result (``complete=False`` + resume token)
        instead of raising; with ``config.checkpoint`` set, the
        checkpoint JSON is (re)written at the end of every run.
    resume:
        A :class:`~repro.runtime.checkpoint.ResumeToken`, checkpoint
        payload mapping or checkpoint file path from a previous run of
        the *same graph*.  The banked memo cache is restored and the
        strategy replayed over it deterministically, which provably
        yields the identical front an uninterrupted run produces.
    workers / cache / engine / evaluator:
        Removed legacy aliases: passing any of them raises
        :class:`~repro.exceptions.ConfigError` naming the migration.
    """
    assert_consistent(graph)
    config = coerce_config(
        config,
        caller="explore_design_space",
        workers=workers,
        cache=cache,
        engine=engine,
        evaluator=evaluator,
    )
    if strategy not in _STRATEGIES:
        raise ExplorationError(f"unknown strategy {strategy!r}; pick one of {_STRATEGIES}")
    if token_sizes is not None and strategy != "dependency":
        raise ExplorationError("token_sizes are supported by the 'dependency' strategy only")
    if token_sizes is not None and any(weight < 1 for weight in token_sizes.values()):
        raise ExplorationError("token sizes must be positive")
    if observe is None:
        observe = graph.actor_names[-1]

    lower = lower_bound_distribution(graph)
    upper = upper_bound_distribution(graph)
    started = time.perf_counter()

    owns_service = config.evaluator is None
    service = (
        config.evaluator
        if config.evaluator is not None
        else EvaluationService(graph, observe, config=config.replaced(evaluator=None))
    )
    service.telemetry.emit(
        "run_start", graph=graph.name, observe=observe, strategy=strategy
    )
    if resume is not None:
        restore_service(coerce_resume(resume), service)

    complete = True
    exhausted: str | None = None
    max_thr: Fraction | None = None
    front: ParetoFront | None = None
    sizes_probed = 0
    pending: tuple[StorageDistribution, ...] = ()
    low_bound: Fraction | None = None
    high_bound: Fraction | None = None
    try:
        # Sec. 9 takes the throughput at the [GGD02] upper bound as the
        # maximal achievable throughput of the graph.  That bound can
        # fall short on some graphs (see buffers.bounds), so the
        # maximum is computed independently and the bound box is
        # enlarged until it provably contains a maximal-throughput
        # distribution.
        from repro.analysis.throughput import max_throughput as _max_throughput

        try:
            max_thr = _max_throughput(graph, observe, evaluator=service)
            service.set_ceiling(max_thr)
            low_bound, high_bound = (
                throughput_bounds if throughput_bounds is not None else (None, None)
            )
            if low_bound is not None and high_bound is not None and low_bound > high_bound:
                raise ExplorationError("throughput_bounds: low exceeds high")
            stop_thr = max_thr if high_bound is None else min(max_thr, high_bound)
            while service(upper) < stop_thr:
                upper = upper.scaled(2)

            size_cap = max_size if max_size is not None else upper.weighted_size(token_sizes)

            if strategy == "dependency":
                sweep = dependency_sweep(
                    graph,
                    observe,
                    stop_throughput=stop_thr,
                    max_size=size_cap,
                    token_sizes=token_sizes,
                    config=ExplorationConfig(evaluator=service),
                )
                front = ParetoFront.from_evaluations(sweep.evaluations, token_sizes)
                sizes_probed = len({d.size for d in sweep.evaluations})
                if not sweep.complete:
                    complete = False
                    exhausted = sweep.exhausted
                    pending = sweep.pending
            else:
                bounded_upper = _cap_box(lower, upper, size_cap)
                if strategy == "exhaustive":
                    probes, _ = exhaustive_sweep(
                        graph,
                        observe,
                        lower,
                        bounded_upper,
                        stop_thr,
                        service,
                        stop_early=not collect_all_witnesses,
                    )
                else:
                    probes, _ = divide_and_conquer(
                        graph, observe, lower, bounded_upper, stop_thr, service, quantum=quantum
                    )
                front = _front_from_probes(probes)
                sizes_probed = service.stats.sizes_probed
        except BudgetExhausted as stop:
            # The budget tripped outside the dependency sweep (setup
            # probes, or the divide/exhaustive strategies, which share
            # probe bookkeeping only through the service).  Everything
            # executed so far sits in the exact memo cache — its Pareto
            # front is the partial answer.
            complete = False
            exhausted = stop.reason
            front = ParetoFront.from_evaluations(service.evaluations, token_sizes)
            sizes_probed = len({d.size for d in service.evaluations})
        if max_thr is None:
            max_thr = max(service.evaluations.values(), default=Fraction(0))

        if front is None:  # pragma: no cover - defensive; both branches set it
            front = ParetoFront.from_evaluations(service.evaluations, token_sizes)
        if max_size is not None:
            front = _restrict_front(front, max_size)
        if throughput_bounds is not None:
            front = _window_front(front, low_bound, high_bound)
        if quantum is not None:
            front = thin_front(front, quantum)

        resume_token: ResumeToken | None = None
        if not complete or config.checkpoint is not None:
            resume_token = build_token(
                service,
                graph_name=graph.name,
                observe=observe,
                strategy=strategy,
                complete=complete,
                exhausted=exhausted,
                front=front,
                pending=pending,
            )
            if config.checkpoint is not None:
                path = save_checkpoint(resume_token, config.checkpoint)
                service.telemetry.emit(
                    "checkpoint_saved",
                    path=str(path),
                    complete=complete,
                    probes_banked=resume_token.probes_recorded,
                )

        search_space = None
        if count_search_space:
            search_space = sum(
                count_distributions_of_size(graph.channel_names, size, lower, upper)
                for size in range(lower.size, upper.size + 1)
            )

        service.telemetry.emit(
            "run_finish",
            complete=complete,
            exhausted=exhausted,
            pareto_points=len(front),
            evaluations=service.stats.evaluations,
        )
        stats = ExplorationStats(
            strategy=strategy,
            evaluations=service.stats.evaluations,
            max_states_stored=service.stats.max_states_stored,
            wall_time_s=time.perf_counter() - started,
            sizes_probed=sizes_probed,
            search_space=search_space,
            cache_hits=service.stats.cache_hits,
            prunes=service.stats.prunes,
            workers=service.workers,
            parallel_batches=service.stats.parallel_batches,
            pool_restarts=service.stats.pool_restarts,
            pool_fallback_reason=service.stats.pool_fallback_reason,
            bounds_exact=service.stats.bounds_exact,
            bounds_cut=service.stats.bounds_cut,
            speculative_issued=service.stats.speculative_issued,
            speculative_useful=service.stats.speculative_useful,
            speculative_wasted=service.stats.speculative_wasted,
            backend=service.backend_name,
            batch_calls=service.stats.batch_calls,
            batch_lanes=service.stats.batch_lanes,
        )
        return DesignSpaceResult(
            graph_name=graph.name,
            observe=observe,
            front=front,
            stats=stats,
            lower_bounds=lower,
            upper_bounds=upper,
            max_throughput=max_thr,
            complete=complete,
            exhausted=exhausted,
            resume_token=resume_token if not complete else None,
            telemetry=service.telemetry.snapshot(),
        )
    finally:
        if owns_service:
            service.close()


def minimal_distribution_for_throughput(
    graph: SDFGraph,
    constraint: Fraction,
    observe: str | None = None,
    token_sizes: Mapping[str, int] | None = None,
    *,
    config: ExplorationConfig | None = None,
    engine: object = UNSET,
) -> ParetoPoint | None:
    """Smallest storage distribution meeting a throughput constraint.

    This is the headline query of the paper: the exact minimal storage
    space needed to execute the graph at a required throughput.
    Returns ``None`` when the constraint exceeds the graph's maximal
    throughput.  Run control (engine, workers, budgets, telemetry)
    comes from *config*; the removed legacy ``engine=`` keyword
    raises :class:`~repro.exceptions.ConfigError`.
    """
    assert_consistent(graph)
    config = coerce_config(
        config, caller="minimal_distribution_for_throughput", engine=engine
    )
    if constraint <= 0:
        raise ExplorationError("the throughput constraint must be positive")
    found = find_minimal_distribution(
        graph, constraint, observe, token_sizes=token_sizes, config=config
    )
    if found is None:
        return None
    distribution, value = found
    return ParetoPoint(distribution.weighted_size(token_sizes), value, (distribution,))


def maximal_throughput_point(graph: SDFGraph, observe: str | None = None) -> ParetoPoint:
    """The Pareto point realising the graph's maximal throughput."""
    result = explore_design_space(graph, observe)
    point = result.front.max_throughput_point
    if point is None:
        raise ExplorationError(
            f"graph {graph.name!r} deadlocks under every storage distribution"
        )
    return point


def _front_from_probes(probes: dict[int, SizeProbe]) -> ParetoFront:
    evaluations: dict[StorageDistribution, Fraction] = {}
    for size_probe in probes.values():
        for witness in size_probe.witnesses:
            evaluations[witness] = size_probe.throughput
    return ParetoFront.from_evaluations(evaluations)


def _cap_box(
    lower: StorageDistribution, upper: StorageDistribution, size_cap: int
) -> StorageDistribution:
    """Clip per-channel upper bounds so no distribution exceeds *size_cap*."""
    capped = {}
    for name in upper:
        headroom = size_cap - (lower.size - lower[name])
        capped[name] = max(lower[name], min(upper[name], headroom))
    return StorageDistribution(capped)


def _restrict_front(front: ParetoFront, max_size: int) -> ParetoFront:
    return front.filtered(lambda point: point.size <= max_size)


def _window_front(
    front: ParetoFront, low: Fraction | None, high: Fraction | None
) -> ParetoFront:
    """Clip the front to a throughput window.

    Points below *low* are discarded; points from *high* upwards are
    reduced to the single cheapest one (the search stopped there, so
    no larger point exists anyway).
    """
    kept = []
    for point in front:
        if low is not None and point.throughput < low:
            continue
        kept.append(point)
        if high is not None and point.throughput >= high:
            break
    return ParetoFront.from_points(kept)
