"""Enumeration of storage distributions of a given size.

The paper's throughput-dimension search must scan "all possible
storage distributions of the given size" (Sec. 9) within the
per-channel bound box of Fig. 7.  This module generates exactly those:
integer vectors ``gamma`` with ``lower[c] <= gamma[c] <= upper[c]``
summing to the requested size.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

from repro.buffers.distribution import StorageDistribution
from repro.exceptions import ExplorationError


def distributions_of_size(
    channels: Sequence[str],
    size: int,
    lower: Mapping[str, int],
    upper: Mapping[str, int],
) -> Iterator[StorageDistribution]:
    """Yield every distribution of total *size* inside the bound box.

    The iteration order assigns surplus tokens to the earlier channels
    first, which tends to enlarge the channels closest to the graph's
    sources early — a helpful heuristic when a threshold scan may stop
    at the first distribution meeting a throughput target.
    """
    lowers = [lower[name] for name in channels]
    uppers = [upper[name] for name in channels]
    for name, low, high in zip(channels, lowers, uppers):
        if low > high:
            raise ExplorationError(f"channel {name!r}: lower bound {low} exceeds upper bound {high}")

    def rec(index: int, remaining: int) -> Iterator[list[int]]:
        if index == len(channels) - 1:
            if lowers[index] <= remaining <= uppers[index]:
                yield [remaining]
            return
        tail_low = sum(lowers[index + 1 :])
        tail_high = sum(uppers[index + 1 :])
        start = max(lowers[index], remaining - tail_high)
        stop = min(uppers[index], remaining - tail_low)
        for value in range(stop, start - 1, -1):
            for rest in rec(index + 1, remaining - value):
                yield [value] + rest

    if not channels:
        if size == 0:
            yield StorageDistribution({})
        return
    for vector in rec(0, size):
        yield StorageDistribution(dict(zip(channels, vector)))


def count_distributions_of_size(
    channels: Sequence[str],
    size: int,
    lower: Mapping[str, int],
    upper: Mapping[str, int],
) -> int:
    """Number of distributions :func:`distributions_of_size` would yield.

    Computed with a dynamic program over channels, so it is cheap even
    when the enumeration itself would be astronomically large — used to
    report the search-space size of the paper's complexity discussion.
    """
    counts = {0: 1}
    for name in channels:
        low, high = lower[name], upper[name]
        if low > high:
            raise ExplorationError(f"channel {name!r}: lower bound {low} exceeds upper bound {high}")
        updated: dict[int, int] = {}
        for total, ways in counts.items():
            for value in range(low, high + 1):
                if total + value > size:
                    break
                key = total + value
                updated[key] = updated.get(key, 0) + ways
        counts = updated
    return counts.get(size, 0)
