"""Storage distributions (Definitions 1 and 2 of the paper).

A storage distribution assigns every channel of an SDF graph a
capacity in tokens; its *size* is the sum of the capacities.  The
class is an immutable mapping so distributions can serve as dictionary
keys during exploration.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.buffers.shared import dominates
from repro.exceptions import CapacityError
from repro.graph.graph import SDFGraph


class StorageDistribution(Mapping[str, int]):
    """An immutable ``{channel name: capacity}`` mapping."""

    __slots__ = ("_capacities", "_hash")

    def __init__(self, capacities: Mapping[str, int]):
        items = {}
        for name, capacity in capacities.items():
            if not isinstance(capacity, int) or isinstance(capacity, bool):
                raise CapacityError(f"channel {name!r}: capacity must be an int")
            if capacity < 0:
                raise CapacityError(f"channel {name!r}: capacity must be >= 0, got {capacity}")
            items[name] = capacity
        self._capacities: dict[str, int] = items
        self._hash: int | None = None

    @classmethod
    def uniform(cls, graph: SDFGraph, capacity: int) -> "StorageDistribution":
        """The distribution giving every channel of *graph* *capacity*."""
        return cls({name: capacity for name in graph.channel_names})

    # -- Mapping interface ---------------------------------------------
    def __getitem__(self, name: str) -> int:
        return self._capacities[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._capacities)

    def __len__(self) -> int:
        return len(self._capacities)

    # -- Value semantics -----------------------------------------------
    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._capacities.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StorageDistribution):
            return self._capacities == other._capacities
        if isinstance(other, Mapping):
            return self._capacities == dict(other)
        return NotImplemented

    # -- Paper definitions ----------------------------------------------
    @property
    def size(self) -> int:
        """Definition 2: the distribution size ``sz`` (total tokens)."""
        return sum(self._capacities.values())

    def weighted_size(self, token_sizes: Mapping[str, int] | None) -> int:
        """Distribution size with per-channel token weights.

        Real channels carry tokens of different widths (a frame vs a
        coefficient); with *token_sizes* mapping channels to a weight
        (default 1), the memory cost is ``sum(capacity * weight)``.
        """
        if token_sizes is None:
            return self.size
        return sum(
            capacity * token_sizes.get(name, 1) for name, capacity in self._capacities.items()
        )

    def dominates(self, other: "StorageDistribution") -> bool:
        """Pointwise ``>=`` on a common channel set."""
        if set(self) != set(other):
            raise CapacityError("distributions cover different channel sets")
        names = list(self)
        return dominates([self[name] for name in names], [other[name] for name in names])

    # -- Exploration helpers ---------------------------------------------
    def with_capacity(self, name: str, capacity: int) -> "StorageDistribution":
        """A copy with channel *name* set to *capacity*."""
        if name not in self._capacities:
            raise CapacityError(f"unknown channel {name!r}")
        updated = dict(self._capacities)
        updated[name] = capacity
        return StorageDistribution(updated)

    def incremented(self, name: str, step: int = 1) -> "StorageDistribution":
        """A copy with channel *name* increased by *step* tokens."""
        return self.with_capacity(name, self[name] + step)

    def scaled(self, factor: int) -> "StorageDistribution":
        """A copy with every capacity multiplied by *factor*."""
        return StorageDistribution({name: capacity * factor for name, capacity in self.items()})

    def merged_max(self, other: "StorageDistribution") -> "StorageDistribution":
        """Pointwise maximum of two distributions."""
        if set(self) != set(other):
            raise CapacityError("distributions cover different channel sets")
        return StorageDistribution({name: max(self[name], other[name]) for name in self})

    def vector(self, graph: SDFGraph) -> tuple[int, ...]:
        """Capacities ordered by *graph*'s channel order."""
        return tuple(self[name] for name in graph.channel_names)

    def __str__(self) -> str:
        inner = ", ".join(f"{name}: {capacity}" for name, capacity in self._capacities.items())
        return "(" + inner + ")"

    def __repr__(self) -> str:
        return f"StorageDistribution({self._capacities!r})"
