"""Interpretability: which channels pin each Pareto point.

At a Pareto point the witness distribution cannot shrink without
losing throughput; the channels that actually *block* firings during
its schedule (the storage dependencies of the dependency-guided
strategy) are the ones a designer would enlarge to move right along
the front, and the token-blocked channels indicate where the graph is
compute- rather than storage-limited.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.buffers.pareto import ParetoFront, ParetoPoint
from repro.engine.executor import Executor
from repro.graph.graph import SDFGraph
from repro.reporting.tables import render_table


@dataclass(frozen=True)
class PointExplanation:
    """Blocking analysis of one Pareto point's witness schedule."""

    point: ParetoPoint
    space_blocked: frozenset[str]
    token_blocked: frozenset[str]
    deficits: dict[str, int]

    @property
    def storage_limited(self) -> bool:
        """Whether enlarging some channel could still raise throughput."""
        return bool(self.space_blocked)


def explain_front(
    graph: SDFGraph, front: ParetoFront, observe: str | None = None
) -> list[PointExplanation]:
    """Blocking analysis for every point of *front*."""
    explanations = []
    for point in front:
        result = Executor(graph, point.distribution, observe, track_blocking=True).run()
        explanations.append(
            PointExplanation(
                point=point,
                space_blocked=result.space_blocked,
                token_blocked=result.token_blocked,
                deficits=dict(result.space_deficits),
            )
        )
    return explanations


def render_explanations(explanations: list[PointExplanation]) -> str:
    """Aligned text table of the blocking analysis."""
    rows = [["size", "throughput", "space-blocked (deficit)", "token-blocked"]]
    for explanation in explanations:
        blocked = ", ".join(
            f"{name} (+{explanation.deficits.get(name, '?')})"
            for name in sorted(explanation.space_blocked)
        )
        starving = ", ".join(sorted(explanation.token_blocked))
        rows.append(
            [
                str(explanation.point.size),
                str(explanation.point.throughput),
                blocked or "-",
                starving or "-",
            ]
        )
    return render_table(rows)
