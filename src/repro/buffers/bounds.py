"""Bounds on the meaningful storage design space (Sec. 8, Fig. 7).

* Per-channel **lower bound** [ALP97, Mur96]: the smallest capacity of
  a channel with production rate ``p``, consumption rate ``c`` and
  ``d`` initial tokens for which the producer/consumer pair alone can
  sustain a positive throughput is

      max(d,  p + c - gcd(p, c) + d mod gcd(p, c)).

  Any distribution giving some channel less capacity deadlocks, so the
  exploration may restrict each channel to at least this value.  The
  bound is derived for the classical storage semantics and therefore
  *sound but not necessarily tight* under the paper's conservative
  claim-at-start model (e.g. a one-token rate-1 self-loop needs
  capacity 2 here); soundness is what the exploration requires.

* Per-channel **upper bound** [GGD02]: capacity

      d + p * q[src] + c * q[dst]

  (one full iteration of slack on both sides) is conservatively enough
  for the channel never to throttle the maximal throughput; the test
  suite cross-validates this against the MCM-based maximal throughput.

* The **combined** bounds — the sums over all channels — delimit the
  distribution-size axis of the design space that must be searched.
"""

from __future__ import annotations

from math import gcd

from repro.analysis.repetitions import repetition_vector
from repro.buffers.distribution import StorageDistribution
from repro.graph.channel import Channel
from repro.graph.graph import SDFGraph


def channel_lower_bound(channel: Channel) -> int:
    """Smallest capacity of *channel* compatible with positive throughput."""
    divisor = gcd(channel.production, channel.consumption)
    base = channel.production + channel.consumption - divisor + channel.initial_tokens % divisor
    return max(channel.initial_tokens, base)


def channel_upper_bound(channel: Channel, repetitions: dict[str, int] | None = None, graph: SDFGraph | None = None) -> int:
    """Capacity beyond which *channel* cannot limit the throughput.

    Either *repetitions* (the repetition vector) or *graph* must be
    supplied so the iteration counts of the endpoints are known.
    """
    if repetitions is None:
        if graph is None:
            raise ValueError("channel_upper_bound needs the repetition vector or the graph")
        repetitions = repetition_vector(graph)
    return (
        channel.initial_tokens
        + channel.production * repetitions[channel.source]
        + channel.consumption * repetitions[channel.destination]
    )


def lower_bound_distribution(graph: SDFGraph) -> StorageDistribution:
    """Per-channel lower bounds as a distribution (``lb`` of Fig. 7)."""
    return StorageDistribution(
        {channel.name: channel_lower_bound(channel) for channel in graph.channels.values()}
    )


def upper_bound_distribution(graph: SDFGraph) -> StorageDistribution:
    """Per-channel upper bounds as a distribution (``ub`` of Fig. 7)."""
    repetitions = repetition_vector(graph)
    return StorageDistribution(
        {
            channel.name: channel_upper_bound(channel, repetitions)
            for channel in graph.channels.values()
        }
    )


def size_bounds(graph: SDFGraph) -> tuple[int, int]:
    """The ``(lb, ub)`` interval of meaningful distribution sizes."""
    return lower_bound_distribution(graph).size, upper_bound_distribution(graph).size


def verified_upper_bound_distribution(
    graph: SDFGraph, observe: str | None = None
) -> StorageDistribution:
    """An upper-bound distribution *proven* to reach the maximal throughput.

    The one-iteration-per-side bound of :func:`upper_bound_distribution`
    reaches the graph's maximal throughput on most graphs, but phase
    effects can make it fall short (a property-test counterexample
    lives in the test suite).  This variant doubles the bound until the
    executed throughput matches the exact maximal throughput computed
    independently, so the returned distribution is a sound right edge
    for the design space of Fig. 7.
    """
    from repro.analysis.throughput import max_throughput
    from repro.engine.executor import Executor

    target = max_throughput(graph, observe)
    candidate = upper_bound_distribution(graph)
    while Executor(graph, candidate, observe).run().throughput < target:
        candidate = candidate.scaled(2)
    return candidate
