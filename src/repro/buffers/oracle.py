"""Monotone throughput-bounds oracle over the dominance lattice.

Throughput is monotone non-decreasing under component-wise capacity
increase (Sec. 9 of the paper), so every recorded probe brackets an
entire dominance cone: a record ``(w, thr(w))`` proves

* ``thr(d) >= thr(w)`` for every query ``d >= w`` (a *floor* witness),
* ``thr(d) <= thr(w)`` for every query ``d <= w`` (a *ceiling*
  witness).

:class:`ThroughputBoundsOracle` indexes every observed evaluation
twice:

* an exact map ``vector -> throughput`` over *all* records.  Besides
  answering repeat queries for free, it makes the distance-1 cone
  checks constant-time: for a query ``d``, the strongest bounds
  available from the adjacent size slices come from the one-token
  neighbours ``d ± e_i`` — if any deeper record ``w >= d + e_i`` were
  recorded, monotonicity gives ``thr(d + e_i) <= thr(w)`` whenever the
  neighbour is recorded too, so looking the neighbours up directly
  captures those bounds in ``O(channels)`` hash probes.
* two level structures keyed by throughput value, covering records
  more than one slice away:

  - ``floor`` levels — per throughput ``t``, the *minimal* antichain
    of recorded vectors achieving ``t``.  The greatest level owning a
    witness at or below a query is the query's lower bound ``lo(d)``.
  - ``ceil`` levels — per throughput ``t``, the *maximal* antichain of
    recorded vectors achieving ``t``.  The smallest level owning a
    witness at or above the query, capped by the graph-wide throughput
    ceiling, is the upper bound ``hi(d)``.

Real explorations collapse thousands of records into very few distinct
throughput levels, so the level scans are short; the antichains bound
the per-level work.  A closed interval (``lo == hi``) is an exact,
free answer; an open one still cuts search branches: a scan looking
for something better than ``best`` can skip every candidate with
``hi < best`` without simulating (see
:meth:`ThroughputBoundsOracle.upper_below`).  Both uses are exact —
bounds derived from exact records via monotonicity never misclassify —
so fronts and witnesses are bit-identical with the oracle on or off.

The deadlock cover and the ceiling squeeze of
:class:`~repro.buffers.evalcache.EvaluationService` are the two extreme
levels of this structure (``ceil`` level 0 and ``floor`` level
``ceiling``); the service keeps them available even when interval
queries are disabled.  Those two point queries stay purely
antichain-based so their answers (and the service's prune counters)
do not depend on whether interval queries are enabled.
"""

from __future__ import annotations

from bisect import insort
from fractions import Fraction

from repro.buffers.shared import DominanceFront, grown_neighbours, shrunk_neighbours

_ZERO = Fraction(0)


class ThroughputBoundsOracle:
    """Interval bounds ``[lo(d), hi(d)]`` on unseen distributions.

    Parameters
    ----------
    limit:
        Cap per level antichain.  Eviction only loosens bounds (fewer
        witnesses), never exactness; the exact map is never evicted.
    ceiling:
        The graph's maximal throughput over all distributions, once
        known; caps every upper bound.  Assign :attr:`ceiling` later if
        it is discovered mid-run.
    """

    __slots__ = (
        "ceiling",
        "index",
        "_min_total",
        "_max_total",
        "_limit",
        "_floor",
        "_floor_levels",
        "_ceil",
        "_ceil_levels",
    )

    def __init__(self, *, limit: int = 128, ceiling: Fraction | None = None):
        self.ceiling = ceiling
        self.index: dict[tuple[int, ...], Fraction] = {}
        self._min_total: int | None = None
        self._max_total: int | None = None
        self._limit = max(1, int(limit))
        self._floor: dict[Fraction, DominanceFront] = {}
        self._floor_levels: list[Fraction] = []  # ascending; scanned reversed
        self._ceil: dict[Fraction, DominanceFront] = {}
        self._ceil_levels: list[Fraction] = []  # ascending

    def __len__(self) -> int:
        return len(self.index)

    @property
    def records(self) -> int:
        """Distinct evaluations indexed."""
        return len(self.index)

    @property
    def levels(self) -> int:
        """Distinct throughput values indexed (cost factor of a query)."""
        return len(self._ceil_levels)

    def observe(self, vector: tuple[int, ...], throughput: Fraction) -> None:
        """Index one exact evaluation result (idempotent per vector)."""
        if vector in self.index:
            return
        self.index[vector] = throughput
        total = sum(vector)
        if self._min_total is None or total < self._min_total:
            self._min_total = total
        if self._max_total is None or total > self._max_total:
            self._max_total = total
        if throughput > 0:
            front = self._floor.get(throughput)
            if front is None:
                front = self._floor[throughput] = DominanceFront("minimal", self._limit)
                insort(self._floor_levels, throughput)
            front.add(vector)
        front = self._ceil.get(throughput)
        if front is None:
            front = self._ceil[throughput] = DominanceFront("maximal", self._limit)
            insort(self._ceil_levels, throughput)
        front.add(vector)

    def snapshot(self) -> dict:
        """Deterministic rendering of everything the oracle knows.

        Differential tests compare two runs' oracles for equality (the
        memo and the oracle must not depend on *how* probes ran — pool,
        batch wave or inline).  Fronts are rendered as sorted tuples:
        antichain membership is order-independent even though insertion
        order is not.
        """
        return {
            "index": dict(self.index),
            "floor": {
                level: tuple(sorted(self._floor[level]))
                for level in self._floor_levels
            },
            "ceil": {
                level: tuple(sorted(self._ceil[level]))
                for level in self._ceil_levels
            },
            "ceiling": self.ceiling,
        }

    # -- point queries on single levels (the legacy prune rules) ----------
    def floor_reaches(
        self, throughput: Fraction, vector: tuple[int, ...], total: int | None = None
    ) -> bool:
        """Is a recorded ``w <= vector`` with ``thr(w) == throughput`` known?

        With ``throughput`` the graph ceiling this is exactly the
        ceiling-squeeze prune.
        """
        front = self._floor.get(throughput)
        return front is not None and front.any_below(vector, total)

    def ceil_covers(
        self, throughput: Fraction, vector: tuple[int, ...], total: int | None = None
    ) -> bool:
        """Is a recorded ``w >= vector`` with ``thr(w) == throughput`` known?

        With ``throughput`` zero this is exactly the deadlock cover.
        """
        front = self._ceil.get(throughput)
        return front is not None and front.any_above(vector, total)

    # -- interval queries --------------------------------------------------
    def lower(self, vector: tuple[int, ...], total: int | None = None) -> Fraction:
        """Greatest recorded throughput provably reached by *vector*."""
        exact = self.index.get(vector)
        if exact is not None:
            return exact
        if total is None:
            total = sum(vector)
        # A strict sub-vector has a strictly smaller total, so nothing
        # at or below the smallest recorded slice can bound the query.
        if self._min_total is None or total <= self._min_total:
            return _ZERO
        best = _ZERO
        below = shrunk_neighbours(vector)
        for neighbour in below:
            throughput = self.index.get(neighbour)
            if throughput is not None and throughput > best:
                best = throughput
        for throughput in reversed(self._floor_levels):
            if throughput <= best:
                break
            if self._floor[throughput].any_below(vector, total, below):
                return throughput
        return best

    def upper(self, vector: tuple[int, ...], total: int | None = None) -> Fraction | None:
        """Least provable upper bound on *vector*'s throughput.

        ``None`` means unbounded — nothing recorded dominates the query
        and no ceiling is known yet.
        """
        exact = self.index.get(vector)
        if exact is not None:
            return exact
        if total is None:
            total = sum(vector)
        # A strict super-vector has a strictly larger total.
        if self._max_total is None or total >= self._max_total:
            return self.ceiling
        best = self.ceiling
        above = grown_neighbours(vector)
        for neighbour in above:
            throughput = self.index.get(neighbour)
            if throughput is not None and (best is None or throughput < best):
                best = throughput
        for throughput in self._ceil_levels:
            if best is not None and throughput >= best:
                break
            if self._ceil[throughput].any_above(vector, total, above):
                return throughput
        return best

    def interval(
        self, vector: tuple[int, ...], total: int | None = None
    ) -> tuple[Fraction, Fraction | None]:
        """The bracket ``[lo, hi]``; ``lo == hi`` is an exact free answer."""
        exact = self.index.get(vector)
        if exact is not None:
            return exact, exact
        if total is None:
            total = sum(vector)
        return self.lower(vector, total), self.upper(vector, total)

    def upper_below(
        self, vector: tuple[int, ...], bound: Fraction, strict: bool = True
    ) -> bool:
        """Provably ``thr(vector) < bound`` (or ``<= bound``) without
        simulating?

        This is the cut query of the per-size scans: a candidate whose
        upper bound already sits below the running best (or a threshold)
        cannot contribute a witness.  Cheaper than :meth:`upper` — the
        ascending level scan stops at *bound*.  With ``strict=False``
        the test is ``thr(vector) <= bound``, the form the ascending
        walk uses against the previous size's exact maximum, where ties
        are dominated rather than witnesses.
        """
        if self.ceiling is not None:
            if self.ceiling < bound or (not strict and self.ceiling == bound):
                return True
        exact = self.index.get(vector)
        if exact is not None:
            return exact < bound if strict else exact <= bound
        total = sum(vector)
        if self._max_total is None or total >= self._max_total:
            return False
        above = grown_neighbours(vector)
        for neighbour in above:
            throughput = self.index.get(neighbour)
            if throughput is not None and (
                throughput < bound or (not strict and throughput == bound)
            ):
                return True
        for throughput in self._ceil_levels:
            if throughput > bound or (strict and throughput == bound):
                break
            if self._ceil[throughput].any_above(vector, total, above):
                return True
        return False
