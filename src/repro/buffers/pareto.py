"""Pareto points of the storage/throughput trade-off (Sec. 8).

A *minimal storage distribution* is one for which no smaller
distribution achieves at least the same throughput; these are the
Pareto points of the two-dimensional design space (distribution size
vs. throughput).  :class:`ParetoFront` assembles and stores them.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from collections.abc import Callable, Iterable, Iterator, Mapping

from repro.buffers.distribution import StorageDistribution
from repro.buffers.shared import strictly_dominates


@dataclass(frozen=True)
class ParetoPoint:
    """One Pareto point: a size, its maximal throughput and witnesses.

    ``witnesses`` lists the minimal storage distributions of this size
    achieving the throughput; several may exist (the paper's Fig. 6
    example), all are equally valid.
    """

    size: int
    throughput: Fraction
    witnesses: tuple[StorageDistribution, ...] = ()

    @property
    def distribution(self) -> StorageDistribution:
        """A representative witness distribution."""
        if not self.witnesses:
            raise ValueError("Pareto point carries no witness distribution")
        return self.witnesses[0]

    def __str__(self) -> str:
        witness = f" via {self.distribution}" if self.witnesses else ""
        return f"size={self.size} throughput={self.throughput}{witness}"


class ParetoFront:
    """The set of Pareto points, ordered by increasing size.

    The invariant maintained is strict monotonicity in both
    dimensions: every stored point has strictly larger size *and*
    strictly larger throughput than its predecessor.
    """

    def __init__(self) -> None:
        self._points: list[ParetoPoint] = []

    @classmethod
    def from_evaluations(
        cls,
        evaluations: Mapping[StorageDistribution, Fraction],
        token_sizes: Mapping[str, int] | None = None,
    ) -> "ParetoFront":
        """Build the front from a ``{distribution: throughput}`` map.

        Distributions with zero throughput are ignored (they are not
        Pareto points of any positive constraint).  Witnesses of equal
        (size, throughput) are grouped.  With *token_sizes*, sizes are
        the weighted memory costs (see
        :meth:`StorageDistribution.weighted_size`).
        """
        by_key: dict[tuple[int, Fraction], list[StorageDistribution]] = {}
        for distribution, value in evaluations.items():
            if value <= 0:
                continue
            by_key.setdefault((distribution.weighted_size(token_sizes), value), []).append(
                distribution
            )

        front = cls()
        best = Fraction(0)
        for (size, value), witnesses in sorted(
            by_key.items(), key=lambda item: (item[0][0], -item[0][1])
        ):
            if value > best:
                front._points.append(
                    ParetoPoint(size, value, tuple(sorted(witnesses, key=lambda w: tuple(sorted(w.items())))))
                )
                best = value
        return front

    @classmethod
    def from_points(cls, points: Iterable[ParetoPoint]) -> "ParetoFront":
        """Build a front from already-Pareto points.

        The points must satisfy the front invariant — strictly
        increasing in both size and throughput — which is validated
        here so callers cannot construct a corrupt front.
        """
        front = cls()
        for point in points:
            if front._points:
                previous = front._points[-1]
                if not strictly_dominates(
                    (point.size, point.throughput), (previous.size, previous.throughput)
                ):
                    raise ValueError(
                        "Pareto points must be strictly increasing in size and"
                        f" throughput: {previous} followed by {point}"
                    )
            front._points.append(point)
        return front

    def to_dicts(self) -> list[dict]:
        """JSON-ready point list — the one front schema shared by
        checkpoints, ``io/frontjson`` exports and the CLI.

        Throughputs are exact ``"p/q"`` strings (a ``float`` rendering
        rides along for convenience); witnesses are plain
        ``{channel: capacity}`` dicts.
        """
        return [
            {
                "size": point.size,
                "throughput": str(point.throughput),
                "throughput_float": float(point.throughput),
                "witnesses": [dict(witness) for witness in point.witnesses],
            }
            for point in self._points
        ]

    @classmethod
    def from_dicts(cls, items: Iterable[Mapping]) -> "ParetoFront":
        """Inverse of :meth:`to_dicts` (validates the front invariant)."""
        return cls.from_points(
            ParetoPoint(
                int(entry["size"]),
                Fraction(entry["throughput"]),
                tuple(
                    StorageDistribution({name: int(cap) for name, cap in witness.items()})
                    for witness in entry.get("witnesses", ())
                ),
            )
            for entry in items
        )

    def filtered(self, predicate: Callable[[ParetoPoint], bool]) -> "ParetoFront":
        """A new front keeping the points satisfying *predicate*.

        Removing points from a valid front cannot break the
        monotonicity invariant, so any predicate is safe.
        """
        front = ParetoFront()
        front._points = [point for point in self._points if predicate(point)]
        return front

    @property
    def points(self) -> list[ParetoPoint]:
        """The Pareto points, smallest size first."""
        return list(self._points)

    def sizes(self) -> list[int]:
        """Distribution sizes of the points."""
        return [point.size for point in self._points]

    def throughputs(self) -> list[Fraction]:
        """Throughputs of the points."""
        return [point.throughput for point in self._points]

    @property
    def min_positive(self) -> ParetoPoint | None:
        """The smallest distribution with positive throughput."""
        return self._points[0] if self._points else None

    @property
    def max_throughput_point(self) -> ParetoPoint | None:
        """The point achieving the maximal throughput."""
        return self._points[-1] if self._points else None

    def smallest_for(self, throughput: Fraction) -> ParetoPoint | None:
        """Smallest point with throughput at least *throughput*."""
        for point in self._points:
            if point.throughput >= throughput:
                return point
        return None

    def throughput_at(self, size: int) -> Fraction:
        """Maximal throughput achievable with at most *size* tokens."""
        best = Fraction(0)
        for point in self._points:
            if point.size <= size:
                best = point.throughput
            else:
                break
        return best

    def is_feasible(self, size: int, throughput: Fraction) -> bool:
        """Whether (*size*, *throughput*) lies on or right of the curve."""
        return self.throughput_at(size) >= throughput

    def __iter__(self) -> Iterator[ParetoPoint]:
        return iter(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def __getitem__(self, index: int) -> ParetoPoint:
        return self._points[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParetoFront):
            return NotImplemented
        return [(p.size, p.throughput) for p in self._points] == [
            (p.size, p.throughput) for p in other._points
        ]

    def __repr__(self) -> str:
        inner = ", ".join(f"({p.size}, {p.throughput})" for p in self._points)
        return f"ParetoFront([{inner}])"
