"""Shared-memory storage requirements (the alternative model of Sec. 3).

The paper sizes each channel separately — the right model when
channels cannot share memory (distributed memories, multiprocessors),
and a conservative bound otherwise.  Sec. 3 also describes the
single-memory alternative used by Murthy et al. [MB00]: all channels
share one memory and the requirement is the *maximum number of tokens
stored at the same time* during the execution.

This module measures that metric for a graph under a storage
distribution: the peak, over all time instants of the transient and
periodic phases, of the summed channel occupancy (stored tokens plus
output space claimed by running firings, consistent with the
claim-at-start semantics).  As the paper notes, the shared-memory
requirement never exceeds the distribution size; the gap quantifies
how much memory a shared implementation could save.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from collections.abc import Mapping

from repro.buffers.pareto import ParetoFront
from repro.engine.executor import Executor
from repro.graph.graph import SDFGraph


@dataclass(frozen=True)
class SharedMemoryReport:
    """Shared vs. distributed storage for one distribution."""

    distribution_size: int
    peak_shared_tokens: int
    throughput: Fraction

    @property
    def saving(self) -> int:
        """Tokens a single shared memory saves over per-channel memories."""
        return self.distribution_size - self.peak_shared_tokens


def shared_memory_requirement(
    graph: SDFGraph,
    capacities: Mapping[str, int],
    observe: str | None = None,
) -> SharedMemoryReport:
    """Peak concurrent token storage under *capacities* (shared model)."""
    result = Executor(graph, capacities, observe, track_occupancy=True).run()
    assert result.peak_shared_tokens is not None
    size = sum(capacities.values())
    return SharedMemoryReport(size, result.peak_shared_tokens, result.throughput)


def compare_storage_models(
    graph: SDFGraph,
    front: ParetoFront,
    observe: str | None = None,
) -> list[SharedMemoryReport]:
    """Shared-memory requirement of every Pareto point's witness.

    The returned reports parallel the front's points; each report's
    ``peak_shared_tokens`` is what a single shared memory would need to
    realise the same schedule that the per-channel distribution admits.
    """
    return [
        shared_memory_requirement(graph, point.distribution, observe)
        for point in front
    ]
