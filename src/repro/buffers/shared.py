"""Shared buffer-layer primitives: dominance helpers and the
shared-memory storage model (the alternative model of Sec. 3).

Dominance
---------
Throughput is monotone non-decreasing under component-wise capacity
increase, so "vector ``a`` dominates vector ``b``" (``a >= b`` in every
component) is the ordering every exact acceleration in this package
rests on: the memo-cache prunes, the
:class:`~repro.buffers.oracle.ThroughputBoundsOracle`, the Pareto-front
invariant.  :func:`dominates` / :func:`strictly_dominates` are the one
shared definition, and :class:`DominanceFront` the one bounded-antichain
container, used by all of them.

Shared-memory model
-------------------
The paper sizes each channel separately — the right model when
channels cannot share memory (distributed memories, multiprocessors),
and a conservative bound otherwise.  Sec. 3 also describes the
single-memory alternative used by Murthy et al. [MB00]: all channels
share one memory and the requirement is the *maximum number of tokens
stored at the same time* during the execution.
:func:`shared_memory_requirement` measures that metric for a graph
under a storage distribution: the peak, over all time instants of the
transient and periodic phases, of the summed channel occupancy (stored
tokens plus output space claimed by running firings, consistent with
the claim-at-start semantics).  As the paper notes, the shared-memory
requirement never exceeds the distribution size; the gap quantifies
how much memory a shared implementation could save.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING
from collections.abc import Iterator, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.buffers.pareto import ParetoFront
    from repro.graph.graph import SDFGraph


def dominates(a: Sequence, b: Sequence) -> bool:
    """Component-wise ``a >= b`` (the monotonicity ordering)."""
    return all(x >= y for x, y in zip(a, b))


def strictly_dominates(a: Sequence, b: Sequence) -> bool:
    """Component-wise ``a > b`` in *every* coordinate.

    This is the Pareto-front invariant: each point must strictly beat
    its predecessor in both size and throughput.
    """
    return all(x > y for x, y in zip(a, b))


def shrunk_neighbours(vector: tuple[int, ...]) -> list[tuple[int, ...]]:
    """All vectors exactly one token below *vector*.

    These are precisely the proper subsets of *vector* with total size
    ``sum(vector) - 1``: a vector ``w <= v`` with ``sum(w) == sum(v) - 1``
    must equal ``v`` minus one unit on one coordinate.
    """
    return [
        vector[:i] + (value - 1,) + vector[i + 1 :]
        for i, value in enumerate(vector)
        if value > 0
    ]


def grown_neighbours(vector: tuple[int, ...]) -> list[tuple[int, ...]]:
    """All vectors exactly one token above *vector* (dual of
    :func:`shrunk_neighbours`)."""
    return [
        vector[:i] + (value + 1,) + vector[i + 1 :] for i, value in enumerate(vector)
    ]


class DominanceFront:
    """Bounded antichain of capacity vectors under dominance.

    ``keep="minimal"`` retains only vectors no other member is
    dominated by (the minimal elements — witnesses for "is something
    at or below this query?"); ``keep="maximal"`` the dual.  The cap of
    *limit* entries evicts the oldest member: evicting a witness only
    loses answer opportunities, never exactness.

    Entries are bucketed by total size, which turns the common access
    patterns of slice-by-slice scans into near-constant work: two
    vectors of equal total never dominate one another (so same-total
    inserts skip dominance checks entirely), and a vector relates to
    the adjacent total by exactly a one-coordinate step (so those
    checks are set lookups of the ``+-1`` neighbours instead of
    component-wise comparisons).  Only buckets two or more totals away
    fall back to :func:`dominates` scans.
    """

    __slots__ = ("keep", "limit", "_entries", "_buckets")

    def __init__(self, keep: str = "minimal", limit: int = 128):
        if keep not in ("minimal", "maximal"):
            raise ValueError(f"keep must be 'minimal' or 'maximal', not {keep!r}")
        self.keep = keep
        self.limit = max(1, int(limit))
        self._entries: list[tuple[int, tuple[int, ...]]] = []  # insertion order
        self._buckets: dict[int, set[tuple[int, ...]]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return (vector for _total, vector in self._entries)

    def _insert(self, total: int, vector: tuple[int, ...]) -> None:
        self._entries.append((total, vector))
        self._buckets.setdefault(total, set()).add(vector)

    def _remove(self, entry: tuple[int, tuple[int, ...]]) -> None:
        self._entries.remove(entry)
        total, vector = entry
        bucket = self._buckets[total]
        bucket.discard(vector)
        if not bucket:
            del self._buckets[total]

    def add(self, vector: tuple[int, ...]) -> bool:
        """Insert *vector*, keeping the antichain minimal/maximal.

        Returns whether the vector was actually added (an existing
        member already covering it makes the insert redundant).
        """
        vector = tuple(vector)
        total = sum(vector)
        bucket = self._buckets.get(total)
        if bucket is not None and vector in bucket:
            return False
        if self.keep == "minimal":
            if self._exists_le(vector, total):
                return False
            victims = self._covered(vector, total, above=True)
        else:
            if self._exists_ge(vector, total):
                return False
            victims = self._covered(vector, total, above=False)
        for entry in victims:
            self._remove(entry)
        self._insert(total, vector)
        if len(self._entries) > self.limit:
            self._remove(self._entries[0])
        return True

    def _exists_le(
        self,
        vector: tuple[int, ...],
        total: int,
        below: list[tuple[int, ...]] | None = None,
    ) -> bool:
        for t, bucket in self._buckets.items():
            if t > total:
                continue
            if t == total:
                if vector in bucket:
                    return True
            elif t == total - 1:
                if below is None:
                    below = shrunk_neighbours(vector)
                if any(neighbour in bucket for neighbour in below):
                    return True
            elif any(dominates(vector, w) for w in bucket):
                return True
        return False

    def _exists_ge(
        self,
        vector: tuple[int, ...],
        total: int,
        above: list[tuple[int, ...]] | None = None,
    ) -> bool:
        for t, bucket in self._buckets.items():
            if t < total:
                continue
            if t == total:
                if vector in bucket:
                    return True
            elif t == total + 1:
                if above is None:
                    above = grown_neighbours(vector)
                if any(neighbour in bucket for neighbour in above):
                    return True
            elif any(dominates(w, vector) for w in bucket):
                return True
        return False

    def _covered(
        self, vector: tuple[int, ...], total: int, above: bool
    ) -> list[tuple[int, tuple[int, ...]]]:
        """Members strictly dominated by (or dominating) *vector* —
        the entries a successful insert makes redundant."""
        victims: list[tuple[int, tuple[int, ...]]] = []
        if above:
            near = self._buckets.get(total + 1)
            if near:
                victims.extend(
                    (total + 1, n) for n in grown_neighbours(vector) if n in near
                )
            victims.extend(
                (t, w)
                for t, w in self._entries
                if t > total + 1 and dominates(w, vector)
            )
        else:
            near = self._buckets.get(total - 1)
            if near:
                victims.extend(
                    (total - 1, n) for n in shrunk_neighbours(vector) if n in near
                )
            victims.extend(
                (t, w)
                for t, w in self._entries
                if t < total - 1 and dominates(vector, w)
            )
        return victims

    def any_below(
        self,
        vector: tuple[int, ...],
        total: int | None = None,
        below: list[tuple[int, ...]] | None = None,
    ) -> bool:
        """Is some member dominated by *vector* (member ``<=`` query)?

        *below* optionally passes precomputed :func:`shrunk_neighbours`
        of the vector so repeated queries (one per level of the bounds
        oracle) build them once.
        """
        if total is None:
            total = sum(vector)
        return self._exists_le(vector, total, below)

    def any_above(
        self,
        vector: tuple[int, ...],
        total: int | None = None,
        above: list[tuple[int, ...]] | None = None,
    ) -> bool:
        """Is some member dominating *vector* (member ``>=`` query)?"""
        if total is None:
            total = sum(vector)
        return self._exists_ge(vector, total, above)


@dataclass(frozen=True)
class SharedMemoryReport:
    """Shared vs. distributed storage for one distribution."""

    distribution_size: int
    peak_shared_tokens: int
    throughput: Fraction

    @property
    def saving(self) -> int:
        """Tokens a single shared memory saves over per-channel memories."""
        return self.distribution_size - self.peak_shared_tokens


def shared_memory_requirement(
    graph: "SDFGraph",
    capacities: Mapping[str, int],
    observe: str | None = None,
) -> SharedMemoryReport:
    """Peak concurrent token storage under *capacities* (shared model)."""
    from repro.engine.executor import Executor

    result = Executor(graph, capacities, observe, track_occupancy=True).run()
    assert result.peak_shared_tokens is not None
    size = sum(capacities.values())
    return SharedMemoryReport(size, result.peak_shared_tokens, result.throughput)


def compare_storage_models(
    graph: "SDFGraph",
    front: "ParetoFront",
    observe: str | None = None,
) -> list[SharedMemoryReport]:
    """Shared-memory requirement of every Pareto point's witness.

    The returned reports parallel the front's points; each report's
    ``peak_shared_tokens`` is what a single shared memory would need to
    realise the same schedule that the per-channel distribution admits.
    """
    return [
        shared_memory_requirement(graph, point.distribution, observe)
        for point in front
    ]
