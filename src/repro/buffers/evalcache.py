"""Shared evaluation service: exact memo cache, bound pruning, fan-out.

Every exploration strategy ultimately reduces to throughput queries on
storage distributions, answered by a cold-start state-space execution.
:class:`EvaluationService` is the single funnel all strategies route
those queries through.  It layers three exact accelerations on top of
the raw :class:`~repro.engine.executor.Executor`:

**Memo cache.**  Results are memoised under the canonical form of the
distribution (the capacity vector in the graph's channel order), so a
distribution is never executed twice — across strategies, across the
upper-bound probes of the explorer, across repeated queries.

**Monotonicity-based bound pruning.**  Throughput is monotone
non-decreasing under component-wise capacity increase (Sec. 9 of the
paper; property-tested in ``tests/properties``).  Two consequences are
exploited, both *exact*:

* *ceiling squeeze* — let ``T`` be the graph's maximal throughput over
  all distributions (the service's ``ceiling``).  If a cached
  distribution ``w`` with ``thr(w) == T`` is dominated component-wise
  by a query ``d`` (``d >= w``), then ``T = thr(w) <= thr(d) <= T``,
  so ``thr(d) == T`` without running anything.  The prune fires only
  on cached values *equal* to the ceiling — a cached value merely at
  some stop threshold below the ceiling would bound the superset's
  throughput from below but not pin it, and the service never answers
  with a bound.
* *deadlock cover* — if a cached ``w`` with ``thr(w) == 0`` dominates
  the query (``w >= d``), then ``0 <= thr(d) <= thr(w) = 0``.

The witnesses backing the prunes are kept as small antichains (minimal
ceiling-reaching vectors, maximal deadlocked vectors) with a bounded
length, so prune checks stay cheap; eviction only loses prune
opportunities, never exactness.  Both rules are the extreme levels of
the :class:`~repro.buffers.oracle.ThroughputBoundsOracle` the service
indexes every record into; with ``config.bounds`` enabled the full
oracle additionally answers any query whose interval closes
(``bounds_exact``) and cuts scan candidates whose upper bound cannot
matter (``bounds_cut`` via :meth:`EvaluationService.cuts_below`) —
still exact, still front-identical.

**Speculative probing.**  With ``config.speculate`` and ``workers >
1``, strategies wish for predicted future probes via
:meth:`EvaluationService.speculate`; idle pool workers evaluate them
in the background and the results are absorbed into the memo cache
(and the oracle) before each batch resolution.  Speculative records
are produced by the same worker entry point as demand-driven pooled
probes, so they are bit-identical; a demand miss whose vector is still
in flight waits on that future instead of re-executing.  Budget-wise a
speculative probe is only charged when a demand query consumes it.

**Parallel probing.**  Batch queries (``evaluate_many`` /
``evaluate_blocking_many``) resolve what the cache can answer and fan
the misses out to a :class:`~repro.engine.parallel.ParallelProber`
process pool.  ``workers=1`` is exactly today's serial path; results
are merged back in input order, so batch callers observe the same
deterministic sequence either way.

**Run control.**  The service carries the run's
:class:`~repro.runtime.controller.RunController` and
:class:`~repro.runtime.telemetry.TelemetryHub` (built from its
:class:`~repro.runtime.config.ExplorationConfig`): every execution is
charged against the budget *before* it starts, so interruption lands on
a probe boundary and all recorded results stay exact; cache hits,
prunes and probe timings stream out as structured events.
:meth:`EvaluationService.export_state` / ``restore_state`` round-trip
the memo (blocking records included) for the checkpoint/resume story of
:mod:`repro.runtime.checkpoint`.

The differential test harness (``tests/properties/test_prop_evalcache
.py``) asserts that explorations through this service — cache on or
off, serial or parallel — return Pareto fronts identical to the plain
serial path, witnesses included.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, NamedTuple
from collections.abc import Iterable, Mapping, Sequence

from repro.buffers.distribution import StorageDistribution
from repro.buffers.oracle import ThroughputBoundsOracle
from repro.buffers.search import SearchStats
from repro.buffers.shared import dominates as _dominates
from repro.engine.backends import ProbeBackend, backend_for, resolve_backend
from repro.engine.executor import Executor
from repro.engine.fastcore import ENGINES
from repro.engine.parallel import ParallelProber, RawEvaluation
from repro.exceptions import CapacityError, EngineError, ExplorationError
from repro.graph.graph import SDFGraph
from repro.runtime.config import UNSET, ExplorationConfig, coerce_config
from repro.runtime.controller import RunController
from repro.runtime.telemetry import TelemetryHub

#: Default cap on each prune antichain; evicting old witnesses only
#: reduces prune opportunities, never correctness.
_PRUNE_FRONT_LIMIT = 128


@dataclass
class EvalStats(SearchStats):
    """Counters of one exploration through the evaluation service.

    Extends the per-strategy :class:`~repro.buffers.search.SearchStats`
    (evaluations, cache hits, sizes probed, ...) with the service's own
    accounting: how often each pruning rule answered a query and how
    much work went through the process pool.
    """

    workers: int = 1
    prunes_superset: int = 0
    prunes_subset: int = 0
    parallel_batches: int = 0
    parallel_tasks: int = 0
    fast_runs: int = 0
    pool_restarts: int = 0
    pool_fallback_reason: str | None = None
    #: Queries answered exactly by a closed oracle interval (lo == hi,
    #: strictly between deadlock and ceiling — those two classify as
    #: prunes_subset / prunes_superset as before).
    bounds_exact: int = 0
    #: Scan candidates skipped because their oracle upper bound proved
    #: they cannot beat the running best / threshold (work avoided
    #: without even a synthesized record).
    bounds_cut: int = 0
    speculative_issued: int = 0
    speculative_useful: int = 0
    #: Wave-batched probe accounting (``config.batch > 0``): how many
    #: ``evaluate_batch`` group calls were made and how many lanes they
    #: carried in total.  ``batch_lanes / batch_calls`` is the mean
    #: occupancy; it measures *how* probes ran, never which ones.
    batch_calls: int = 0
    batch_lanes: int = 0

    @property
    def prunes(self) -> int:
        """Total queries answered by monotonicity pruning."""
        return self.prunes_superset + self.prunes_subset + self.bounds_exact

    @property
    def speculative_wasted(self) -> int:
        """Speculative probes issued but never consumed by a demand query."""
        return max(0, self.speculative_issued - self.speculative_useful)


class EvaluationRecord(NamedTuple):
    """Cached outcome of one distribution evaluation.

    ``space_blocked`` / ``space_deficits`` are ``None`` when the record
    was synthesised by a pruning rule (the throughput is exact, but no
    execution happened, so no blocking information exists).
    """

    distribution: StorageDistribution
    throughput: Fraction
    states_stored: int
    space_blocked: frozenset[str] | None
    space_deficits: Mapping[str, int] | None

    @property
    def has_blocking(self) -> bool:
        return self.space_blocked is not None


class EvaluationService:
    """Memoising, pruning, optionally parallel throughput oracle.

    Drop-in compatible with
    :class:`~repro.buffers.search.ThroughputEvaluator` (callable, with
    ``.stats`` and ``.evaluations``), plus batch and blocking-aware
    entry points for the strategies that need them.

    Parameters
    ----------
    config:
        The :class:`~repro.runtime.config.ExplorationConfig` governing
        this service: ``engine`` / ``workers`` / ``cache`` select the
        kernel, pool size and memoisation; ``budget`` and ``on_event``
        wire the service's :class:`~repro.runtime.controller
        .RunController` and :class:`~repro.runtime.telemetry
        .TelemetryHub`; ``probe_timeout`` / ``max_pool_restarts`` /
        ``retry_backoff`` tune the fault-tolerant worker pool.  The
        ``evaluator`` field must be unset — a service cannot wrap
        another service.
    ceiling:
        The graph's **maximal throughput over all distributions**.
        Required for the superset prune; must be exact (pass the value
        of :func:`repro.analysis.throughput.max_throughput`), or leave
        unset / call :meth:`set_ceiling` once known.
    workers / cache / engine:
        Removed legacy aliases: passing any of them raises
        :class:`~repro.exceptions.ConfigError` naming the migration.
    """

    def __init__(
        self,
        graph: SDFGraph,
        observe: str | None = None,
        *,
        config: ExplorationConfig | None = None,
        ceiling: Fraction | None = None,
        prune_limit: int = _PRUNE_FRONT_LIMIT,
        stats: EvalStats | None = None,
        workers: object = UNSET,
        cache: object = UNSET,
        engine: object = UNSET,
    ):
        config = coerce_config(
            config, caller="EvaluationService", workers=workers, cache=cache, engine=engine
        )
        if config.evaluator is not None:
            raise ExplorationError(
                "EvaluationService cannot be built from a config carrying an"
                " evaluator; use that service directly"
            )
        if config.engine not in ENGINES:  # config validates too; belt and braces
            raise EngineError(
                f"unknown engine {config.engine!r}; expected one of {ENGINES}"
            )
        self.graph = graph
        self.observe = observe if observe is not None else graph.actor_names[-1]
        self.config = config
        self.workers = max(1, int(config.workers))
        self.cache_enabled = bool(config.cache)
        self.engine = config.engine
        self.telemetry = TelemetryHub(config.on_event)
        self.controller = RunController(config.budget, self.telemetry)
        # Probe backend: explicit config.backend, "auto" (best available
        # on this host), or the legacy engine pairing for None.  Config
        # validation already rejected unknown names, capability
        # mismatches and unavailable explicit backends at construction.
        self.backend_name = resolve_backend(config.backend, config.engine)
        self._backend: ProbeBackend = backend_for(self.backend_name)
        self.batch_size = max(0, int(config.batch))
        self.ceiling = ceiling
        self.stats = stats if stats is not None else EvalStats(workers=self.workers)
        self.stats.workers = self.workers
        self._order = graph.channel_names
        self._memo: dict[tuple[int, ...], EvaluationRecord] = {}
        self._prune_limit = max(1, prune_limit)
        # The dominance lattice over every recorded evaluation.  Its
        # extreme levels *are* the legacy prune antichains (minimal
        # ceiling-reaching vectors, maximal deadlocked vectors), so it
        # is maintained unconditionally; config.bounds only widens
        # which levels queries may consult.
        self._oracle = ThroughputBoundsOracle(limit=self._prune_limit, ceiling=ceiling)
        self.bounds_enabled = bool(config.bounds) and self.cache_enabled
        self.speculate_enabled = bool(config.speculate) and self.cache_enabled and (
            self.workers > 1 or self.batch_size > 0
        )
        # Vectors whose memo entry came from a speculative probe and has
        # not yet been consumed by a demand query (wasted-work tracking).
        self._spec_origin: set[tuple[int, ...]] = set()
        # Batch-mode wish list: unmemoised speculative candidates used
        # to top up partially-filled waves ({vector: distribution}).
        self._spec_pending: dict[tuple[int, ...], StorageDistribution] = {}
        self._prober: ParallelProber | None = None

    # -- canonical keys ---------------------------------------------------
    def _vector(self, distribution: Mapping[str, int]) -> tuple[int, ...]:
        try:
            return tuple(distribution[name] for name in self._order)
        except KeyError as missing:
            raise CapacityError(
                f"distribution misses channel {missing.args[0]!r} of graph {self.graph.name!r}"
            ) from None

    # -- throughput queries ----------------------------------------------
    def __call__(self, distribution: StorageDistribution) -> Fraction:
        """Exact throughput of *distribution* (0 on deadlock)."""
        vector = self._vector(distribution)
        if self.speculate_enabled:
            self._harvest_speculation()
        record = self._lookup(vector) or self._prune(distribution, vector)
        if record is None:
            record = self._claim_speculative(distribution, vector)
        if record is None:
            record = self._execute(distribution, vector, blocking=False)
        return record.throughput

    def cached_throughput(self, distribution: StorageDistribution) -> Fraction | None:
        """Memoised throughput of *distribution*, or ``None`` — never
        evaluates.

        The ascending walk peeks before deciding how to settle a
        candidate: a memoised one is a free exact answer and needs
        neither a cut check nor a promotion.  Accounting matches
        :meth:`__call__` on a hit (cache-hit counter, speculative
        consumption), so enabling the walk changes no hit statistics.
        """
        vector = self._vector(distribution)
        if self.speculate_enabled:
            self._harvest_speculation()
        record = self._lookup(vector)
        return None if record is None else record.throughput

    def evaluate_many(self, distributions: Sequence[StorageDistribution]) -> list[Fraction]:
        """Throughputs of a batch of independent distributions.

        Cache and prunes answer what they can; the remaining misses go
        through the process pool (``workers > 1``) or run inline.
        Results come back in input order.
        """
        records = self._resolve_batch(distributions, blocking=False)
        return [record.throughput for record in records]

    # -- blocking-aware queries (dependency-guided sweep) ------------------
    def evaluate_blocking(
        self,
        distribution: StorageDistribution,
        reached: Callable[[Fraction], bool] | None = None,
    ) -> EvaluationRecord:
        """Evaluation record including space-blocking information.

        *reached* tells the service which throughputs make blocking
        information unnecessary (the sweep never expands a distribution
        that already reached its target): for such values a cached or
        pruned record without blocking data may be returned; otherwise
        an execution is performed to obtain it.
        """
        return self._resolve_batch([distribution], blocking=True, reached=reached)[0]

    def evaluate_blocking_many(
        self,
        distributions: Sequence[StorageDistribution],
        reached: Callable[[Fraction], bool] | None = None,
    ) -> list[EvaluationRecord]:
        """Batch variant of :meth:`evaluate_blocking` (input order)."""
        return self._resolve_batch(distributions, blocking=True, reached=reached)

    # -- batch resolution --------------------------------------------------
    def _resolve_batch(
        self,
        distributions: Sequence[StorageDistribution],
        *,
        blocking: bool,
        reached: Callable[[Fraction], bool] | None = None,
    ) -> list[EvaluationRecord]:
        def usable(record: EvaluationRecord) -> bool:
            if not blocking or record.has_blocking:
                return True
            return reached is not None and reached(record.throughput)

        if self.speculate_enabled:
            self._harvest_speculation()
        records: list[EvaluationRecord | None] = [None] * len(distributions)
        misses: list[tuple[int, StorageDistribution, tuple[int, ...]]] = []
        for index, distribution in enumerate(distributions):
            vector = self._vector(distribution)
            record = self._lookup(vector)
            if record is not None and usable(record):
                records[index] = record
                continue
            if record is None:
                # Blocking callers expand deadlocked entries, so the
                # deadlock cover (which yields no blocking channels) is
                # off for them, and the ceiling squeeze only applies
                # when reaching the ceiling ends the expansion anyway.
                prunable = not blocking or (
                    reached is not None and self.ceiling is not None and reached(self.ceiling)
                )
                if prunable:
                    pruned = self._prune(distribution, vector, allow_subset=not blocking)
                    if pruned is not None and usable(pruned):
                        records[index] = pruned
                        continue
            # A speculative future for this vector carries full blocking
            # information (same worker entry point as pooled probes), so
            # claiming it satisfies any caller.
            claimed = self._claim_speculative(distribution, vector)
            if claimed is not None and usable(claimed):
                records[index] = claimed
                continue
            misses.append((index, distribution, vector))

        if misses:
            grouped = (
                not blocking
                and self.batch_size > 0
                and len(misses) > 1
                and self.controller.allows(len(misses))
            )
            pooled = (
                not grouped
                and self.workers > 1
                and len(misses) > 1
                and self.controller.allows(len(misses))
            )
            if grouped:
                for (index, _, _), record in zip(misses, self._evaluate_wave(misses)):
                    records[index] = record
            elif pooled:
                # One budget charge for the whole fan-out; the
                # controller rejected it above if it would overdraw, in
                # which case the inline path below spends what is left
                # one probe at a time.
                self.controller.before_probes(len(misses))
                prober = self._ensure_prober()
                raw_results = prober.map([dict(d) for _, d, _ in misses])
                self._sync_pool_stats(prober)
                for (index, distribution, vector), raw in zip(misses, raw_results):
                    records[index] = self._absorb(distribution, vector, raw)
            else:
                for index, distribution, vector in misses:
                    records[index] = self._execute(distribution, vector, blocking=blocking)
        return records  # type: ignore[return-value]  # every slot filled above

    # -- cache internals ----------------------------------------------------
    def _lookup(self, vector: tuple[int, ...]) -> EvaluationRecord | None:
        if not self.cache_enabled:
            return None
        record = self._memo.get(vector)
        if record is not None:
            self.stats.cache_hits += 1
            self.telemetry.emit("cache_hit", size=sum(vector))
            if vector in self._spec_origin:
                # First demand consumption of a speculative result.
                self._spec_origin.discard(vector)
                self.stats.speculative_useful += 1
                self.telemetry.emit("speculative_useful", size=sum(vector))
        return record

    def _prune(
        self,
        distribution: StorageDistribution,
        vector: tuple[int, ...],
        allow_subset: bool = True,
    ) -> EvaluationRecord | None:
        if not self.cache_enabled:
            return None
        total = sum(vector)
        if self.ceiling is not None and self._oracle.floor_reaches(
            self.ceiling, vector, total
        ):
            self.stats.prunes_superset += 1
            self.telemetry.emit("prune", kind="ceiling", size=total)
            return self._store(
                vector, EvaluationRecord(distribution, self.ceiling, 0, None, None)
            )
        if allow_subset:
            if self._oracle.ceil_covers(Fraction(0), vector, total):
                self.stats.prunes_subset += 1
                self.telemetry.emit("prune", kind="deadlock", size=total)
                return self._store(
                    vector, EvaluationRecord(distribution, Fraction(0), 0, None, None)
                )
            if self.bounds_enabled:
                low, high = self._oracle.interval(vector, total)
                if high is not None and low == high and low > 0:
                    self.stats.bounds_exact += 1
                    self.telemetry.emit("bounds_exact", size=total, throughput=str(low))
                    return self._store(
                        vector, EvaluationRecord(distribution, low, 0, None, None)
                    )
        return None

    def cuts_below(
        self, distribution: StorageDistribution, bound: Fraction, strict: bool = True
    ) -> bool:
        """Whether *distribution* provably has throughput below *bound*.

        Scan loops use this to skip candidates that cannot improve on a
        running best (``max_throughput_for_size``) or reach a threshold
        (``threshold_scan``).  Only an oracle *upper* bound strictly
        below *bound* answers ``True``, so a cut never drops a would-be
        witness: ties (throughput exactly equal to the running best)
        are never cut.  With ``strict=False`` the test is ``<= bound``
        — the ascending walk's cut against the previous size's exact
        maximum, where a tie is dominated by the smaller size's witness
        and so still cannot matter.  Cut distributions are not stored
        in the memo — they are indistinguishable from never having been
        scanned, which keeps budget-interrupted partial results exact.
        """
        if not self.bounds_enabled or (bound <= 0 if strict else bound < 0):
            return False
        vector = self._vector(distribution)
        if vector in self._memo:
            return False  # a real record answers cheaper and counts as a hit
        if self._oracle.upper_below(vector, bound, strict):
            self.stats.bounds_cut += 1
            self.telemetry.emit("bounds_cut", size=sum(vector))
            return True
        return False

    def _execute(
        self,
        distribution: StorageDistribution,
        vector: tuple[int, ...],
        *,
        blocking: bool = True,
    ) -> EvaluationRecord:
        if blocking and self.engine == "fast":
            raise EngineError(
                "engine='fast' cannot serve blocking-aware queries (the fast"
                " kernel produces no per-channel blocking information);"
                " use engine='auto' or engine='reference'"
            )
        self.controller.before_probes(1)
        size = sum(vector)
        self.telemetry.emit("probe_start", size=size, blocking=blocking)
        probe_started = time.perf_counter()
        self.stats.evaluations += 1
        if not blocking:
            result = self._backend.evaluate_batch(
                self.graph, [dict(distribution)], self.observe
            )[0]
            if "compiled" in self._backend.capabilities:
                self.stats.fast_runs += 1
            record = self._result_record(distribution, result)
        else:
            result = Executor(self.graph, distribution, self.observe, track_blocking=True).run()
            record = EvaluationRecord(
                distribution,
                result.throughput,
                result.states_stored,
                result.space_blocked,
                dict(result.space_deficits),
            )
            self.stats.max_states_stored = max(
                self.stats.max_states_stored, result.states_stored
            )
        duration = time.perf_counter() - probe_started
        self.telemetry.record_time("probe", duration)
        self.telemetry.emit(
            "probe_finish",
            size=size,
            throughput=str(record.throughput),
            duration_s=duration,
        )
        return self._store(vector, record)

    def _result_record(
        self, distribution: StorageDistribution, result
    ) -> EvaluationRecord:
        """An :class:`EvaluationRecord` from a backend ``EvalResult``."""
        self.stats.max_states_stored = max(
            self.stats.max_states_stored, result.states_stored
        )
        return EvaluationRecord(
            distribution,
            result.throughput,
            result.states_stored,
            result.space_blocked,
            dict(result.space_deficits) if result.space_deficits is not None else None,
        )

    def _evaluate_wave(
        self, misses: Sequence[tuple[int, StorageDistribution, tuple[int, ...]]]
    ) -> list[EvaluationRecord]:
        """One grouped ``evaluate_batch`` call for a wave of cache misses.

        The controller admitted the wave as a unit, so the whole charge
        lands before any lane runs — interruption stays on a probe
        boundary.  Spare lanes up to the configured width are topped up
        with pending speculative wishes; their records enter the memo
        as speculative (charged to the budget only if a later demand
        query consumes them, mirroring the pool's speculation
        accounting).  Returns the demand records in miss order.
        """
        self.controller.before_probes(len(misses))
        extras: list[tuple[StorageDistribution, tuple[int, ...]]] = []
        room = self.batch_size - len(misses)
        while room > 0 and self._spec_pending:
            vector, distribution = self._spec_pending.popitem()
            if vector in self._memo:
                continue
            extras.append((distribution, vector))
            room -= 1
        wave = [dict(d) for _, d, _ in misses] + [dict(d) for d, _ in extras]
        started = time.perf_counter()
        results = self._backend.evaluate_batch(self.graph, wave, self.observe)
        duration = time.perf_counter() - started
        compiled = "compiled" in self._backend.capabilities
        self.stats.batch_calls += 1
        self.stats.batch_lanes += len(wave)
        self.telemetry.emit(
            "batch_call", lanes=len(wave), demand=len(misses), duration_s=duration
        )
        for _ in wave:
            self.telemetry.emit("batch_lanes")
        self.telemetry.record_time("batch", duration)
        records: list[EvaluationRecord] = []
        for (_, distribution, vector), result in zip(misses, results):
            self.stats.evaluations += 1
            if compiled:
                self.stats.fast_runs += 1
            records.append(self._store(vector, self._result_record(distribution, result)))
        for (distribution, vector), result in zip(extras, results[len(misses) :]):
            self._store(vector, self._result_record(distribution, result))
            self._spec_origin.add(vector)
            self.stats.speculative_issued += 1
            self.telemetry.emit("speculative_issued", size=sum(vector))
        return records

    def _absorb(
        self,
        distribution: StorageDistribution,
        vector: tuple[int, ...],
        raw: RawEvaluation,
    ) -> EvaluationRecord:
        throughput, states_stored, blocked, deficits = raw
        self.stats.evaluations += 1
        self.stats.max_states_stored = max(self.stats.max_states_stored, states_stored)
        record = EvaluationRecord(
            distribution, throughput, states_stored, frozenset(blocked), dict(deficits)
        )
        return self._store(vector, record)

    def _store(self, vector: tuple[int, ...], record: EvaluationRecord) -> EvaluationRecord:
        if not self.cache_enabled:
            return record
        existing = self._memo.get(vector)
        if existing is not None and existing.has_blocking:
            # Never replace a full record with a thinner one.
            return existing
        self._memo[vector] = record
        if existing is None:
            # Overwrites (thin record upgraded with blocking data) carry
            # the same throughput, so only first insertions are indexed.
            self._oracle.observe(vector, record.throughput)
        return record

    # -- speculative probing -------------------------------------------------
    def speculate(self, distributions: Iterable[StorageDistribution]) -> int:
        """Wish for probes the caller predicts it will need soon.

        Unmemoised distributions are submitted fire-and-forget to idle
        pool workers, or — in batch mode — queued as spare-lane
        candidates for the next grouped wave; returns how many were
        actually accepted.  A no-op unless ``config.speculate`` is set,
        the cache is on and a pool or batch plane exists — strategies
        may call this unconditionally.
        """
        if not self.speculate_enabled:
            return 0
        if self.batch_size > 0:
            # Batch mode: wishes wait in a bounded list and ride along
            # as spare lanes of the next grouped wave; they are counted
            # issued only when a wave actually runs them.
            limit = 8 * self.batch_size
            accepted = 0
            for distribution in distributions:
                vector = self._vector(distribution)
                if vector in self._memo or vector in self._spec_pending:
                    continue
                if len(self._spec_pending) >= limit:
                    break
                self._spec_pending[vector] = distribution
                accepted += 1
            return accepted
        prober = self._ensure_prober()
        if not prober.parallel:
            return 0
        pending = []
        for distribution in distributions:
            if self._vector(distribution) not in self._memo:
                pending.append(dict(distribution))
        if not pending:
            return 0
        issued = prober.speculate(pending)
        if issued:
            self.stats.speculative_issued += issued
            for _ in range(issued):
                self.telemetry.emit("speculative_issued")
        return issued

    def _harvest_speculation(self) -> None:
        """Absorb completed speculative probes into the memo/oracle.

        Harvested records do not count as evaluations and are not
        charged against the budget — that happens only when a demand
        query consumes one (:meth:`_lookup` / :meth:`_claim_speculative`).
        """
        if not self.speculate_enabled or self._prober is None:
            return
        for item, raw in self._prober.harvest():
            caps = dict(item)
            vector = self._vector(caps)
            if vector in self._memo:
                continue
            throughput, states_stored, blocked, deficits = raw
            self.stats.max_states_stored = max(self.stats.max_states_stored, states_stored)
            record = EvaluationRecord(
                StorageDistribution(caps),
                throughput,
                states_stored,
                frozenset(blocked),
                dict(deficits),
            )
            self._store(vector, record)
            self._spec_origin.add(vector)

    def _claim_speculative(
        self, distribution: StorageDistribution, vector: tuple[int, ...]
    ) -> EvaluationRecord | None:
        """Consume an in-flight speculative probe of *vector*, if any.

        The probe becomes a regular evaluation at this point: it is
        charged against the budget and counted, exactly as if the demand
        path had executed it (which it otherwise would — a claimed probe
        replaces a simulation one-for-one).
        """
        if not self.speculate_enabled or self._prober is None:
            return None
        raw = self._prober.claim(tuple(sorted(dict(distribution).items())))
        if raw is None:
            return None
        self.controller.before_probes(1)
        self.stats.speculative_useful += 1
        self.telemetry.emit("speculative_useful", size=sum(vector))
        return self._absorb(distribution, vector, raw)

    # -- lifecycle / introspection ------------------------------------------
    def set_ceiling(self, ceiling: Fraction) -> None:
        """Pin the graph's maximal throughput, enabling the superset prune.

        Records are indexed by the oracle at their exact throughput
        level as they are stored, so no retroactive promotion is needed:
        the ceiling merely selects which floor level the squeeze
        consults from now on.
        """
        self.ceiling = ceiling
        self._oracle.ceiling = ceiling

    def _ensure_prober(self) -> ParallelProber:
        if self._prober is None:
            self._prober = ParallelProber(
                self.graph,
                self.observe,
                self.workers,
                probe_timeout=self.config.probe_timeout,
                max_restarts=self.config.max_pool_restarts,
                retry_backoff=self.config.retry_backoff,
                on_event=self.telemetry.emit,
            )
        return self._prober

    def _sync_pool_stats(self, prober: ParallelProber) -> None:
        """Mirror the prober's health counters into the run stats, so an
        inline fallback is visible instead of silently degrading."""
        self.stats.parallel_batches = prober.batches
        self.stats.parallel_tasks = prober.tasks
        self.stats.pool_restarts = prober.pool_restarts
        self.stats.pool_fallback_reason = prober.fallback_reason

    @property
    def evaluations(self) -> dict[StorageDistribution, Fraction]:
        """All known distributions with their throughputs (cache dump)."""
        return {
            record.distribution: record.throughput for record in self._memo.values()
        }

    @property
    def cache_size(self) -> int:
        return len(self._memo)

    # -- checkpoint support ---------------------------------------------
    def export_state(self) -> dict:
        """JSON-ready snapshot of the memo cache, ceiling and stats.

        The payload feeds :mod:`repro.runtime.checkpoint`; every record
        keeps its blocking information, so a restored service can serve
        the dependency-guided sweep without re-executing anything.
        """
        memo = []
        for vector, record in self._memo.items():
            memo.append(
                {
                    "caps": list(vector),
                    "throughput": str(record.throughput),
                    "states": record.states_stored,
                    "blocked": (
                        sorted(record.space_blocked)
                        if record.space_blocked is not None
                        else None
                    ),
                    "deficits": (
                        dict(sorted(record.space_deficits.items()))
                        if record.space_deficits is not None
                        else None
                    ),
                }
            )
        return {
            "channels": list(self._order),
            "ceiling": str(self.ceiling) if self.ceiling is not None else None,
            "memo": memo,
            "stats": self.stats.to_dict(),
        }

    def restore_state(self, state: Mapping) -> None:
        """Load an :meth:`export_state` payload into this service.

        The ceiling is installed first so restored records re-seed the
        prune antichains exactly as live evaluations would; stats
        counters resume cumulatively (a resumed run reports the total
        cost across all its legs).
        """
        if not self.cache_enabled:
            raise ExplorationError("restore_state requires the memo cache (cache=True)")
        ceiling = state.get("ceiling")
        if ceiling is not None:
            self.set_ceiling(Fraction(ceiling))
        order = self._order
        for entry in state.get("memo", ()):
            vector = tuple(int(cap) for cap in entry["caps"])
            distribution = StorageDistribution(dict(zip(order, vector)))
            blocked = entry.get("blocked")
            deficits = entry.get("deficits")
            record = EvaluationRecord(
                distribution,
                Fraction(entry["throughput"]),
                int(entry.get("states", 0)),
                frozenset(blocked) if blocked is not None else None,
                {name: int(value) for name, value in deficits.items()}
                if deficits is not None
                else None,
            )
            self._store(vector, record)
        restored = state.get("stats")
        if restored:
            previous = EvalStats.from_dict(restored)
            for name in (
                "evaluations",
                "cache_hits",
                "sizes_probed",
                "threshold_scans",
                "prunes_superset",
                "prunes_subset",
                "parallel_batches",
                "parallel_tasks",
                "fast_runs",
                "pool_restarts",
                "bounds_exact",
                "bounds_cut",
                "speculative_issued",
                "speculative_useful",
                "batch_calls",
                "batch_lanes",
            ):
                setattr(self.stats, name, getattr(self.stats, name) + getattr(previous, name))
            self.stats.max_states_stored = max(
                self.stats.max_states_stored, previous.max_states_stored
            )

    def close(self) -> None:
        """Release the worker pool, if one was created (idempotent)."""
        if self._prober is not None:
            self._sync_pool_stats(self._prober)
            self._prober.close()
            self._prober = None

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def batched(items: Iterable, size: int) -> Iterable[list]:
    """Yield consecutive chunks of at most *size* items."""
    chunk: list = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
