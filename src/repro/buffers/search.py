"""The paper's design-space search strategies (Sec. 9).

Two cooperating searches:

* **size dimension** — either a plain sweep over every size in
  ``[lb, ub]`` or the paper's divide-and-conquer: compute the maximal
  throughput at both interval ends; equal values mean (by monotonicity
  of throughput in capacity) that no Pareto point lies strictly
  inside, otherwise recurse on the halves;

* **throughput dimension** — for one size, find the maximal
  throughput over all distributions of that size.  The exact variant
  scans the full enumeration (early-exiting when the global maximum is
  reached); the quantised variant performs the paper's binary search
  over a throughput grid, where each probe only scans until *some*
  distribution reaches the threshold.

Both strategies share a memoising evaluator so a distribution is never
simulated twice.  The evaluator may be the plain
:class:`ThroughputEvaluator` below or the richer
:class:`~repro.buffers.evalcache.EvaluationService`; with the latter,
the per-size scans fan their independent probes out to a process pool
in enumeration-ordered waves, so results (including early exits and
witness selection) are bit-identical to the serial scan.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from fractions import Fraction
from itertools import islice
from collections.abc import Iterator, Mapping

from repro.buffers.distribution import StorageDistribution
from repro.buffers.enumerate import distributions_of_size
from repro.buffers.quantize import quantize_down
from repro.engine.executor import Executor
from repro.graph.graph import SDFGraph


@dataclass
class SearchStats:
    """Bookkeeping shared by the search strategies."""

    evaluations: int = 0
    max_states_stored: int = 0
    sizes_probed: int = 0
    threshold_scans: int = 0
    cache_hits: int = 0

    def to_dict(self) -> dict:
        """All counters as a JSON-ready dict (subclass fields included)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SearchStats":
        """Inverse of :meth:`to_dict`; unknown keys are ignored so newer
        checkpoints load into older stats layouts."""
        known = {field.name for field in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


@dataclass
class SizeProbe:
    """Maximal throughput found for one distribution size."""

    size: int
    throughput: Fraction
    witnesses: tuple[StorageDistribution, ...]
    exact: bool


class ThroughputEvaluator:
    """Memoising throughput oracle for storage distributions."""

    def __init__(self, graph: SDFGraph, observe: str | None, stats: SearchStats | None = None):
        self.graph = graph
        self.observe = observe
        self.stats = stats if stats is not None else SearchStats()
        self._cache: dict[StorageDistribution, Fraction] = {}

    def __call__(self, distribution: StorageDistribution) -> Fraction:
        cached = self._cache.get(distribution)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        result = Executor(self.graph, distribution, self.observe).run()
        self.stats.evaluations += 1
        self.stats.max_states_stored = max(self.stats.max_states_stored, result.states_stored)
        self._cache[distribution] = result.throughput
        return result.throughput

    @property
    def evaluations(self) -> dict[StorageDistribution, Fraction]:
        """All evaluated distributions with their throughputs."""
        return dict(self._cache)


class SizeSearch:
    """Throughput-dimension search for a fixed channel bound box."""

    def __init__(
        self,
        graph: SDFGraph,
        observe: str | None,
        lower: Mapping[str, int],
        upper: Mapping[str, int],
        evaluator: ThroughputEvaluator,
    ):
        self.graph = graph
        self.channels = graph.channel_names
        self.lower = dict(lower)
        self.upper = dict(upper)
        self.evaluator = evaluator

    def _scan(self, size: int) -> Iterator[tuple[StorageDistribution, Fraction]]:
        """Yield ``(distribution, throughput)`` in enumeration order.

        With a plain evaluator this is the serial loop.  With a
        parallel :class:`~repro.buffers.evalcache.EvaluationService`
        the enumeration is consumed in growing waves whose members are
        evaluated as one batch; yielding still follows enumeration
        order, so callers that stop early (the ``stop_at`` exit, a
        threshold hit) make identical decisions either way — at most
        the tail of the current wave is evaluated speculatively, and
        those results land in the shared cache rather than being lost.
        """
        generator = distributions_of_size(self.channels, size, self.lower, self.upper)
        evaluate_many = getattr(self.evaluator, "evaluate_many", None)
        workers = getattr(self.evaluator, "workers", 1)
        if evaluate_many is None or workers <= 1:
            for distribution in generator:
                yield distribution, self.evaluator(distribution)
            return
        wave = 4 * workers
        while True:
            batch = list(islice(generator, wave))
            if not batch:
                return
            yield from zip(batch, evaluate_many(batch))
            wave = min(2 * wave, 64 * workers)

    # -- exact scan -----------------------------------------------------
    def max_throughput_for_size(self, size: int, stop_at: Fraction | None = None) -> SizeProbe:
        """Exact maximum over all distributions of *size*.

        *stop_at* is an a-priori upper bound (the graph's maximal
        throughput); reaching it ends the scan early.
        """
        self.evaluator.stats.sizes_probed += 1
        best = Fraction(0)
        witnesses: list[StorageDistribution] = []
        for distribution, value in self._scan(size):
            if value > best:
                best = value
                witnesses = [distribution]
            elif value == best and value > 0:
                witnesses.append(distribution)
            if stop_at is not None and best >= stop_at:
                break
        return SizeProbe(size, best, tuple(witnesses), exact=True)

    # -- quantised binary search (the paper's formulation) ---------------
    def threshold_scan(self, size: int, threshold: Fraction) -> StorageDistribution | None:
        """First distribution of *size* with throughput >= *threshold*."""
        self.evaluator.stats.threshold_scans += 1
        for distribution, value in self._scan(size):
            if value >= threshold:
                return distribution
        return None

    def quantized_max_for_size(
        self,
        size: int,
        low: Fraction,
        high: Fraction,
        quantum: Fraction,
    ) -> SizeProbe:
        """Binary search over the throughput grid ``k * quantum``.

        *low* is a throughput known to be achievable at this size (0
        initially, or the value of a smaller size — the paper's
        incremental lower bound); *high* the maximal throughput of the
        graph.  Returns the best distribution found; its throughput is
        exact, and no distribution of this size exceeds it by a full
        quantum.
        """
        self.evaluator.stats.sizes_probed += 1
        best = low
        witness: StorageDistribution | None = None
        grid_low = quantize_down(best, quantum)
        grid_high = quantize_down(high, quantum)
        while grid_low < grid_high:
            middle = quantize_down(grid_low + (grid_high - grid_low + quantum) / 2, quantum)
            found = self.threshold_scan(size, middle)
            if found is not None:
                best = max(best, self.evaluator(found))
                witness = found
                grid_low = quantize_down(best, quantum)
                if best >= high:
                    break
            else:
                grid_high = middle - quantum
        witnesses = (witness,) if witness is not None else ()
        return SizeProbe(size, best, witnesses, exact=False)


def exhaustive_sweep(
    graph: SDFGraph,
    observe: str | None,
    lower: Mapping[str, int],
    upper: Mapping[str, int],
    max_throughput: Fraction,
    evaluator: ThroughputEvaluator | None = None,
    stop_early: bool = True,
) -> tuple[dict[int, SizeProbe], SearchStats]:
    """Scan every size in ``[sz(lb), sz(ub)]``; stop once the maximum is hit.

    With ``stop_early`` disabled each size is scanned to completion, so
    every tied witness of the per-size maximum is collected (needed to
    exhibit non-unique minimal storage distributions, Fig. 6).
    """
    evaluator = evaluator or ThroughputEvaluator(graph, observe)
    search = SizeSearch(graph, observe, lower, upper, evaluator)
    low_size = sum(lower.values())
    high_size = sum(upper.values())
    probes: dict[int, SizeProbe] = {}
    for size in range(low_size, high_size + 1):
        probe = search.max_throughput_for_size(
            size, stop_at=max_throughput if stop_early else None
        )
        probes[size] = probe
        if probe.throughput >= max_throughput:
            break
    return probes, evaluator.stats


def divide_and_conquer(
    graph: SDFGraph,
    observe: str | None,
    lower: Mapping[str, int],
    upper: Mapping[str, int],
    max_throughput: Fraction,
    evaluator: ThroughputEvaluator | None = None,
    quantum: Fraction | None = None,
) -> tuple[dict[int, SizeProbe], SearchStats]:
    """The paper's strategy: recursive halving of the size interval.

    The maximal throughput is computed for both ends of the meaningful
    size interval; when they agree, monotonicity guarantees no Pareto
    point lies strictly inside and the interval is skipped.  With a
    *quantum*, the per-size search uses the quantised binary search in
    the throughput dimension, with the smaller size's result serving
    as the incremental lower bound (Sec. 9).
    """
    evaluator = evaluator or ThroughputEvaluator(graph, observe)
    search = SizeSearch(graph, observe, lower, upper, evaluator)
    low_size = sum(lower.values())
    high_size = sum(upper.values())
    probes: dict[int, SizeProbe] = {}

    def probe(size: int, known_low: Fraction) -> SizeProbe:
        if size not in probes:
            if quantum is None:
                probes[size] = search.max_throughput_for_size(size, stop_at=max_throughput)
            else:
                probes[size] = search.quantized_max_for_size(size, known_low, max_throughput, quantum)
        return probes[size]

    first = probe(low_size, Fraction(0))
    last = probe(high_size, first.throughput)

    def recurse(left: SizeProbe, right: SizeProbe) -> None:
        if right.size - left.size <= 1 or left.throughput == right.throughput:
            return
        middle = probe((left.size + right.size) // 2, left.throughput)
        recurse(left, middle)
        recurse(middle, right)

    recurse(first, last)
    return probes, evaluator.stats
