"""The paper's design-space search strategies (Sec. 9).

Two cooperating searches:

* **size dimension** — either a plain sweep over every size in
  ``[lb, ub]`` or the paper's divide-and-conquer: compute the maximal
  throughput at both interval ends; equal values mean (by monotonicity
  of throughput in capacity) that no Pareto point lies strictly
  inside, otherwise recurse on the halves;

* **throughput dimension** — for one size, find the maximal
  throughput over all distributions of that size.  The exact variant
  scans the full enumeration (early-exiting when the global maximum is
  reached); the quantised variant performs the paper's binary search
  over a throughput grid, where each probe only scans until *some*
  distribution reaches the threshold.

Both strategies share a memoising evaluator so a distribution is never
simulated twice.  The evaluator may be the plain
:class:`ThroughputEvaluator` below or the richer
:class:`~repro.buffers.evalcache.EvaluationService`; with the latter,
the per-size scans fan their independent probes out to a process pool
in enumeration-ordered waves, so results (including early exits and
witness selection) are bit-identical to the serial scan.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from fractions import Fraction
from itertools import islice
from collections.abc import Callable, Iterator, Mapping

from repro.buffers.distribution import StorageDistribution
from repro.buffers.enumerate import distributions_of_size
from repro.buffers.quantize import quantize_down
from repro.engine.executor import Executor
from repro.graph.graph import SDFGraph


@dataclass
class SearchStats:
    """Bookkeeping shared by the search strategies."""

    evaluations: int = 0
    max_states_stored: int = 0
    sizes_probed: int = 0
    threshold_scans: int = 0
    cache_hits: int = 0

    def to_dict(self) -> dict:
        """All counters as a JSON-ready dict (subclass fields included)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SearchStats":
        """Inverse of :meth:`to_dict`; unknown keys are ignored so newer
        checkpoints load into older stats layouts."""
        known = {field.name for field in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


@dataclass
class SizeProbe:
    """Maximal throughput found for one distribution size."""

    size: int
    throughput: Fraction
    witnesses: tuple[StorageDistribution, ...]
    exact: bool


class ThroughputEvaluator:
    """Memoising throughput oracle for storage distributions."""

    def __init__(self, graph: SDFGraph, observe: str | None, stats: SearchStats | None = None):
        self.graph = graph
        self.observe = observe
        self.stats = stats if stats is not None else SearchStats()
        self._cache: dict[StorageDistribution, Fraction] = {}

    def __call__(self, distribution: StorageDistribution) -> Fraction:
        cached = self._cache.get(distribution)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        result = Executor(self.graph, distribution, self.observe).run()
        self.stats.evaluations += 1
        self.stats.max_states_stored = max(self.stats.max_states_stored, result.states_stored)
        self._cache[distribution] = result.throughput
        return result.throughput

    @property
    def evaluations(self) -> dict[StorageDistribution, Fraction]:
        """All evaluated distributions with their throughputs."""
        return dict(self._cache)


class SizeSearch:
    """Throughput-dimension search for a fixed channel bound box."""

    def __init__(
        self,
        graph: SDFGraph,
        observe: str | None,
        lower: Mapping[str, int],
        upper: Mapping[str, int],
        evaluator: ThroughputEvaluator,
    ):
        self.graph = graph
        self.channels = graph.channel_names
        self.lower = dict(lower)
        self.upper = dict(upper)
        self.evaluator = evaluator

    def _cutter(self) -> Callable[[StorageDistribution, Fraction], bool] | None:
        """The evaluator's bounds-oracle cut test, if it offers one."""
        if getattr(self.evaluator, "bounds_enabled", False):
            return self.evaluator.cuts_below
        return None

    def _scan(
        self,
        size: int,
        skip: Callable[[StorageDistribution], bool] | None = None,
    ) -> Iterator[tuple[StorageDistribution, Fraction]]:
        """Yield ``(distribution, throughput)`` in enumeration order.

        With a plain evaluator this is the serial loop.  With a
        parallel :class:`~repro.buffers.evalcache.EvaluationService`
        the enumeration is consumed in growing waves whose members are
        evaluated as one batch; yielding still follows enumeration
        order, so callers that stop early (the ``stop_at`` exit, a
        threshold hit) make identical decisions either way — at most
        the tail of the current wave is evaluated speculatively, and
        those results land in the shared cache rather than being lost.

        *skip* drops candidates without evaluating (or yielding) them —
        the bounds-oracle cut.  Serially it is consulted per candidate
        with the caller's freshest state; in wave mode at batch-build
        time, which is merely conservative (fewer cuts, same results).
        """
        generator = distributions_of_size(self.channels, size, self.lower, self.upper)
        evaluate_many = getattr(self.evaluator, "evaluate_many", None)
        workers = getattr(self.evaluator, "workers", 1)
        batch_size = getattr(self.evaluator, "batch_size", 0)
        if evaluate_many is None or (workers <= 1 and batch_size <= 0):
            for distribution in generator:
                if skip is not None and skip(distribution):
                    continue
                yield distribution, self.evaluator(distribution)
            return
        if batch_size > 0:
            # Lock-step backends amortise per-call overhead over lanes:
            # start at the configured width, cap well above it so hot
            # slices fill wide waves.
            wave, cap = batch_size, 16 * batch_size
        else:
            wave, cap = 4 * workers, 64 * workers
        while True:
            chunk = list(islice(generator, wave))
            if not chunk:
                return
            batch = chunk if skip is None else [d for d in chunk if not skip(d)]
            if batch:
                yield from zip(batch, evaluate_many(batch))
            wave = min(2 * wave, cap)

    # -- exact scan -----------------------------------------------------
    def max_throughput_for_size(self, size: int, stop_at: Fraction | None = None) -> SizeProbe:
        """Exact maximum over all distributions of *size*.

        *stop_at* is an a-priori upper bound (the graph's maximal
        throughput); reaching it ends the scan early.
        """
        self.evaluator.stats.sizes_probed += 1
        best = Fraction(0)
        witnesses: list[StorageDistribution] = []
        cut = self._cutter()
        skip = None
        if cut is not None:
            # Strictly-below cut: a candidate provably below the running
            # best cannot become a witness (ties are never cut), so the
            # probe value and witness tuple are identical with or
            # without the oracle.
            def skip(distribution: StorageDistribution) -> bool:
                return best > 0 and cut(distribution, best)

        for distribution, value in self._scan(size, skip):
            if value > best:
                best = value
                witnesses = [distribution]
            elif value == best and value > 0:
                witnesses.append(distribution)
            if stop_at is not None and best >= stop_at:
                break
        return SizeProbe(size, best, tuple(witnesses), exact=True)

    def _promote(
        self, distribution: StorageDistribution, rotation: int = 0
    ) -> StorageDistribution | None:
        """*distribution* plus one token on one channel with headroom.

        The walk's seeding move: evaluating this superset either proves
        the candidate dominated (and its record covers the candidate's
        sibling candidates for oracle cuts) or costs one extra
        simulation.  *rotation* round-robins the chosen channel across
        promotions: a fixed channel choice makes consecutive slices
        shadow each other — every record one slice's promotions create
        is exactly a vector the next slice's promotions have already
        memoised, so no cut ever lands on a fresh candidate.  Rotating
        the channel spreads the records' dominance cones over the whole
        slice instead.
        """
        names = self.channels
        count = len(names)
        for offset in range(count):
            name = names[(rotation + offset) % count]
            if distribution[name] < self.upper[name]:
                return distribution.incremented(name)
        return None

    def ascending_probe(
        self, size: int, prev: Fraction, stop_at: Fraction | None = None
    ) -> SizeProbe:
        """Exact maximum at *size*, given the exact maximum *prev* of
        ``size - 1``.

        Monotonicity gives ``max(size) >= prev``, and any witness of
        this size merely tying a value already reached at a smaller
        size is dominated on the front.  Together these license a
        *non-strict* oracle cut against *prev* on top of the strict cut
        against the running best: a candidate provably ``<= prev``
        cannot change the probe value (which is at least *prev*) and
        cannot be a front witness.  The value returned is exact either
        way, and whenever it exceeds *prev* — the only case in which
        the probe can appear on the front — the witness tuple is the
        complete tie set, identical to the full scan's.

        When a candidate is not yet covered, its *promotion* (one token
        added, :meth:`_promote`) is evaluated first: a promoted result
        at or below *prev* settles the candidate for the same single
        simulation a direct evaluation would have cost, and its record
        additionally covers the candidate's remaining in-box neighbours
        below it, so later candidates fall to the oracle cut for free.
        A short failure budget disables promotion on slices where the
        level above carries mostly higher throughput.
        """
        self.evaluator.stats.sizes_probed += 1
        cut = self._cutter()
        if cut is None:
            return self.max_throughput_for_size(size, stop_at)
        best = Fraction(0)
        witnesses: list[StorageDistribution] = []

        def skip(distribution: StorageDistribution) -> bool:
            if cut(distribution, prev, strict=False):
                return True
            return best > prev and cut(distribution, best)

        serial = getattr(self.evaluator, "evaluate_many", None) is None or (
            getattr(self.evaluator, "workers", 1) <= 1
            and getattr(self.evaluator, "batch_size", 0) <= 0
        )
        if serial:
            peek = getattr(self.evaluator, "cached_throughput", None)
            promotions = 0
            failures = 0
            for distribution in distributions_of_size(
                self.channels, size, self.lower, self.upper
            ):
                value = peek(distribution) if peek is not None else None
                if value is None:
                    if skip(distribution):
                        continue
                    if failures <= 16 + promotions // 4:
                        grown = self._promote(distribution, promotions)
                        if grown is not None:
                            promotions += 1
                            above = self.evaluator(grown)
                            if above <= prev or above < best:
                                continue
                            failures += 1
                    value = self.evaluator(distribution)
                if value > best:
                    best = value
                    witnesses = [distribution]
                elif value == best and value > 0:
                    witnesses.append(distribution)
                if stop_at is not None and best >= stop_at:
                    break
        else:
            # The parallel wave path keeps its existing cut semantics;
            # promotion is a serial-scan refinement (it would serialise
            # the waves) and speculation covers the pool instead.
            for distribution, value in self._scan(size, skip):
                if value > best:
                    best = value
                    witnesses = [distribution]
                elif value == best and value > 0:
                    witnesses.append(distribution)
                if stop_at is not None and best >= stop_at:
                    break
        if best < prev:
            # Every candidate was either cut (provably <= prev) or
            # evaluated below prev, yet max(size) >= max(size-1): the
            # maximum is exactly prev, achieved only by cut candidates.
            # Such a probe is dominated by the smaller size's, so it
            # never reaches the front and needs no witnesses.
            return SizeProbe(size, prev, (), exact=True)
        return SizeProbe(size, best, tuple(witnesses), exact=True)

    # -- quantised binary search (the paper's formulation) ---------------
    def threshold_scan(self, size: int, threshold: Fraction) -> StorageDistribution | None:
        """First distribution of *size* with throughput >= *threshold*."""
        self.evaluator.stats.threshold_scans += 1
        cut = self._cutter()
        skip = None
        if cut is not None:
            # A candidate provably below the threshold can never be the
            # first to reach it, so skipping preserves the answer.
            def skip(distribution: StorageDistribution) -> bool:
                return cut(distribution, threshold)

        for distribution, value in self._scan(size, skip):
            if value >= threshold:
                return distribution
        return None

    def quantized_max_for_size(
        self,
        size: int,
        low: Fraction,
        high: Fraction,
        quantum: Fraction,
    ) -> SizeProbe:
        """Binary search over the throughput grid ``k * quantum``.

        *low* is a throughput known to be achievable at this size (0
        initially, or the value of a smaller size — the paper's
        incremental lower bound); *high* the maximal throughput of the
        graph.  Returns the best distribution found; its throughput is
        exact, and no distribution of this size exceeds it by a full
        quantum.
        """
        self.evaluator.stats.sizes_probed += 1
        best = low
        witness: StorageDistribution | None = None
        grid_low = quantize_down(best, quantum)
        grid_high = quantize_down(high, quantum)
        while grid_low < grid_high:
            middle = quantize_down(grid_low + (grid_high - grid_low + quantum) / 2, quantum)
            found = self.threshold_scan(size, middle)
            if found is not None:
                best = max(best, self.evaluator(found))
                witness = found
                grid_low = quantize_down(best, quantum)
                if best >= high:
                    break
            else:
                grid_high = middle - quantum
        witnesses = (witness,) if witness is not None else ()
        return SizeProbe(size, best, witnesses, exact=False)


def _wisher(
    graph: SDFGraph,
    lower: Mapping[str, int],
    upper: Mapping[str, int],
    evaluator: ThroughputEvaluator,
    probed: Mapping[int, SizeProbe] | None = None,
) -> Callable[[int], None]:
    """A ``wish(size)`` hook seeding speculative probes for one slice.

    Sends the head of *size*'s enumeration (one pool wave's — or, in
    batch mode, one lane wave's — worth) to
    :meth:`EvaluationService.speculate`.  A no-op callable when the
    evaluator does not speculate, so strategies call it unconditionally.
    """
    if not getattr(evaluator, "speculate_enabled", False):
        return lambda size: None
    low_size = sum(lower.values())
    high_size = sum(upper.values())
    batch_size = getattr(evaluator, "batch_size", 0)
    head = batch_size if batch_size > 0 else 4 * getattr(evaluator, "workers", 1)

    def wish(size: int) -> None:
        if size < low_size or size > high_size:
            return
        if probed is not None and size in probed:
            return
        evaluator.speculate(
            islice(distributions_of_size(graph.channel_names, size, lower, upper), head)
        )

    return wish


def exhaustive_sweep(
    graph: SDFGraph,
    observe: str | None,
    lower: Mapping[str, int],
    upper: Mapping[str, int],
    max_throughput: Fraction,
    evaluator: ThroughputEvaluator | None = None,
    stop_early: bool = True,
) -> tuple[dict[int, SizeProbe], SearchStats]:
    """Scan every size in ``[sz(lb), sz(ub)]``; stop once the maximum is hit.

    With ``stop_early`` disabled each size is scanned to completion, so
    every tied witness of the per-size maximum is collected (needed to
    exhibit non-unique minimal storage distributions, Fig. 6).
    """
    evaluator = evaluator or ThroughputEvaluator(graph, observe)
    search = SizeSearch(graph, observe, lower, upper, evaluator)
    low_size = sum(lower.values())
    high_size = sum(upper.values())
    wish = _wisher(graph, lower, upper, evaluator)
    probes: dict[int, SizeProbe] = {}
    for size in range(low_size, high_size + 1):
        if size < high_size:
            wish(size + 1)  # warm the next slice while this one scans
        probe = search.max_throughput_for_size(
            size, stop_at=max_throughput if stop_early else None
        )
        probes[size] = probe
        if probe.throughput >= max_throughput:
            break
    return probes, evaluator.stats


def divide_and_conquer(
    graph: SDFGraph,
    observe: str | None,
    lower: Mapping[str, int],
    upper: Mapping[str, int],
    max_throughput: Fraction,
    evaluator: ThroughputEvaluator | None = None,
    quantum: Fraction | None = None,
) -> tuple[dict[int, SizeProbe], SearchStats]:
    """The paper's strategy: recursive halving of the size interval.

    The maximal throughput is computed for both ends of the meaningful
    size interval; when they agree, monotonicity guarantees no Pareto
    point lies strictly inside and the interval is skipped.  With a
    *quantum*, the per-size search uses the quantised binary search in
    the throughput dimension, with the smaller size's result serving
    as the incremental lower bound (Sec. 9).
    """
    evaluator = evaluator or ThroughputEvaluator(graph, observe)
    search = SizeSearch(graph, observe, lower, upper, evaluator)
    low_size = sum(lower.values())
    high_size = sum(upper.values())
    probes: dict[int, SizeProbe] = {}
    # With the bounds oracle on, the midpoint recursion is replaced by
    # an ascending walk: each size is scanned knowing the exact maximum
    # of the size below, which licenses the non-strict oracle cut and
    # promotion seeding of ascending_probe.  The walk stops at the
    # first size reaching the box maximum (all larger sizes are then
    # dominated by it).  Probe values are exact in both modes and the
    # minimal size of each throughput value carries its complete
    # witness tuple, so the resulting front is bit-identical.
    bounds_first = quantum is None and getattr(evaluator, "bounds_enabled", False)
    wish = _wisher(graph, lower, upper, evaluator, probed=probes)

    def probe(size: int, known_low: Fraction) -> SizeProbe:
        if size not in probes:
            if quantum is None:
                probes[size] = search.max_throughput_for_size(size, stop_at=max_throughput)
            else:
                probes[size] = search.quantized_max_for_size(size, known_low, max_throughput, quantum)
        return probes[size]

    if bounds_first:
        wish(low_size)
        last = probe(high_size, Fraction(0))
        previous = probe(low_size, Fraction(0))
        for size in range(low_size + 1, high_size):
            if previous.throughput >= last.throughput:
                break
            # Warm the next slice while this one scans on the demand path.
            wish(size + 1)
            previous = probes[size] = search.ascending_probe(
                size, previous.throughput, stop_at=max_throughput
            )
        return probes, evaluator.stats

    first = probe(low_size, Fraction(0))
    last = probe(high_size, first.throughput)

    def recurse(left: SizeProbe, right: SizeProbe) -> None:
        if right.size - left.size <= 1 or left.throughput == right.throughput:
            return
        middle_size = (left.size + right.size) // 2
        # Warm the midpoint the recursion will want next while the
        # current one scans on the demand path.
        wish((left.size + middle_size) // 2)
        middle = probe(middle_size, left.throughput)
        recurse(left, middle)
        recurse(middle, right)

    recurse(first, last)
    return probes, evaluator.stats
