"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError` so applications can catch library failures with a
single ``except`` clause while still distinguishing the common cases.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A structural problem with an SDF graph definition.

    Raised for duplicate names, dangling channel endpoints, non-positive
    rates, negative execution times and similar construction mistakes.
    """


class ValidationError(GraphError):
    """A graph failed one of the structural validation checks."""


class InconsistentGraphError(ReproError):
    """The SDF graph has no non-trivial repetition vector.

    Inconsistent graphs cannot execute indefinitely within bounded
    memory (Lee, 1991); buffer sizing is undefined for them and every
    analysis entry point rejects them with this error.
    """


class DeadlockError(ReproError):
    """An execution deadlocked where progress was required.

    Carries the :attr:`time` at which the deadlock was detected, when
    known.
    """

    def __init__(self, message: str, time: int | None = None):
        super().__init__(message)
        self.time = time


class EngineError(ReproError):
    """The execution engine hit a guard limit.

    Raised for diverging zero-execution-time firing cascades within a
    single time instant and for runs exceeding a user-supplied step
    limit.
    """


class CapacityError(ReproError):
    """A storage distribution is malformed or violates channel bounds."""


class ExplorationError(ReproError):
    """The design-space exploration was given unusable parameters."""


class ConfigError(ExplorationError):
    """An :class:`~repro.runtime.config.ExplorationConfig` is unusable.

    Raised at *construction* time — an unknown probe backend name, a
    backend lacking a capability the selected engine requires, a
    negative batch width.  Failing up front is deliberate: a run must
    never silently degrade to a different backend mid-flight, because
    the whole point of the backend seam is that results are
    bit-identical and the operator knows which kernel produced them.
    """


class BudgetExhausted(ReproError):
    """A run-controller budget tripped during an exploration.

    Raised cooperatively by the evaluation layer when a wall-clock
    deadline passes, a probe budget is spent or a cancel token fires.
    :func:`repro.buffers.explorer.explore_design_space` catches it and
    returns a partial result flagged ``complete=False``; it only
    escapes to callers driving an
    :class:`~repro.buffers.evalcache.EvaluationService` directly.
    Carries the :attr:`reason` (``"deadline"``, ``"probes"`` or
    ``"cancelled"``).
    """

    def __init__(self, message: str, reason: str = "budget"):
        super().__init__(message)
        self.reason = reason


class CheckpointError(ReproError):
    """A checkpoint / resume token is malformed or does not match.

    Raised when loading a checkpoint written for a different graph,
    channel set or format version, or when the payload is not valid
    checkpoint JSON.
    """


class ParseError(ReproError):
    """An input file (XML / JSON graph description) could not be parsed."""


class ServiceError(ReproError):
    """A request to the analysis service failed.

    Raised by the HTTP layer of :mod:`repro.service` for malformed
    requests, unknown graphs or jobs, and a full job queue; the
    blocking client re-raises the server's rendering of it.  Carries
    the HTTP :attr:`status` the failure maps to, a machine-readable
    :attr:`code` (the ``error.code`` field of the v1 error envelope)
    and, when known, the :attr:`trace_id` of the failing request.
    """

    #: Default ``error.code`` per HTTP status, used when no explicit
    #: code is given (and by the client when a legacy server omits it).
    STATUS_CODES = {
        400: "bad_request",
        404: "not_found",
        409: "conflict",
        429: "rate_limited",
        500: "internal",
        503: "unavailable",
        504: "timeout",
    }

    def __init__(
        self,
        message: str,
        status: int = 400,
        *,
        code: str | None = None,
        trace_id: str | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code if code is not None else self.STATUS_CODES.get(status, "error")
        self.trace_id = trace_id


class ServiceUnavailable(ServiceError):
    """The service is shedding load (HTTP 503).

    Raised for a full job queue, an open circuit breaker or a draining
    server.  :attr:`retry_after_s` carries the server's backoff hint
    (the ``Retry-After`` header) when one was given.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str | None = None,
        trace_id: str | None = None,
        retry_after_s: float | None = None,
    ):
        super().__init__(message, status=503, code=code or "unavailable", trace_id=trace_id)
        self.retry_after_s = retry_after_s


class RateLimited(ServiceError):
    """A per-class admission cap rejected the request (HTTP 429)."""

    def __init__(
        self,
        message: str,
        *,
        trace_id: str | None = None,
        retry_after_s: float | None = None,
    ):
        super().__init__(message, status=429, code="rate_limited", trace_id=trace_id)
        self.retry_after_s = retry_after_s


class JobFailed(ServiceError):
    """A job settled ``failed`` when the caller required success.

    Raised client-side by :meth:`~repro.service.client.ServiceClient
    .result`; :attr:`job` holds the full job rendering (including the
    server's ``error`` string).
    """

    def __init__(self, message: str, job: dict | None = None):
        super().__init__(message, status=500, code="job_failed")
        self.job = job


class JobPartial(ServiceError):
    """A job settled ``partial`` when the caller required completion.

    The budget (deadline / probe cap) tripped; :attr:`job` carries the
    exact partial result and the exhaustion reason, so callers can
    resubmit with a larger budget or consume the partial front.
    """

    def __init__(self, message: str, job: dict | None = None):
        super().__init__(message, status=206, code="job_partial")
        self.job = job


class AnalysisError(ReproError):
    """A graph analysis could not be completed.

    For example: requesting the maximum cycle mean of an acyclic
    homogeneous graph, or an HSDF expansion that exceeds a safety limit.
    """
