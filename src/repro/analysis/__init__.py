"""Classical SDF analyses.

* :mod:`repro.analysis.repetitions` — balance equations / repetition
  vector (Lee & Messerschmitt, 1987),
* :mod:`repro.analysis.consistency` — consistency checking (Lee, 1991),
* :mod:`repro.analysis.deadlock` — unbounded-storage deadlock-freedom,
* :mod:`repro.analysis.hsdf` — SDF to homogeneous-SDF expansion,
* :mod:`repro.analysis.mcm` — maximum cycle ratio (max cycle mean),
* :mod:`repro.analysis.throughput` — exact throughput of a graph under
  a storage distribution via state-space exploration (Secs. 6-7 of the
  paper) and maximal-throughput computation ([GG93] substrate).
"""

from repro.analysis.consistency import assert_consistent, is_consistent
from repro.analysis.deadlock import is_deadlock_free
from repro.analysis.hsdf import HSDFGraph, to_hsdf
from repro.analysis.mcm import maximum_cycle_ratio
from repro.analysis.latency import initial_latency, iteration_latency
from repro.analysis.repetitions import repetition_vector
from repro.analysis.throughput import all_actor_throughputs, max_throughput, throughput

__all__ = [
    "HSDFGraph",
    "all_actor_throughputs",
    "assert_consistent",
    "initial_latency",
    "is_consistent",
    "is_deadlock_free",
    "iteration_latency",
    "max_throughput",
    "maximum_cycle_ratio",
    "repetition_vector",
    "throughput",
    "to_hsdf",
]
