"""Throughput of an SDF graph (Secs. 5-7 of the paper).

``throughput(graph, capacities)`` is the exact average number of
firings per time step of an observed actor under self-timed execution
with the given storage distribution, computed by running the reduced
state space to its cycle.

``max_throughput(graph)`` is the maximal achievable throughput over
*all* storage distributions — the value the paper obtains via [GG93]
and uses as the upper end of its binary search.  Two methods are
provided and cross-validated in the test suite:

* ``"statespace"`` — execute with the conservative upper-bound
  distribution of [GGD02] and verify stability by enlarging it;
* ``"mcm"`` — expand to HSDF and take ``q[a] / MCR`` with the maximum
  cycle ratio restricted to cycles constraining the observed actor.
"""

from __future__ import annotations

from fractions import Fraction
from collections.abc import Callable, Mapping

from repro.analysis.consistency import assert_consistent
from repro.engine.executor import ExecutionResult, Executor, execute
from repro.exceptions import AnalysisError
from repro.graph.graph import SDFGraph


def analyze(
    graph: SDFGraph,
    capacities: Mapping[str, int] | None = None,
    observe: str | None = None,
    *,
    engine: str = "auto",
    **kwargs,
) -> ExecutionResult:
    """Full execution result for *graph* under *capacities*.

    ``engine`` selects the simulation kernel: ``"auto"`` (default) uses
    the fast event-calendar kernel of :mod:`repro.engine.fastcore` for
    uninstrumented runs and falls back to the reference executor when
    any instrumentation keyword is present; ``"fast"`` and
    ``"reference"`` force one of the two.
    """
    assert_consistent(graph)
    return execute(graph, capacities, observe, engine=engine, **kwargs)


def throughput(
    graph: SDFGraph,
    capacities: Mapping[str, int] | None = None,
    observe: str | None = None,
    **kwargs,
) -> Fraction:
    """Exact throughput of the observed actor (0 on deadlock)."""
    return analyze(graph, capacities, observe, **kwargs).throughput


#: Above this many HSDF nodes ``method="auto"`` avoids the exact MCM
#: computation and falls back to the adaptive state-space method.
_AUTO_MCM_NODE_LIMIT = 2000


def all_actor_throughputs(
    graph: SDFGraph,
    capacities: Mapping[str, int] | None = None,
    **kwargs,
) -> dict[str, Fraction]:
    """Throughput of every actor under one storage distribution.

    In a periodic steady state all actors of a weakly connected
    component fire at rates proportional to the repetition vector, so
    one execution per component suffices: the observed actor's
    throughput is scaled by ``q[a] / q[observed]`` for the rest.  A
    deadlocked component reports zero everywhere (a deadlock starves
    every actor of a connected consistent graph eventually).
    """
    import networkx as nx

    from repro.analysis.repetitions import repetition_vector

    q = assert_consistent(graph)
    del q  # consistency guard; per-component vectors computed below
    throughputs: dict[str, Fraction] = {}
    for component in nx.weakly_connected_components(graph.to_networkx()):
        members = [name for name in graph.actor_names if name in component]
        observe = members[-1]
        result = Executor(graph, capacities, observe, **kwargs).run()
        q = repetition_vector(graph)
        base = result.throughput / q[observe]
        for name in members:
            throughputs[name] = base * q[name]
    return throughputs


def max_throughput(
    graph: SDFGraph,
    observe: str | None = None,
    method: str = "auto",
    confirmations: int = 1,
    evaluator: "Callable[[Mapping[str, int]], Fraction] | None" = None,
) -> Fraction:
    """Maximal achievable throughput over all storage distributions.

    Parameters
    ----------
    method:
        ``"auto"`` (default) uses the exact MCM computation when the
        HSDF expansion is small enough and the adaptive state-space
        method otherwise; ``"statespace"`` and ``"mcm"`` force one of
        the two.
    confirmations:
        For the state-space method: how many doublings of the
        upper-bound distribution must leave the throughput unchanged
        before it is accepted.
    evaluator:
        Optional throughput oracle (typically a
        :class:`~repro.buffers.evalcache.EvaluationService`) the
        state-space method routes its executions through, so they are
        memoised and counted alongside an exploration's other probes.
    """
    assert_consistent(graph)
    if observe is None:
        observe = graph.actor_names[-1]
    if method == "auto":
        from repro.analysis.repetitions import repetition_vector

        if sum(repetition_vector(graph).values()) <= _AUTO_MCM_NODE_LIMIT:
            try:
                return _max_throughput_mcm(graph, observe)
            except AnalysisError:
                pass
        return _max_throughput_statespace(graph, observe, max(confirmations, 2), evaluator)
    if method == "mcm":
        return _max_throughput_mcm(graph, observe)
    if method == "statespace":
        return _max_throughput_statespace(graph, observe, confirmations, evaluator)
    raise AnalysisError(f"unknown max-throughput method {method!r}")


def _max_throughput_mcm(graph: SDFGraph, observe: str) -> Fraction:
    # With *finite* storage every channel exerts backpressure, so in
    # steady state all actors of a weakly connected component fire at
    # rates proportional to the repetition vector and the iteration
    # rate is bounded by the slowest cycle anywhere in the component —
    # not only by cycles that reach the observed actor (that weaker
    # restriction describes the unbounded-buffer limit, where an
    # upstream part may outrun its consumers forever).
    import networkx as nx

    from repro.analysis.hsdf import HSDFGraph, to_hsdf
    from repro.analysis.mcm import maximum_cycle_ratio
    from repro.analysis.repetitions import repetition_vector

    q = repetition_vector(graph)
    component = next(
        comp
        for comp in nx.weakly_connected_components(graph.to_networkx())
        if observe in comp
    )
    hsdf = to_hsdf(graph)
    restricted = HSDFGraph(hsdf.name)
    restricted.nodes = {node: time for node, time in hsdf.nodes.items() if node[0] in component}
    restricted.edges = {
        (src, dst): delay for (src, dst), delay in hsdf.edges.items() if src[0] in component
    }
    result = maximum_cycle_ratio(restricted)
    if result.ratio == 0:
        raise AnalysisError(
            f"all cycles constraining {observe!r} have zero execution time;"
            " the throughput is unbounded"
        )
    return Fraction(q[observe]) / result.ratio


def _max_throughput_statespace(
    graph: SDFGraph,
    observe: str,
    confirmations: int,
    evaluator: "Callable[[Mapping[str, int]], Fraction] | None" = None,
) -> Fraction:
    from repro.buffers.bounds import upper_bound_distribution
    from repro.buffers.distribution import StorageDistribution

    if evaluator is None:
        def evaluate(caps: Mapping[str, int]) -> Fraction:
            return Executor(graph, caps, observe).run().throughput
    else:
        def evaluate(caps: Mapping[str, int]) -> Fraction:
            return evaluator(StorageDistribution(caps))

    capacities = dict(upper_bound_distribution(graph))
    best = evaluate(capacities)
    stable = 0
    while stable < confirmations:
        capacities = {name: 2 * value for name, value in capacities.items()}
        enlarged = evaluate(capacities)
        if enlarged == best:
            stable += 1
        else:
            best = enlarged
            stable = 0
    return best
