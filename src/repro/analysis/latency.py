"""Latency metrics (companion analysis to throughput).

The paper optimises throughput; latency is the other timing metric of
its motivating applications ("throughput or latency constraints",
Sec. 1).  Two standard notions are provided for self-timed executions
under a storage distribution:

* **initial latency** — the time until the observed actor completes
  its first firing (e.g. time-to-first-frame);
* **iteration latency** — in steady state, the time from the start of
  an iteration's first source firing to the completion of the same
  iteration's last sink firing (input-to-output delay of one
  iteration's worth of data).

Both are exact, computed from the deterministic schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.analysis.repetitions import repetition_vector
from repro.engine.executor import Executor
from repro.exceptions import AnalysisError
from repro.graph.graph import SDFGraph


@dataclass(frozen=True)
class LatencyReport:
    """Latency metrics of one graph under one storage distribution."""

    source: str
    sink: str
    initial_latency: int
    iteration_latency: int
    iterations_measured: int


def initial_latency(
    graph: SDFGraph, capacities: Mapping[str, int] | None, observe: str | None = None
) -> int:
    """Completion time of the first firing of the observed actor."""
    result = Executor(graph, capacities, observe).run()
    if result.first_firing_time is None:
        raise AnalysisError(
            f"{result.observe!r} never fires under the given storage distribution"
        )
    return result.first_firing_time


def iteration_latency(
    graph: SDFGraph,
    capacities: Mapping[str, int] | None,
    source: str,
    sink: str,
    *,
    iterations: int = 8,
    warmup: int = 4,
) -> LatencyReport:
    """Steady-state source-to-sink latency of one iteration.

    Runs ``warmup + iterations`` iterations, measures, for each
    iteration ``k`` past the warm-up, the span from the start of the
    iteration's first *source* firing to the end of its last *sink*
    firing, and checks the value has stabilised (it must, since the
    schedule is periodic).
    """
    q = repetition_vector(graph)
    if source not in graph.actors or sink not in graph.actors:
        raise AnalysisError("unknown source or sink actor")
    total = warmup + iterations
    executor = Executor(graph, capacities, sink, record_schedule=True)
    schedule = executor.run_until_firings(total * q[sink])

    source_starts = schedule.start_times(source)
    sink_events = schedule.firings(sink)
    spans = []
    for k in range(warmup, total):
        first_source = source_starts[k * q[source]]
        last_sink = sink_events[(k + 1) * q[sink] - 1].end
        spans.append(last_sink - first_source)
    stable = spans[len(spans) // 2 :]
    if len(set(stable)) != 1:
        # A periodic schedule can alternate between a small set of
        # iteration shapes when the period spans several iterations;
        # report the maximum (the conservative latency).
        value = max(stable)
    else:
        value = stable[0]

    first = Executor(graph, capacities, sink).run().first_firing_time
    assert first is not None
    return LatencyReport(
        source=source,
        sink=sink,
        initial_latency=first,
        iteration_latency=value,
        iterations_measured=len(stable),
    )
