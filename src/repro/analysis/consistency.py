"""Consistency checking.

A graph is *consistent* when its balance equations admit a non-trivial
solution.  Only consistent graphs allow a deadlock-free execution
within bounded memory (Lee, 1991), so all buffer-sizing entry points of
the library check consistency first (Sec. 3 of the paper restricts
attention to consistent graphs for the same reason).
"""

from __future__ import annotations

from repro.exceptions import InconsistentGraphError
from repro.analysis.repetitions import repetition_vector
from repro.graph.graph import SDFGraph


def is_consistent(graph: SDFGraph) -> bool:
    """Whether the balance equations have a non-trivial solution."""
    try:
        repetition_vector(graph)
    except InconsistentGraphError:
        return False
    return True


def assert_consistent(graph: SDFGraph) -> dict[str, int]:
    """Return the repetition vector, raising if the graph is inconsistent.

    This is the standard entry-point guard used by analyses that are
    only defined for consistent graphs.
    """
    return repetition_vector(graph)
