"""Consistency checking.

A graph is *consistent* when its balance equations admit a non-trivial
solution.  Only consistent graphs allow a deadlock-free execution
within bounded memory (Lee, 1991), so all buffer-sizing entry points of
the library check consistency first (Sec. 3 of the paper restricts
attention to consistent graphs for the same reason).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from repro.exceptions import InconsistentGraphError
from repro.analysis.repetitions import repetition_vector
from repro.graph.graph import SDFGraph


@dataclass
class ConsistencyStats:
    """Counters for the per-graph consistency memo (observability aid)."""

    computations: int = 0
    hits: int = 0

    def reset(self) -> None:
        self.computations = 0
        self.hits = 0


#: Process-wide counters: ``computations`` increments once per distinct
#: graph (per structural shape), ``hits`` once per memoised answer.
consistency_stats = ConsistencyStats()

# Verdict memo keyed weakly by graph identity.  The value records the
# graph's shape at verification time so a structurally modified graph
# (more actors/channels added after the first check) is re-verified
# rather than served a stale verdict.  The verdict itself is either the
# repetition vector or the InconsistentGraphError to re-raise.
_VERDICTS: "weakref.WeakKeyDictionary[SDFGraph, tuple[tuple[int, int], dict[str, int] | InconsistentGraphError]]" = (
    weakref.WeakKeyDictionary()
)


def _verdict(graph: SDFGraph) -> dict[str, int] | InconsistentGraphError:
    shape = (len(graph.actors), len(graph.channels))
    cached = _VERDICTS.get(graph)
    if cached is not None and cached[0] == shape:
        consistency_stats.hits += 1
        return cached[1]
    consistency_stats.computations += 1
    verdict: dict[str, int] | InconsistentGraphError
    try:
        verdict = repetition_vector(graph)
    except InconsistentGraphError as exc:
        verdict = exc
    _VERDICTS[graph] = (shape, verdict)
    return verdict


def is_consistent(graph: SDFGraph) -> bool:
    """Whether the balance equations have a non-trivial solution."""
    return not isinstance(_verdict(graph), InconsistentGraphError)


def assert_consistent(graph: SDFGraph) -> dict[str, int]:
    """Return the repetition vector, raising if the graph is inconsistent.

    This is the standard entry-point guard used by analyses that are
    only defined for consistent graphs.  The verdict is memoised per
    graph (weakly keyed, invalidated when the actor/channel counts
    change), so exploration loops that probe thousands of storage
    distributions verify each graph once; :data:`consistency_stats`
    counts computations versus memo hits.
    """
    verdict = _verdict(graph)
    if isinstance(verdict, InconsistentGraphError):
        raise verdict
    return dict(verdict)
