"""SDF to homogeneous SDF (HSDF) expansion.

Every actor ``a`` of the SDF graph is replaced by ``q[a]`` copies
``(a, 0) .. (a, q[a]-1)``, one per firing within an iteration, and
every token-level dependency becomes a rate-1 edge carrying an
iteration *delay* (number of initial tokens on the HSDF edge).  The
expansion (Sriram & Bhattacharyya) is the substrate for the
maximum-cycle-ratio computation of the maximal achievable throughput
([GG93], used by the paper in Sec. 9 as the upper bound of the
throughput binary search).

Derivation of the dependency formula used below.  Number firings
globally from 1 and tokens in FIFO order, initial tokens being numbers
``1..d``.  Consumer firing ``J`` consumes tokens ``(J-1)*c+1 .. J*c``;
its binding dependency is on the producer firing that produces token
``J*c``, i.e. global producer firing ``K = ceil((J*c - d)/p)``.
Writing ``J = m*q_dst + v + 1`` (copy ``v``, iteration ``m``) and using
the balance equation ``q_dst*c == q_src*p`` gives
``K = m*q_src + K0`` with ``K0 = ceil(((v+1)*c - d)/p)`` independent of
``m``.  Hence the HSDF edge runs from producer copy
``u = (K0-1) mod q_src`` to consumer copy ``v`` with delay
``delta = -((K0-1) // q_src)`` (floor division), which is 0 for
``1 <= K0 <= q_src`` and grows by one per iteration the dependency
reaches back.  ``K0 <= 0`` for all ``v`` (i.e. ``d >= q_dst*c``) means
the channel imposes no steady-state dependency at all and no edge is
added.

A per-actor cycle ``(a,0) -> (a,1) -> .. -> (a,q[a]-1) -> (a,0)`` with
one token on the closing edge encodes the no-auto-concurrency rule of
the execution model (Sec. 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

from repro.analysis.repetitions import repetition_vector
from repro.exceptions import AnalysisError
from repro.graph.graph import SDFGraph

#: Refuse to build HSDF graphs larger than this many nodes by default;
#: expansions are quadratic-ish in memory and the caller should opt in.
DEFAULT_NODE_LIMIT = 200_000


@dataclass
class HSDFGraph:
    """A homogeneous SDF graph produced by :func:`to_hsdf`.

    ``nodes`` maps ``(actor, copy)`` to the actor's execution time;
    ``edges`` maps ``((src, u), (dst, v))`` to the delay (initial token
    count) of the tightest dependency between the two copies.
    """

    name: str
    nodes: dict[tuple[str, int], int] = field(default_factory=dict)
    edges: dict[tuple[tuple[str, int], tuple[str, int]], int] = field(default_factory=dict)

    def add_edge(self, src: tuple[str, int], dst: tuple[str, int], delay: int) -> None:
        """Insert the edge, keeping only the tightest (minimal) delay."""
        key = (src, dst)
        known = self.edges.get(key)
        if known is None or delay < known:
            self.edges[key] = delay

    @property
    def num_nodes(self) -> int:
        """Number of actor copies."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """Number of (deduplicated) dependency edges."""
        return len(self.edges)

    def copies(self, actor: str) -> list[tuple[str, int]]:
        """All copies of *actor*, in firing order."""
        return sorted(node for node in self.nodes if node[0] == actor)


def to_hsdf(
    graph: SDFGraph,
    *,
    model_auto_concurrency: bool = True,
    node_limit: int = DEFAULT_NODE_LIMIT,
) -> HSDFGraph:
    """Expand *graph* into its homogeneous equivalent.

    Parameters
    ----------
    model_auto_concurrency:
        When true (default, matching the paper's execution model), a
        one-token cycle through each actor's copies serialises its
        firings.
    node_limit:
        Safety bound on the expansion size; exceeded limits raise
        :class:`~repro.exceptions.AnalysisError`.
    """
    q = repetition_vector(graph)
    total_copies = sum(q.values())
    if total_copies > node_limit:
        raise AnalysisError(
            f"HSDF expansion of {graph.name!r} needs {total_copies} nodes,"
            f" above the limit of {node_limit}"
        )

    hsdf = HSDFGraph(f"{graph.name}-hsdf")
    for actor in graph.actors.values():
        for copy in range(q[actor.name]):
            hsdf.nodes[(actor.name, copy)] = actor.execution_time

    for channel in graph.channels.values():
        q_src = q[channel.source]
        q_dst = q[channel.destination]
        p = channel.production
        c = channel.consumption
        d = channel.initial_tokens
        for v in range(q_dst):
            k0 = ceil(((v + 1) * c - d) / p)
            # For k0 <= 0 the dependency reaches back one or more
            # iterations; the (positive) delay below encodes that, and
            # occurrences with m - delay < 0 are vacuously satisfied by
            # the initial tokens.
            u = (k0 - 1) % q_src
            delay = -((k0 - 1) // q_src)
            hsdf.add_edge((channel.source, u), (channel.destination, v), delay)

    if model_auto_concurrency:
        for actor in graph.actor_names:
            copies = q[actor]
            for copy in range(copies - 1):
                hsdf.add_edge((actor, copy), (actor, copy + 1), 0)
            hsdf.add_edge((actor, copies - 1), (actor, 0), 1)

    return hsdf
