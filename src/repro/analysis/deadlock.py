"""Unbounded-storage deadlock-freedom.

A consistent graph deadlocks *regardless of buffer sizes* when some
directed cycle does not carry enough initial tokens.  The classical
test (Lee & Messerschmitt, 1987) executes one abstract, untimed
iteration with unbounded channel capacities: if every actor ``a``
completes its ``q[a]`` firings, the token configuration returns to the
initial one and the execution can repeat forever; if execution gets
stuck earlier, the graph deadlocks under every storage distribution.

Bounded-storage deadlock (a *full* channel blocking progress) is a
different phenomenon, detected during timed execution by
:mod:`repro.engine`.
"""

from __future__ import annotations

from repro.analysis.repetitions import repetition_vector
from repro.graph.graph import SDFGraph


def is_deadlock_free(graph: SDFGraph) -> bool:
    """Whether *graph* can complete one iteration with unbounded buffers.

    Raises :class:`~repro.exceptions.InconsistentGraphError` for
    inconsistent graphs (deadlock-freedom within bounded memory is
    undefined for them).
    """
    return remaining_firings_at_deadlock(graph) == {}


def remaining_firings_at_deadlock(graph: SDFGraph) -> dict[str, int]:
    """Firings still owed per actor when abstract execution stalls.

    Empty when the graph is deadlock-free.  Useful diagnostics: the
    actors listed participate in (or depend on) an under-tokened cycle.
    """
    q = repetition_vector(graph)
    remaining = dict(q)
    tokens = {ch.name: ch.initial_tokens for ch in graph.channels.values()}

    progress = True
    while progress:
        progress = False
        for actor in graph.actor_names:
            while remaining[actor] > 0 and _enabled(graph, actor, tokens):
                _fire(graph, actor, tokens)
                remaining[actor] -= 1
                progress = True
    return {actor: count for actor, count in remaining.items() if count > 0}


def _enabled(graph: SDFGraph, actor: str, tokens: dict[str, int]) -> bool:
    return all(tokens[ch.name] >= ch.consumption for ch in graph.incoming(actor))


def _fire(graph: SDFGraph, actor: str, tokens: dict[str, int]) -> None:
    for ch in graph.incoming(actor):
        tokens[ch.name] -= ch.consumption
    for ch in graph.outgoing(actor):
        tokens[ch.name] += ch.production
