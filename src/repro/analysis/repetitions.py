"""Repetition vectors via the SDF balance equations.

For every channel ``src -p-> c- dst`` the balance equation
``q[src] * p == q[dst] * c`` must hold for the token count to return to
its starting value after ``q[a]`` firings of every actor ``a``.  A
non-trivial solution exists iff the graph is *consistent*; the smallest
positive integer solution is the repetition vector (Lee &
Messerschmitt, 1987).

The computation propagates exact rational firing ratios over each
weakly connected component and then scales to the smallest integer
vector, so it is exact for arbitrary rates.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from math import gcd, lcm

from repro.exceptions import InconsistentGraphError
from repro.graph.graph import SDFGraph


def repetition_vector(graph: SDFGraph) -> dict[str, int]:
    """The repetition vector of *graph* as ``{actor: count}``.

    Each weakly connected component is normalised independently to its
    smallest positive integer solution.  Raises
    :class:`InconsistentGraphError` when the balance equations only
    admit the trivial all-zero solution (rate mismatch on some
    undirected cycle).
    """
    ratios: dict[str, Fraction] = {}
    adjacency = _undirected_adjacency(graph)

    for start in graph.actor_names:
        if start in ratios:
            continue
        component = _propagate_component(graph, adjacency, start, ratios)
        _normalise_component(component, ratios)

    return {name: int(ratios[name]) for name in graph.actor_names}


def iteration_token_delta(graph: SDFGraph) -> dict[str, int]:
    """Net token change per channel over one full iteration.

    Zero everywhere for consistent graphs; exposed primarily to state
    the property in tests.
    """
    q = repetition_vector(graph)
    return {
        ch.name: q[ch.source] * ch.production - q[ch.destination] * ch.consumption
        for ch in graph.channels.values()
    }


def _undirected_adjacency(graph: SDFGraph) -> dict[str, list[tuple[str, Fraction]]]:
    """For each actor, the neighbours with the firing-ratio multiplier.

    Traversing channel ``src -p-> c- dst`` from ``src`` to ``dst``
    multiplies the firing ratio by ``p / c`` (``q[dst] = q[src] * p/c``);
    the reverse direction uses the inverse.
    """
    adjacency: dict[str, list[tuple[str, Fraction]]] = {name: [] for name in graph.actor_names}
    for channel in graph.channels.values():
        forward = Fraction(channel.production, channel.consumption)
        adjacency[channel.source].append((channel.destination, forward))
        adjacency[channel.destination].append((channel.source, 1 / forward))
    return adjacency


def _propagate_component(
    graph: SDFGraph,
    adjacency: dict[str, list[tuple[str, Fraction]]],
    start: str,
    ratios: dict[str, Fraction],
) -> list[str]:
    """BFS rate propagation; returns the component's actor names."""
    ratios[start] = Fraction(1)
    component = [start]
    queue = deque([start])
    while queue:
        current = queue.popleft()
        for neighbour, multiplier in adjacency[current]:
            expected = ratios[current] * multiplier
            known = ratios.get(neighbour)
            if known is None:
                ratios[neighbour] = expected
                component.append(neighbour)
                queue.append(neighbour)
            elif known != expected:
                raise InconsistentGraphError(
                    f"graph {graph.name!r} is inconsistent: actor {neighbour!r} would need firing"
                    f" ratios {known} and {expected} simultaneously"
                )
    return component


def _normalise_component(component: list[str], ratios: dict[str, Fraction]) -> None:
    """Scale a component's rational ratios to the minimal integer vector."""
    denominator_lcm = lcm(*(ratios[name].denominator for name in component))
    scaled = [ratios[name] * denominator_lcm for name in component]
    numerator_gcd = gcd(*(int(value) for value in scaled))
    for name, value in zip(component, scaled):
        ratios[name] = Fraction(int(value) // numerator_gcd)
