"""Exact maximum cycle ratio of an HSDF graph.

For a homogeneous SDF graph the self-timed steady-state period equals
the *maximum cycle ratio* (MCR)

    MCR = max over directed cycles  (sum of execution times on the
          cycle) / (sum of edge delays on the cycle),

and the maximal throughput of a node is ``1 / MCR(restricted to cycles
that can reach the node)`` — the classical result used by the paper
([GG93]) as the upper bound of its throughput binary search.

The implementation is an exact Lawler-style parametric search with
rational arithmetic: the predicate "does a cycle with
``sum(w - lam * delay) > 0`` exist" is decided by Bellman-Ford positive
cycle detection; binary search over ``lam`` narrows the ratio to an
interval containing a unique fraction with bounded denominator, which
is then recovered exactly and verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import networkx as nx

from repro.analysis.hsdf import HSDFGraph
from repro.exceptions import AnalysisError

Node = tuple[str, int]

#: Result of the parametric feasibility test.
_ABOVE, _EQUAL, _BELOW = 1, 0, -1


@dataclass(frozen=True)
class CycleRatioResult:
    """Outcome of :func:`maximum_cycle_ratio`.

    ``ratio`` is the maximum cycle ratio; ``critical_scc`` lists the
    nodes of one strongly connected component attaining it.
    """

    ratio: Fraction
    critical_scc: frozenset[Node]


def maximum_cycle_ratio(hsdf: HSDFGraph, reaching: Node | None = None) -> CycleRatioResult:
    """The maximum cycle ratio of *hsdf*.

    Parameters
    ----------
    reaching:
        When given, only cycles from which *reaching* is reachable are
        considered — those are exactly the cycles that throttle the
        self-timed firing rate of that node.

    Raises
    ------
    AnalysisError
        If the graph contains a cycle with zero total delay (the graph
        deadlocks: a firing transitively depends on itself within one
        iteration), or if no cycle constrains the requested node.
    """
    digraph = _to_digraph(hsdf)
    if reaching is not None and reaching not in digraph:
        raise AnalysisError(f"node {reaching!r} is not in the HSDF graph")

    best: Fraction | None = None
    best_scc: frozenset[Node] = frozenset()
    for scc in nx.strongly_connected_components(digraph):
        subgraph = digraph.subgraph(scc)
        if subgraph.number_of_edges() == 0:
            continue
        if reaching is not None and not _scc_reaches(digraph, scc, reaching):
            continue
        ratio = _scc_cycle_ratio(subgraph)
        if best is None or ratio > best:
            best = ratio
            best_scc = frozenset(scc)

    if best is None:
        raise AnalysisError(
            "no cycle constrains the computation"
            + (f" of node {reaching!r}" if reaching is not None else "")
        )
    return CycleRatioResult(best, best_scc)


def max_throughput_from_mcr(hsdf: HSDFGraph, node: Node) -> Fraction:
    """Maximal self-timed firings/time-step of *node* (= 1 / MCR)."""
    result = maximum_cycle_ratio(hsdf, reaching=node)
    if result.ratio == 0:
        raise AnalysisError(
            "maximum cycle ratio is zero (all-zero execution times on every"
            " constraining cycle); the throughput is unbounded"
        )
    return 1 / result.ratio


def _to_digraph(hsdf: HSDFGraph) -> "nx.DiGraph":
    digraph = nx.DiGraph()
    for node in hsdf.nodes:
        digraph.add_node(node)
    for (src, dst), delay in hsdf.edges.items():
        # Edge weight: execution time of the *producing* node, so a
        # cycle's weight sum is the sum of execution times along it.
        digraph.add_edge(src, dst, weight=hsdf.nodes[src], delay=delay)
    return digraph


def _scc_reaches(digraph: "nx.DiGraph", scc: set[Node], target: Node) -> bool:
    if target in scc:
        return True
    seen: set[Node] = set(scc)
    stack: list[Node] = list(scc)
    while stack:
        for successor in digraph.successors(stack.pop()):
            if successor == target:
                return True
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return False


def _scc_cycle_ratio(subgraph: "nx.DiGraph") -> Fraction:
    """Exact MCR of one strongly connected component."""
    edges = [
        (src, dst, data["weight"], data["delay"])
        for src, dst, data in subgraph.edges(data=True)
    ]
    if _has_zero_delay_cycle(subgraph):
        raise AnalysisError(
            "HSDF graph has a delay-free dependency cycle; the graph deadlocks"
        )

    total_weight = sum(weight for _src, _dst, weight, _delay in edges)
    total_delay = sum(delay for _src, _dst, _weight, delay in edges)
    max_denominator = max(total_delay, 1)

    low = Fraction(0)
    high = Fraction(total_weight)
    if _positive_cycle_test(subgraph, edges, high) is _EQUAL:
        return high
    verdict_low = _positive_cycle_test(subgraph, edges, low)
    if verdict_low is _EQUAL:
        return low
    if verdict_low is _BELOW:
        raise AnalysisError("internal error: cycle ratio below zero")

    # Invariant: MCR in (low, high).
    resolution = Fraction(1, 2 * max_denominator * max_denominator)
    for _ in range(512):
        if high - low < resolution:
            candidate = ((low + high) / 2).limit_denominator(max_denominator)
        else:
            candidate = (low + high) / 2
        verdict = _positive_cycle_test(subgraph, edges, candidate)
        if verdict is _EQUAL:
            return candidate
        if verdict is _ABOVE:
            low = candidate
        else:
            high = candidate
    raise AnalysisError("maximum cycle ratio search failed to converge")


def _has_zero_delay_cycle(subgraph: "nx.DiGraph") -> bool:
    zero = nx.DiGraph()
    zero.add_nodes_from(subgraph.nodes)
    zero.add_edges_from(
        (src, dst) for src, dst, data in subgraph.edges(data=True) if data["delay"] == 0
    )
    return not nx.is_directed_acyclic_graph(zero)


def _positive_cycle_test(
    subgraph: "nx.DiGraph",
    edges: list[tuple[Node, Node, int, int]],
    lam: Fraction,
) -> int:
    """Compare the MCR with *lam*.

    Uses Bellman-Ford longest-path relaxation on edge costs
    ``weight - lam * delay``: a relaxable edge after ``V`` rounds means
    a positive-cost cycle (MCR > lam); otherwise a zero-cost cycle is
    detected by checking for a cycle among tight edges (MCR == lam);
    otherwise MCR < lam.
    """
    distance: dict[Node, Fraction] = {node: Fraction(0) for node in subgraph.nodes}
    num_nodes = subgraph.number_of_nodes()
    costs = [(src, dst, Fraction(weight) - lam * delay) for src, dst, weight, delay in edges]

    for _ in range(num_nodes):
        changed = False
        for src, dst, cost in costs:
            candidate = distance[src] + cost
            if candidate > distance[dst]:
                distance[dst] = candidate
                changed = True
        if not changed:
            break
    else:
        # Still relaxing after V rounds: positive cycle.
        for src, dst, cost in costs:
            if distance[src] + cost > distance[dst]:
                return _ABOVE

    # No positive cycle; look for a zero-cost ("tight") cycle.
    tight = nx.DiGraph()
    tight.add_nodes_from(subgraph.nodes)
    tight.add_edges_from(
        (src, dst) for src, dst, cost in costs if distance[src] + cost == distance[dst]
    )
    if not nx.is_directed_acyclic_graph(tight):
        return _EQUAL
    return _BELOW
