"""``buffy`` — command-line storage/throughput exploration (Sec. 10).

The paper's tool takes an XML description of an SDF graph, optionally
bounds on the part of the design space of interest, and performs the
design-space exploration.  This reimplementation adds JSON input, the
bundled gallery graphs, throughput-constraint queries, schedule
rendering and several export formats.

Examples
--------
Explore the running example's full Pareto space::

    buffy gallery:example --observe c --chart

Minimal storage for a throughput constraint::

    buffy graph.xml --throughput 1/6

Render the Table-1 schedule of a concrete distribution::

    buffy gallery:example --capacities alpha=4,beta=2 --schedule 16
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction
from pathlib import Path

from repro.buffers.distribution import StorageDistribution
from repro.buffers.explorer import explore_design_space, minimal_distribution_for_throughput
from repro.buffers.bounds import lower_bound_distribution, upper_bound_distribution
from repro.engine.executor import execute
from repro.exceptions import ReproError
from repro.gallery.registry import (
    gallery_graph,
    gallery_names,
    sadf_gallery_graph,
    sadf_gallery_names,
)
from repro.graph.graph import SDFGraph
from repro.io.dot import to_dot
from repro.runtime import Budget, ExplorationConfig
from repro.io.jsonio import read_json, write_json
from repro.io.sdfxml import read_xml, write_xml
from repro.reporting.plots import ascii_pareto
from repro.reporting.tables import schedule_table, table2, table2_row
from repro.reporting.svg import schedule_to_svg
from repro.io.vcd import schedule_to_vcd


def build_parser() -> argparse.ArgumentParser:
    """The buffy argument parser."""
    parser = argparse.ArgumentParser(
        prog="buffy",
        description="Exact storage/throughput trade-off exploration for SDF graphs.",
    )
    parser.add_argument(
        "graph",
        nargs="?",
        help="input graph: an .xml or .json file, or gallery:<name>",
    )
    parser.add_argument("--list-gallery", action="store_true", help="list bundled example graphs")
    parser.add_argument("--observe", metavar="ACTOR", help="actor whose throughput is analysed")
    parser.add_argument(
        "--strategy",
        choices=("dependency", "divide", "exhaustive"),
        default="dependency",
        help="exploration strategy (default: dependency)",
    )
    parser.add_argument("--quantum", metavar="P/Q", help="throughput quantisation step")
    parser.add_argument("--max-size", type=int, metavar="N", help="explore only sizes up to N")
    parser.add_argument(
        "--throughput",
        metavar="P/Q",
        help="report the minimal storage distribution meeting this throughput",
    )
    parser.add_argument(
        "--capacities",
        metavar="CH=N,...",
        help="evaluate one concrete storage distribution instead of exploring",
    )
    parser.add_argument(
        "--schedule",
        type=int,
        metavar="STEPS",
        help="with --capacities: render the schedule for the first STEPS time steps",
    )
    parser.add_argument("--chart", action="store_true", help="render the Pareto space as ASCII art")
    parser.add_argument(
        "--min-throughput",
        metavar="P/Q",
        help="restrict the explored Pareto space to throughputs >= this",
    )
    parser.add_argument(
        "--max-throughput",
        metavar="P/Q",
        help="stop the exploration once this throughput is reached",
    )
    parser.add_argument(
        "--shared",
        action="store_true",
        help="also report the shared-memory storage requirement (Sec. 3 model)",
    )
    parser.add_argument(
        "--latency",
        metavar="SRC:SNK",
        help="with --capacities: report initial and iteration latency",
    )
    parser.add_argument(
        "--vcd",
        metavar="FILE",
        help="with --capacities: write the schedule as a VCD waveform trace",
    )
    parser.add_argument(
        "--svg",
        metavar="FILE",
        help="with --capacities: write the schedule as an SVG Gantt chart",
    )
    parser.add_argument(
        "--csdf",
        action="store_true",
        help="treat a JSON input as a cyclo-static (CSDF) graph",
    )
    parser.add_argument(
        "--scenarios",
        action="store_true",
        help="treat the input as a scenario-aware (FSM-SADF) graph and"
        " analyse worst-case throughput over all accepted scenario"
        " sequences (auto-detected for sadfjson files and SADF gallery"
        " names)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan independent throughput probes out to N worker processes (default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the exact evaluation memo/pruning cache (differential baseline)",
    )
    parser.add_argument(
        "--bounds-oracle",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="consult the monotone throughput-bounds oracle before simulating:"
        " interval answers skip provably-dominated candidates and the divide"
        " strategy switches to the ascending probe walk (results are"
        " bit-identical; requires the cache)",
    )
    parser.add_argument(
        "--speculate",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="issue predicted probe candidates to idle pool workers ahead of"
        " demand (only effective with --workers > 1; results are bit-identical)",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "fast", "reference"),
        default="auto",
        help="simulation kernel for throughput probes: the fast event-calendar"
        " kernel, the instrumented reference executor, or automatic selection"
        " (default: auto)",
    )
    parser.add_argument(
        "--backend",
        metavar="NAME",
        help="probe backend from the repro.engine.backends registry"
        " ('reference', 'fastcore', 'batch-numpy', 'cc', or 'auto' for the"
        " best available on this host); unknown names, capability mismatches"
        " and host-unavailable backends fail up front (default: matches"
        " --engine)",
    )
    parser.add_argument(
        "--codegen-cache-dir",
        metavar="DIR",
        help="directory for compiled 'cc' probe kernels (default:"
        " $REPRO_CACHE_DIR/cc-kernels, else the XDG user cache)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=0,
        metavar="N",
        help="probe wave width: collect up to N scan/speculation candidates"
        " into one evaluate_batch call (0 disables; results are bit-identical,"
        " best with --backend batch-numpy)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget for the exploration; on expiry the partial"
        " Pareto front found so far is reported (exit code 3) and a resume"
        " checkpoint can be written with --checkpoint",
    )
    parser.add_argument(
        "--max-probes",
        type=int,
        metavar="N",
        help="stop the exploration after N throughput probes (cache hits and"
        " prunes are free); exit code 3 flags the partial result",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="write a resume checkpoint (memo cache + frontier) to FILE at the"
        " end of the run, complete or not",
    )
    parser.add_argument(
        "--resume",
        metavar="FILE",
        help="restore the memo cache from a previous run's checkpoint before"
        " exploring; the run continues where the budget cut it off",
    )
    parser.add_argument(
        "--stats-json",
        metavar="FILE",
        help="write the run's telemetry snapshot (event counters + timers) as JSON",
    )
    parser.add_argument(
        "--probe-timeout",
        type=float,
        metavar="SECONDS",
        help="per-probe watchdog for worker processes; a probe exceeding it"
        " triggers a pool restart / inline retry",
    )
    parser.add_argument("--table", action="store_true", help="print a Table-2 style summary row")
    parser.add_argument("--bounds", action="store_true", help="print the storage bound box")
    parser.add_argument("--dot", action="store_true", help="export the graph as Graphviz DOT")
    parser.add_argument("--export-xml", metavar="FILE", help="write the graph as SDF3-style XML")
    parser.add_argument("--export-json", metavar="FILE", help="write the graph as JSON")
    parser.add_argument(
        "--output-json",
        metavar="FILE",
        help="write the exploration result (Pareto front + stats) as JSON",
    )
    return parser


def load_graph(spec: str) -> SDFGraph:
    """Resolve a graph argument: gallery name or file path."""
    if spec.startswith("gallery:"):
        return gallery_graph(spec.removeprefix("gallery:"))
    path = Path(spec)
    if path.suffix == ".json":
        return read_json(path)
    return read_xml(path)


def parse_fraction(text: str) -> Fraction:
    """Parse ``P/Q`` or a decimal into an exact fraction."""
    return Fraction(text)


def parse_capacities(text: str) -> StorageDistribution:
    """Parse ``alpha=4,beta=2`` into a storage distribution."""
    capacities: dict[str, int] = {}
    for item in text.split(","):
        name, _sep, value = item.partition("=")
        capacities[name.strip()] = int(value)
    return StorageDistribution(capacities)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    out = sys.stdout

    try:
        if arguments.list_gallery:
            for name in gallery_names():
                print(name, file=out)
            for name in sadf_gallery_names():
                print(f"{name}  (scenarios)", file=out)
            return 0
        if not arguments.graph:
            parser.print_usage(file=sys.stderr)
            print("buffy: error: a graph argument is required", file=sys.stderr)
            return 2

        if arguments.csdf:
            return _run_csdf(arguments, out)
        if arguments.scenarios or _is_sadf_input(arguments.graph):
            return _run_sadf(arguments, out)
        graph = load_graph(arguments.graph)

        if arguments.export_xml:
            write_xml(graph, arguments.export_xml)
        if arguments.export_json:
            write_json(graph, arguments.export_json)
        if arguments.dot:
            print(to_dot(graph), end="", file=out)
            return 0
        if arguments.bounds:
            lower = lower_bound_distribution(graph)
            upper = upper_bound_distribution(graph)
            print(f"lower bounds: {lower}  (size {lower.size})", file=out)
            print(f"upper bounds: {upper}  (size {upper.size})", file=out)
            return 0

        if arguments.capacities:
            return _evaluate_distribution(graph, arguments, out)
        if arguments.throughput:
            return _minimal_for_constraint(graph, arguments, out)
        return _explore(graph, arguments, out)
    except ReproError as error:
        print(f"buffy: error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"buffy: error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


def _evaluate_distribution(graph: SDFGraph, arguments: argparse.Namespace, out) -> int:
    capacities = parse_capacities(arguments.capacities)
    need_schedule = any(
        value is not None for value in (arguments.schedule, arguments.vcd, arguments.svg)
    )
    result = execute(
        graph,
        capacities,
        arguments.observe,
        engine=arguments.engine,
        record_schedule=need_schedule,
    )
    print(f"distribution {capacities} (size {capacities.size})", file=out)
    print(f"throughput of {result.observe!r}: {result.throughput}", file=out)
    if result.deadlocked:
        when = f" at t={result.deadlock_time}" if result.deadlock_time is not None else ""
        print(f"execution deadlocks{when}", file=out)
    else:
        print(
            f"periodic phase: {result.firings_in_cycle} firing(s) per {result.cycle_duration}"
            f" time steps ({result.states_stored} states stored)",
            file=out,
        )
    if arguments.schedule is not None and result.schedule is not None:
        print(schedule_table(result.schedule, arguments.schedule), file=out)
    if arguments.shared:
        from repro.buffers.shared import shared_memory_requirement

        report = shared_memory_requirement(graph, capacities, arguments.observe)
        print(
            f"shared-memory requirement: {report.peak_shared_tokens} tokens"
            f" (saves {report.saving} over per-channel memories)",
            file=out,
        )
    if arguments.latency:
        from repro.analysis.latency import iteration_latency

        source, _sep, sink = arguments.latency.partition(":")
        report = iteration_latency(graph, capacities, source.strip(), sink.strip() or result.observe)
        print(
            f"latency {report.source} -> {report.sink}: initial {report.initial_latency},"
            f" per iteration {report.iteration_latency}",
            file=out,
        )
    if arguments.vcd and result.schedule is not None:
        Path(arguments.vcd).write_text(schedule_to_vcd(result.schedule), encoding="utf-8")
        print(f"VCD trace written to {arguments.vcd}", file=out)
    if arguments.svg and result.schedule is not None:
        Path(arguments.svg).write_text(
            schedule_to_svg(result.schedule, title=f"{graph.name} under {capacities}"),
            encoding="utf-8",
        )
        print(f"SVG Gantt chart written to {arguments.svg}", file=out)
    return 0


def _runtime_config(arguments: argparse.Namespace) -> "ExplorationConfig":
    """Fold the runtime-related CLI flags into one ExplorationConfig."""
    if getattr(arguments, "codegen_cache_dir", None):
        from repro.engine import ccore

        ccore.configure(cache_dir=arguments.codegen_cache_dir)
    budget = None
    if arguments.deadline is not None or arguments.max_probes is not None:
        budget = Budget(deadline_s=arguments.deadline, max_probes=arguments.max_probes)
    return ExplorationConfig(
        engine=arguments.engine,
        workers=arguments.workers,
        cache=not arguments.no_cache,
        bounds=arguments.bounds_oracle,
        speculate=arguments.speculate,
        budget=budget,
        checkpoint=arguments.checkpoint,
        probe_timeout=arguments.probe_timeout,
        backend=arguments.backend,
        batch=arguments.batch,
    )


def _minimal_for_constraint(graph: SDFGraph, arguments: argparse.Namespace, out) -> int:
    constraint = parse_fraction(arguments.throughput)
    point = minimal_distribution_for_throughput(
        graph,
        constraint,
        arguments.observe,
        config=ExplorationConfig(engine=arguments.engine),
    )
    if point is None:
        print(f"throughput {constraint} is not achievable for {graph.name!r}", file=out)
        return 1
    print(
        f"minimal storage for throughput >= {constraint}: size {point.size},"
        f" distribution {point.distribution} (throughput {point.throughput})",
        file=out,
    )
    return 0


def _explore(graph: SDFGraph, arguments: argparse.Namespace, out) -> int:
    quantum = parse_fraction(arguments.quantum) if arguments.quantum else None
    low = parse_fraction(arguments.min_throughput) if arguments.min_throughput else None
    high = parse_fraction(arguments.max_throughput) if arguments.max_throughput else None
    bounds = (low, high) if (low is not None or high is not None) else None
    result = explore_design_space(
        graph,
        arguments.observe,
        strategy=arguments.strategy,
        quantum=quantum,
        max_size=arguments.max_size,
        throughput_bounds=bounds,
        config=_runtime_config(arguments),
        resume=arguments.resume,
    )
    print(result.summary(), file=out)
    if arguments.checkpoint:
        print(f"resume checkpoint written to {arguments.checkpoint}", file=out)
    if arguments.stats_json:
        import json

        Path(arguments.stats_json).write_text(
            json.dumps(result.telemetry or {}, indent=2) + "\n", encoding="utf-8"
        )
        print(f"telemetry snapshot written to {arguments.stats_json}", file=out)
    if arguments.output_json:
        from repro.io.frontjson import write_result_json

        write_result_json(result, arguments.output_json)
        print(f"exploration result written to {arguments.output_json}", file=out)
    if arguments.chart:
        print(ascii_pareto(result.front, title=f"Pareto space of {graph.name!r}"), file=out)
    if arguments.table:
        print(table2([table2_row(graph, arguments.observe, result)]), file=out)
    if arguments.shared:
        from repro.buffers.shared import compare_storage_models

        print("shared-memory requirement per Pareto point:", file=out)
        for point, report in zip(
            result.front, compare_storage_models(graph, result.front, result.observe)
        ):
            print(
                f"  size {point.size}: shared peak {report.peak_shared_tokens}"
                f" (saves {report.saving})",
                file=out,
            )
    return 0 if result.complete else 3


def _is_sadf_input(spec: str) -> bool:
    """Whether a graph argument names an SADF source (gallery entry or
    sadfjson document) without being asked via --scenarios."""
    if spec.startswith("gallery:"):
        return spec.removeprefix("gallery:") in sadf_gallery_names()
    path = Path(spec)
    if path.suffix != ".json" or not path.is_file():
        return False
    import json

    from repro.io.sadfjson import is_sadf_document

    try:
        return is_sadf_document(json.loads(path.read_text(encoding="utf-8")))
    except (OSError, json.JSONDecodeError):
        return False


def load_sadf(spec: str):
    """Resolve a scenario-graph argument: gallery name or sadfjson path."""
    from repro.io.sadfjson import read_sadf_json

    if spec.startswith("gallery:"):
        return sadf_gallery_graph(spec.removeprefix("gallery:"))
    return read_sadf_json(spec)


def _run_sadf(arguments: argparse.Namespace, out) -> int:
    from repro.sadf import (
        explore_design_space as explore_sadf,
        minimal_sadf_distribution_for_throughput,
        worst_case_throughput,
    )

    sadf = load_sadf(arguments.graph)
    if arguments.capacities:
        capacities = parse_capacities(arguments.capacities)
        report = worst_case_throughput(sadf, capacities, arguments.observe)
        print(f"distribution {capacities} (size {capacities.size})", file=out)
        print(report.summary(), file=out)
        return 0
    if arguments.throughput:
        constraint = parse_fraction(arguments.throughput)
        point = minimal_sadf_distribution_for_throughput(
            sadf, constraint, arguments.observe
        )
        if point is None:
            print(
                f"worst-case throughput {constraint} is not achievable"
                f" for {sadf.name!r}",
                file=out,
            )
            return 1
        print(
            f"minimal storage for worst-case throughput >= {constraint}:"
            f" size {point.size}, distribution {point.distribution}"
            f" (throughput {point.throughput})",
            file=out,
        )
        return 0
    result = explore_sadf(
        sadf,
        arguments.observe,
        strategy=arguments.strategy,
        max_size=arguments.max_size,
        config=_runtime_config(arguments),
        resume=arguments.resume,
    )
    print(result.summary(), file=out)
    if arguments.checkpoint:
        print(f"resume checkpoint written to {arguments.checkpoint}", file=out)
    if arguments.stats_json:
        import json

        Path(arguments.stats_json).write_text(
            json.dumps(result.telemetry or {}, indent=2) + "\n", encoding="utf-8"
        )
        print(f"telemetry snapshot written to {arguments.stats_json}", file=out)
    if arguments.output_json:
        from repro.io.frontjson import write_result_json

        write_result_json(result, arguments.output_json)
        print(f"exploration result written to {arguments.output_json}", file=out)
    if arguments.chart:
        print(
            ascii_pareto(result.front, title=f"SADF Pareto space of {sadf.name!r}"),
            file=out,
        )
    return 0 if result.complete else 3


def _run_csdf(arguments: argparse.Namespace, out) -> int:
    from repro.csdf.executor import CSDFExecutor
    from repro.csdf.explorer import explore_csdf_design_space
    from repro.io.csdfjson import read_csdf_json

    graph = read_csdf_json(arguments.graph)
    if arguments.capacities:
        capacities = parse_capacities(arguments.capacities)
        result = CSDFExecutor(graph, capacities, arguments.observe).run()
        print(f"CSDF distribution {capacities} (size {capacities.size})", file=out)
        print(f"throughput of {result.observe!r}: {result.throughput}", file=out)
        if result.deadlocked:
            print("execution deadlocks", file=out)
        return 0
    if arguments.throughput:
        from repro.csdf.explorer import csdf_minimal_distribution_for_throughput

        constraint = parse_fraction(arguments.throughput)
        found = csdf_minimal_distribution_for_throughput(graph, constraint, arguments.observe)
        if found is None:
            print(f"throughput {constraint} is not achievable for {graph.name!r}", file=out)
            return 1
        distribution, value = found
        print(
            f"minimal storage for throughput >= {constraint}: size {distribution.size},"
            f" distribution {distribution} (throughput {value})",
            file=out,
        )
        return 0
    result = explore_csdf_design_space(graph, arguments.observe, max_size=arguments.max_size)
    print(
        f"CSDF design space of {result.graph_name!r} (observing {result.observe!r}):",
        file=out,
    )
    print(f"  maximal throughput: {result.max_throughput}", file=out)
    print(f"  Pareto points: {len(result.front)}", file=out)
    for point in result.front:
        print(f"    {point}", file=out)
    if arguments.chart:
        print(ascii_pareto(result.front, title=f"CSDF Pareto space of {graph.name!r}"), file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
