"""Additional workloads beyond the paper's experiment set.

These graphs are *not* part of the paper's evaluation; they are extra
exercise material for the exploration engine, in the style of the
SDF3 benchmark suite:

* :func:`bipartite` — a dense four-actor bipartite graph; every
  producer feeds every consumer, so the exploration must balance four
  interacting channels.
* :func:`mp3_decoder` — a reconstruction of the granule-level MP3
  decoder model often used with SDF3 (14 actors, dual channel paths
  splitting after the Huffman decoder and joining at the synthesis
  filterbank).
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import SDFGraph


def bipartite() -> SDFGraph:
    """A dense bipartite graph: producers {a, c} feed consumers {b, d}.

    Repetition vector (2, 1, 2, 1); channel ``cb`` carries initial
    tokens so the two sides can pipeline.
    """
    return (
        GraphBuilder("bipartite")
        .actor("a", execution_time=1)
        .actor("b", execution_time=2)
        .actor("c", execution_time=1)
        .actor("d", execution_time=3)
        .channel("a", "b", 1, 2, name="ab")
        .channel("a", "d", 1, 2, name="ad")
        .channel("c", "b", 1, 2, initial_tokens=2, name="cb")
        .channel("c", "d", 1, 2, name="cd")
        .build()
    )


def mp3_decoder() -> SDFGraph:
    """Granule-level MP3 decoder reconstruction (14 actors).

    One Huffman front-end feeding two per-channel chains
    (requantisation, reordering, antialias, IMDCT, frequency
    inversion, synthesis) that join in the stereo writer; execution
    times are relative granule costs, not profiled cycles.
    """
    builder = (
        GraphBuilder("mp3decoder")
        .actor("huff", execution_time=4)
        .actor("req_l", execution_time=2)
        .actor("req_r", execution_time=2)
        .actor("reorder_l", execution_time=1)
        .actor("reorder_r", execution_time=1)
        .actor("alias_l", execution_time=1)
        .actor("alias_r", execution_time=1)
        .actor("imdct_l", execution_time=5)
        .actor("imdct_r", execution_time=5)
        .actor("freqinv_l", execution_time=1)
        .actor("freqinv_r", execution_time=1)
        .actor("synth_l", execution_time=6)
        .actor("synth_r", execution_time=6)
        .actor("out", execution_time=1)
    )
    for side in ("l", "r"):
        builder.channel("huff", f"req_{side}", 1, 1, name=f"g1_{side}")
        builder.channel(f"req_{side}", f"reorder_{side}", 1, 1, name=f"g2_{side}")
        builder.channel(f"reorder_{side}", f"alias_{side}", 1, 1, name=f"g3_{side}")
        # 2 granules buffered into one IMDCT pass.
        builder.channel(f"alias_{side}", f"imdct_{side}", 1, 2, name=f"g4_{side}")
        builder.channel(f"imdct_{side}", f"freqinv_{side}", 1, 1, name=f"g5_{side}")
        builder.channel(f"freqinv_{side}", f"synth_{side}", 1, 1, name=f"g6_{side}")
        builder.channel(f"synth_{side}", "out", 2, 2, name=f"g7_{side}")
    return builder.build()
