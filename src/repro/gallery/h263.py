"""The H.263 decoder model (Fig. 12 of the paper).

The standard four-actor SDF model of a QCIF H.263 decoder used in the
SDF3 literature: a variable-length decoder feeding 2376
macroblock-level tokens per frame through inverse quantisation and
IDCT into motion compensation, which reassembles one frame.  The
execution times (in cycles) are the well-known profile numbers used
with this model.

The burst rate of 2376 makes the buffer design space enormous — the
paper reports the largest exploration time for this graph and resorts
to throughput quantisation.  The ``blocks`` parameter scales the burst
so experiments can trade fidelity for runtime (the structure, the
shape of the Pareto space and the need for quantisation are preserved
at any size); the full-rate model is ``h263_decoder(blocks=2376)``.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import SDFGraph

#: Macroblock-level tokens per QCIF frame in the original model.
FULL_BLOCKS = 2376


def h263_decoder(blocks: int = FULL_BLOCKS) -> SDFGraph:
    """The H.263 decoder SDF graph, with a scalable burst size."""
    if blocks < 1:
        raise ValueError("blocks must be positive")
    return (
        GraphBuilder("h263decoder")
        .actor("vld", execution_time=26018)
        .actor("iq", execution_time=559)
        .actor("idct", execution_time=486)
        .actor("mc", execution_time=10958)
        .channel("vld", "iq", production=blocks, consumption=1, name="h1")
        .channel("iq", "idct", production=1, consumption=1, name="h2")
        .channel("idct", "mc", production=1, consumption=blocks, name="h3")
        .build()
    )
