"""Multi-mode (FSM-SADF) variants of the gallery workloads.

Two scenario sets grounding the scenario-aware analysis in the same
applications the paper uses:

* :func:`modem_modes` — the BML99 modem with an **acquisition** mode
  (heavier equaliser adaptation while the receiver locks on) and a
  **tracking** mode (the steady demodulation of
  :func:`repro.gallery.bml99.modem`), with mode-transition delays for
  retuning the loops;
* :func:`h263_frames` — the H.263 decoder with **I-frame** and
  **P-frame** scenarios: an intra frame carries the full macroblock
  burst through VLD/IQ/IDCT while a predicted frame moves half the
  blocks at lighter execution times, the classic frame-type scenario
  example of the SADF literature (Skelin/Geilen, arXiv:1404.0089).

Both use the small scalable burst sizes so all-scenario sweeps stay
tractable in pure Python; the structure (rate changes per scenario,
switching delays, residence modes) is what the analysis exercises.
"""

from __future__ import annotations

from repro.sadf.fsm import ScenarioFSM
from repro.sadf.graph import SADFGraph


def modem_modes() -> SADFGraph:
    """The BML99 modem with acquisition and tracking modes.

    The skeleton is the 16-actor / 19-channel modem reconstruction of
    :func:`repro.gallery.bml99.modem`.  *Tracking* binds its baseline
    execution times; *acquisition* slows the adaptation path (equaliser,
    coefficient update, decision and error actors) while the receiver
    converges.  The FSM starts in acquisition, may reside in either
    mode, and pays a retune delay on every mode switch.
    """
    sadf = SADFGraph("modem-modes")
    for name in (
        "in", "filt", "fork1", "hil", "demod", "fork2", "conj", "mul",
        "deci", "eqlz", "fork3", "dec", "err", "upd", "interp", "out",
    ):
        sadf.add_actor(name)
    sadf.add_channel("in", "filt", name="m1")
    sadf.add_channel("filt", "fork1", name="m2")
    sadf.add_channel("fork1", "hil", name="m3")
    sadf.add_channel("fork1", "demod", name="m4")
    sadf.add_channel("hil", "demod", name="m5")
    sadf.add_channel("demod", "fork2", name="m6")
    sadf.add_channel("fork2", "conj", name="m7")
    sadf.add_channel("fork2", "mul", name="m8")
    sadf.add_channel("conj", "mul", initial_tokens=1, name="m9")
    sadf.add_channel("mul", "deci", name="m10")
    sadf.add_channel("deci", "eqlz", name="m11")
    sadf.add_channel("eqlz", "fork3", name="m12")
    sadf.add_channel("fork3", "dec", name="m13")
    sadf.add_channel("fork3", "err", name="m14")
    sadf.add_channel("dec", "err", name="m15")
    sadf.add_channel("err", "upd", name="m16")
    sadf.add_channel("upd", "eqlz", initial_tokens=1, name="m17")
    sadf.add_channel("dec", "interp", name="m18")
    sadf.add_channel("interp", "out", name="m19")

    tracking_times = {
        "in": 1, "filt": 2, "fork1": 1, "hil": 2, "demod": 1, "fork2": 1,
        "conj": 1, "mul": 1, "deci": 1, "eqlz": 2, "fork3": 1, "dec": 1,
        "err": 1, "upd": 2, "interp": 1, "out": 1,
    }
    rates = {"productions": {"m18": 16}, "consumptions": {"m10": 16}}
    sadf.add_scenario(
        "acquisition",
        execution_times={**tracking_times, "eqlz": 4, "upd": 5, "dec": 2, "err": 2},
        **rates,
    )
    sadf.add_scenario("tracking", execution_times=tracking_times, **rates)

    fsm = ScenarioFSM("acquisition")
    fsm.add_transition("acquisition", "acquisition")
    fsm.add_transition("acquisition", "tracking", delay=4)
    fsm.add_transition("tracking", "tracking")
    fsm.add_transition("tracking", "acquisition", delay=2)
    sadf.set_fsm(fsm)
    return sadf


def h263_frames(i_blocks: int = 4, p_blocks: int = 2) -> SADFGraph:
    """The H.263 decoder with I-frame and P-frame scenarios.

    The skeleton is the four-actor decoder chain of
    :func:`repro.gallery.h263.h263_decoder`; the burst rate *is* the
    scenario: an I frame carries *i_blocks* macroblock tokens per frame
    at full decode cost, a P frame *p_blocks* at lighter cost.  The FSM
    starts on an I frame, resides on P frames, and pays a reference-
    frame switch delay around every I frame (no back-to-back I frames).
    """
    if p_blocks < 1 or i_blocks <= p_blocks:
        raise ValueError("need i_blocks > p_blocks >= 1")
    sadf = SADFGraph("h263-frames")
    for name in ("vld", "iq", "idct", "mc"):
        sadf.add_actor(name)
    sadf.add_channel("vld", "iq", name="h1")
    sadf.add_channel("iq", "idct", name="h2")
    sadf.add_channel("idct", "mc", name="h3")

    sadf.add_scenario(
        "i",
        execution_times={"vld": 4, "iq": 1, "idct": 1, "mc": 3},
        productions={"h1": i_blocks},
        consumptions={"h3": i_blocks},
    )
    sadf.add_scenario(
        "p",
        execution_times={"vld": 2, "iq": 1, "idct": 1, "mc": 2},
        productions={"h1": p_blocks},
        consumptions={"h3": p_blocks},
    )

    fsm = ScenarioFSM("i")
    fsm.add_transition("i", "p", delay=1)
    fsm.add_transition("p", "p")
    fsm.add_transition("p", "i", delay=2)
    sadf.set_fsm(fsm)
    return sadf
