"""The example graphs drawn in the paper itself.

``fig1_example`` is the running example used throughout the paper; the
reconstruction below reproduces every number the text quotes:

* repetition vector (3, 2, 1) for (a, b, c);
* with storage distribution (alpha, beta) -> (4, 2): throughput of
  actor c is 1/7 with the schedule of Table 1;
* raising alpha to 6 gives throughput 1/6;
* the maximal throughput 1/4 (actor b fires twice, 2 time steps each,
  per firing of c) is reached at distribution size 10;
* (4, 2) and (6, 2) are minimal storage distributions, (5, 2) is not.

``fig6_example`` illustrates that minimal storage distributions are
not unique.  The original figure is not recoverable from the available
text, so this is a *reconstruction with the documented properties*: a
symmetric four-channel graph in which two different distributions of
the same size are both minimal for the same throughput of actor d.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import SDFGraph


def fig1_example() -> SDFGraph:
    """The paper's running example (Fig. 1)."""
    return (
        GraphBuilder("example")
        .actor("a", execution_time=1)
        .actor("b", execution_time=2)
        .actor("c", execution_time=2)
        .channel("a", "b", production=2, consumption=3, name="alpha")
        .channel("b", "c", production=1, consumption=2, name="beta")
        .build()
    )


def fig6_example() -> SDFGraph:
    """A graph with non-unique minimal storage distributions (Fig. 6).

    Two parallel branches (b and c) between a source a and a sink d.
    With the chosen execution times the design space has a Pareto
    point whose throughput is realised by two *different* minimal
    storage distributions of the same size — the property the paper's
    Fig. 6 illustrates with the distributions (1,2,3,3) and (2,1,3,3):
    here size 7 is reached by both (2,2,2,1) and (2,1,2,2).
    """
    return (
        GraphBuilder("fig6")
        .actor("a", execution_time=1)
        .actor("b", execution_time=3)
        .actor("c", execution_time=2)
        .actor("d", execution_time=1)
        .channel("a", "b", production=1, consumption=1, name="alpha")
        .channel("a", "c", production=1, consumption=1, name="beta")
        .channel("b", "d", production=1, consumption=1, name="gamma")
        .channel("c", "d", production=1, consumption=1, name="delta")
        .build()
    )
