"""The graphs used in the paper's experiments (Sec. 11), plus helpers.

* :mod:`repro.gallery.paper` — the running example of Fig. 1 and a
  reconstruction of the Fig. 6 graph,
* :mod:`repro.gallery.bml99` — the three example graphs of
  Bhattacharyya, Murthy & Lee (1999): modem, CD-to-DAT sample-rate
  converter and satellite receiver (Figs. 9-11 of the paper),
* :mod:`repro.gallery.h263` — the H.263 decoder model (Fig. 12),
* :mod:`repro.gallery.sadf_modes` — multi-mode (FSM-SADF) variants of
  the modem and H.263 workloads for the scenario-aware analysis,
* :mod:`repro.gallery.random_graphs` — consistent-by-construction
  random graphs for property-based testing,
* :mod:`repro.gallery.registry` — name-based lookup for the CLI and
  the benchmark harness.

The Fig. 1 running example is reconstructed exactly (every quoted
number of the paper is reproduced by it); the other graphs are
documented reconstructions — see DESIGN.md for the substitution notes.
"""

from repro.gallery.bml99 import modem, sample_rate_converter, satellite_receiver
from repro.gallery.h263 import h263_decoder
from repro.gallery.paper import fig1_example, fig6_example
from repro.gallery.random_graphs import random_consistent_graph
from repro.gallery.registry import (
    gallery_graph,
    gallery_names,
    sadf_gallery_graph,
    sadf_gallery_names,
)
from repro.gallery.sadf_modes import h263_frames, modem_modes

__all__ = [
    "fig1_example",
    "fig6_example",
    "gallery_graph",
    "gallery_names",
    "h263_decoder",
    "h263_frames",
    "modem",
    "modem_modes",
    "random_consistent_graph",
    "sadf_gallery_graph",
    "sadf_gallery_names",
    "sample_rate_converter",
    "satellite_receiver",
]
