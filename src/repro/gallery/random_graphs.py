"""Random consistent SDF graphs for property-based testing.

The generator chooses a repetition vector first and derives channel
rates from it, so every generated graph is consistent *by
construction*; back edges receive a full iteration's worth of initial
tokens, so the generated graphs are also deadlock-free with unbounded
storage.  This gives the hypothesis-based tests a rich supply of
well-formed inputs without filtering.
"""

from __future__ import annotations

import random
from math import gcd

from repro.graph.builder import GraphBuilder
from repro.graph.graph import SDFGraph


def random_consistent_graph(
    rng: random.Random,
    *,
    max_actors: int = 5,
    max_repetition: int = 4,
    max_rate_factor: int = 2,
    max_execution_time: int = 3,
    back_edge_probability: float = 0.3,
    extra_edge_probability: float = 0.3,
) -> SDFGraph:
    """Generate a consistent, unbounded-storage-deadlock-free graph.

    The topology is a random chain (guaranteeing weak connectivity)
    with optional extra forward edges and token-carrying back edges.
    """
    num_actors = rng.randint(2, max_actors)
    names = [f"a{i}" for i in range(num_actors)]
    repetitions = {name: rng.randint(1, max_repetition) for name in names}

    builder = GraphBuilder(f"random{rng.randrange(10**6)}")
    for name in names:
        builder.actor(name, execution_time=rng.randint(1, max_execution_time))

    channel_count = 0

    def add(src: str, dst: str, back: bool) -> None:
        nonlocal channel_count
        q_src, q_dst = repetitions[src], repetitions[dst]
        divisor = gcd(q_src, q_dst)
        factor = rng.randint(1, max_rate_factor)
        production = (q_dst // divisor) * factor
        consumption = (q_src // divisor) * factor
        tokens = consumption * q_dst if back else 0
        builder.channel(src, dst, production, consumption, tokens, name=f"c{channel_count}")
        channel_count += 1

    for i in range(num_actors - 1):
        add(names[i], names[i + 1], back=False)
    for i in range(num_actors):
        for j in range(i + 2, num_actors):
            if rng.random() < extra_edge_probability:
                add(names[i], names[j], back=False)
        for j in range(i):
            if rng.random() < back_edge_probability:
                add(names[i], names[j], back=True)
    return builder.build()
