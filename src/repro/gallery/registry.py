"""Name-based access to the gallery graphs.

Used by the command-line tool and the benchmark harness so that every
experiment can address its workload by the name the paper uses.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import GraphError
from repro.gallery.bml99 import modem, sample_rate_converter, satellite_receiver
from repro.gallery.extras import bipartite, mp3_decoder
from repro.gallery.h263 import h263_decoder
from repro.gallery.paper import fig1_example, fig6_example
from repro.graph.graph import SDFGraph

_REGISTRY: dict[str, Callable[[], SDFGraph]] = {
    "example": fig1_example,
    "fig6": fig6_example,
    "modem": modem,
    "samplerate": sample_rate_converter,
    "satellite": satellite_receiver,
    "h263": h263_decoder,
    "h263-small": lambda: h263_decoder(blocks=99),
    "bipartite": bipartite,
    "mp3": mp3_decoder,
}


def gallery_names() -> list[str]:
    """The available gallery graph names."""
    return sorted(_REGISTRY)


def gallery_graph(name: str) -> SDFGraph:
    """Construct the gallery graph called *name*."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise GraphError(
            f"unknown gallery graph {name!r}; available: {', '.join(gallery_names())}"
        ) from None
    return factory()
