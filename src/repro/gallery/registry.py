"""Name-based access to the gallery graphs.

Used by the command-line tool and the benchmark harness so that every
experiment can address its workload by the name the paper uses.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import GraphError
from repro.gallery.bml99 import modem, sample_rate_converter, satellite_receiver
from repro.gallery.extras import bipartite, mp3_decoder
from repro.gallery.h263 import h263_decoder
from repro.gallery.paper import fig1_example, fig6_example
from repro.gallery.sadf_modes import h263_frames, modem_modes
from repro.graph.graph import SDFGraph
from repro.sadf.graph import SADFGraph

_REGISTRY: dict[str, Callable[[], SDFGraph]] = {
    "example": fig1_example,
    "fig6": fig6_example,
    "modem": modem,
    "samplerate": sample_rate_converter,
    "satellite": satellite_receiver,
    "h263": h263_decoder,
    "h263-small": lambda: h263_decoder(blocks=99),
    "bipartite": bipartite,
    "mp3": mp3_decoder,
}


#: Scenario-aware (FSM-SADF) gallery entries, separate from the SDF
#: registry: they construct :class:`~repro.sadf.graph.SADFGraph`
#: instances and feed the ``--scenarios`` analysis surface.
_SADF_REGISTRY: dict[str, Callable[[], SADFGraph]] = {
    "modem-modes": modem_modes,
    "h263-frames": h263_frames,
}


def gallery_names() -> list[str]:
    """The available gallery graph names."""
    return sorted(_REGISTRY)


def gallery_graph(name: str) -> SDFGraph:
    """Construct the gallery graph called *name*."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise GraphError(
            f"unknown gallery graph {name!r}; available: {', '.join(gallery_names())}"
        ) from None
    return factory()


def sadf_gallery_names() -> list[str]:
    """The available scenario-aware gallery graph names."""
    return sorted(_SADF_REGISTRY)


def sadf_gallery_graph(name: str) -> SADFGraph:
    """Construct the scenario-aware gallery graph called *name*."""
    try:
        factory = _SADF_REGISTRY[name]
    except KeyError:
        raise GraphError(
            f"unknown SADF gallery graph {name!r};"
            f" available: {', '.join(sadf_gallery_names())}"
        ) from None
    return factory()
