"""The example graphs of Bhattacharyya, Murthy & Lee (1999).

The paper's experiments (Figs. 9-11, Table 2) use three graphs from
[BML99]: a modem, a CD-to-DAT sample-rate converter and a satellite
receiver.  The figures are not contained in the text available to this
reproduction, so the graphs below are rebuilt from the literature:

* the **sample-rate converter** is the classical CD-to-DAT chain whose
  rate pairs (1:1, 2:3, 2:7, 8:7, 5:1) realise the 147:160 conversion
  of 44.1 kHz to 48 kHz — topology and rates are exact;
* the **modem** keeps the documented size of the original (16 actors,
  19 channels, a 16:1 / 1:16 rate change and feedback loops) with
  reconstructed execution times;
* the **satellite receiver** keeps the documented size of the Ritz
  et al. model (22 actors, 26 channels, two parallel filterbank
  chains); the original's 240:1 downsampling is parameterised so the
  default stays tractable in pure Python (full rate available via the
  ``downsampling`` argument).

Absolute Pareto coordinates therefore differ from the paper's for the
modem and satellite receiver; the staircase *shape* and the relative
difficulty ordering are preserved.  See EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import SDFGraph


def sample_rate_converter() -> SDFGraph:
    """CD-to-DAT sample-rate converter (Fig. 10 of the paper).

    Repetition vector (147, 147, 98, 28, 32, 160).
    """
    return (
        GraphBuilder("samplerate")
        .actor("cd", execution_time=1)
        .actor("stage1", execution_time=1)
        .actor("stage2", execution_time=2)
        .actor("stage3", execution_time=3)
        .actor("stage4", execution_time=2)
        .actor("dat", execution_time=1)
        .channel("cd", "stage1", production=1, consumption=1, name="c1")
        .channel("stage1", "stage2", production=2, consumption=3, name="c2")
        .channel("stage2", "stage3", production=2, consumption=7, name="c3")
        .channel("stage3", "stage4", production=8, consumption=7, name="c4")
        .channel("stage4", "dat", production=5, consumption=1, name="c5")
        .build()
    )


def modem() -> SDFGraph:
    """Modem (Fig. 9 of the paper; reconstruction, 16 actors, 19 channels).

    A serial demodulation chain with a 1:16 interpolating / 16:1
    decimating rate change, an equaliser feedback loop and a carrier
    tracking loop — the structural features of the BML99 modem.
    """
    builder = (
        GraphBuilder("modem")
        .actor("in", execution_time=1)
        .actor("filt", execution_time=2)
        .actor("fork1", execution_time=1)
        .actor("hil", execution_time=2)
        .actor("demod", execution_time=1)
        .actor("fork2", execution_time=1)
        .actor("conj", execution_time=1)
        .actor("mul", execution_time=1)
        .actor("deci", execution_time=1)
        .actor("eqlz", execution_time=2)
        .actor("fork3", execution_time=1)
        .actor("dec", execution_time=1)
        .actor("err", execution_time=1)
        .actor("upd", execution_time=2)
        .actor("interp", execution_time=1)
        .actor("out", execution_time=1)
    )
    builder.channel("in", "filt", 1, 1, name="m1")
    builder.channel("filt", "fork1", 1, 1, name="m2")
    builder.channel("fork1", "hil", 1, 1, name="m3")
    builder.channel("fork1", "demod", 1, 1, name="m4")
    builder.channel("hil", "demod", 1, 1, name="m5")
    builder.channel("demod", "fork2", 1, 1, name="m6")
    builder.channel("fork2", "conj", 1, 1, name="m7")
    builder.channel("fork2", "mul", 1, 1, name="m8")
    builder.channel("conj", "mul", 1, 1, initial_tokens=1, name="m9")
    # 16:1 decimation into the symbol-rate part of the receiver.
    builder.channel("mul", "deci", 1, 16, name="m10")
    builder.channel("deci", "eqlz", 1, 1, name="m11")
    builder.channel("eqlz", "fork3", 1, 1, name="m12")
    builder.channel("fork3", "dec", 1, 1, name="m13")
    builder.channel("fork3", "err", 1, 1, name="m14")
    builder.channel("dec", "err", 1, 1, name="m15")
    builder.channel("err", "upd", 1, 1, name="m16")
    # Equaliser coefficient update loop (one-iteration delay).
    builder.channel("upd", "eqlz", 1, 1, initial_tokens=1, name="m17")
    # 1:16 interpolation back to the sample rate for the output stage.
    builder.channel("dec", "interp", 16, 1, name="m18")
    builder.channel("interp", "out", 1, 1, name="m19")
    return builder.build()


def satellite_receiver(downsampling: int = 4) -> SDFGraph:
    """Satellite receiver (Fig. 11 of the paper; reconstruction).

    Two parallel I/Q filterbank chains that are downsampled, matched,
    and merged into a symbol detector — 22 actors and 26 channels as
    in the Ritz et al. model.  The original downsamples 240:1; the
    *downsampling* parameter (default 4 per stage, i.e. 16:1 overall)
    keeps the pure-Python exploration tractable while exercising the
    identical structure.  Pass larger values to approach the original.
    """
    if downsampling < 2:
        raise ValueError("downsampling must be at least 2")
    d = downsampling
    builder = GraphBuilder("satellite")
    for branch in ("i", "q"):
        builder.actor(f"src_{branch}", execution_time=1)
        builder.actor(f"dc_{branch}", execution_time=1)
        builder.actor(f"flt1_{branch}", execution_time=2)
        builder.actor(f"dwn1_{branch}", execution_time=1)
        builder.actor(f"flt2_{branch}", execution_time=2)
        builder.actor(f"dwn2_{branch}", execution_time=1)
        builder.actor(f"mf_{branch}", execution_time=3)
        builder.actor(f"agc_{branch}", execution_time=1)
        builder.actor(f"trk_{branch}", execution_time=1)
    builder.actor("merge", execution_time=1)
    builder.actor("phase", execution_time=2)
    builder.actor("detect", execution_time=2)
    builder.actor("sink", execution_time=1)

    for branch in ("i", "q"):
        builder.channel(f"src_{branch}", f"dc_{branch}", 1, 1, name=f"s0_{branch}")
        builder.channel(f"dc_{branch}", f"flt1_{branch}", 1, 1, name=f"s1_{branch}")
        builder.channel(f"flt1_{branch}", f"dwn1_{branch}", 1, d, name=f"s2_{branch}")
        builder.channel(f"dwn1_{branch}", f"flt2_{branch}", 1, 1, name=f"s3_{branch}")
        builder.channel(f"flt2_{branch}", f"dwn2_{branch}", 1, d, name=f"s4_{branch}")
        builder.channel(f"dwn2_{branch}", f"mf_{branch}", 1, 1, name=f"s5_{branch}")
        builder.channel(f"mf_{branch}", f"agc_{branch}", 1, 1, name=f"s6_{branch}")
        # Gain-control feedback around the matched filter.
        builder.channel(f"agc_{branch}", f"mf_{branch}", 1, 1, initial_tokens=1, name=f"s7_{branch}")
        builder.channel(f"agc_{branch}", f"trk_{branch}", 1, 1, name=f"s8_{branch}")
        builder.channel(f"trk_{branch}", "merge", 1, 1, name=f"s9_{branch}")
        # Carrier-recovery feedback from the phase corrector into the
        # per-branch timing tracker.
        builder.channel("phase", f"trk_{branch}", 1, 1, initial_tokens=1, name=f"s14_{branch}")
    builder.channel("merge", "phase", 2, 2, name="s10")
    builder.channel("phase", "detect", 1, 1, name="s11")
    # Carrier-phase feedback from the detector.
    builder.channel("detect", "phase", 1, 1, initial_tokens=1, name="s12")
    builder.channel("detect", "sink", 1, 1, name="s13")
    return builder.build()
