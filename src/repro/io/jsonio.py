"""Plain JSON / dict graph format.

A minimal, stable exchange format::

    {
      "name": "example",
      "actors": [{"name": "a", "execution_time": 1}, ...],
      "channels": [
        {"name": "alpha", "source": "a", "destination": "b",
         "production": 2, "consumption": 3, "initial_tokens": 0},
        ...
      ]
    }
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from collections.abc import Mapping

from repro.exceptions import ParseError
from repro.graph.graph import SDFGraph
from repro.graph.validation import validate_graph


def graph_to_dict(graph: SDFGraph) -> dict:
    """Serialise *graph* to a JSON-compatible dictionary."""
    return {
        "name": graph.name,
        "actors": [
            {"name": actor.name, "execution_time": actor.execution_time}
            for actor in graph.actors.values()
        ],
        "channels": [
            {
                "name": channel.name,
                "source": channel.source,
                "destination": channel.destination,
                "production": channel.production,
                "consumption": channel.consumption,
                "initial_tokens": channel.initial_tokens,
            }
            for channel in graph.channels.values()
        ],
    }


def graph_from_dict(data: Mapping) -> SDFGraph:
    """Reconstruct an :class:`SDFGraph` from :func:`graph_to_dict` output."""
    try:
        graph = SDFGraph(data.get("name", "sdf"))
        for actor in data["actors"]:
            graph.add_actor(actor["name"], int(actor.get("execution_time", 1)))
        for channel in data["channels"]:
            graph.add_channel(
                channel["source"],
                channel["destination"],
                int(channel.get("production", 1)),
                int(channel.get("consumption", 1)),
                int(channel.get("initial_tokens", 0)),
                channel.get("name"),
            )
    except (KeyError, TypeError) as error:
        raise ParseError(f"malformed graph dictionary: {error}") from error
    validate_graph(graph)
    return graph


def graph_fingerprint(graph: SDFGraph) -> str:
    """Stable content hash of *graph* — the graph-registry key.

    The fingerprint covers everything that determines analysis results
    (actors with execution times, channels with rates and initial
    tokens) and nothing that does not: the graph's display *name* is
    excluded, and actors/channels are sorted canonically, so two graphs
    built in different insertion orders — or submitted under different
    names by different clients — hash identically.  Any difference in
    structure, rates, execution times or initial tokens changes the
    hash.
    """
    canonical = {
        "actors": sorted(
            (actor.name, actor.execution_time) for actor in graph.actors.values()
        ),
        "channels": sorted(
            (
                channel.name,
                channel.source,
                channel.destination,
                channel.production,
                channel.consumption,
                channel.initial_tokens,
            )
            for channel in graph.channels.values()
        ),
    }
    digest = hashlib.sha256(
        json.dumps(canonical, separators=(",", ":")).encode("utf-8")
    )
    return digest.hexdigest()


def write_json(graph: SDFGraph, path: str | Path) -> None:
    """Write *graph* to *path* as JSON."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2) + "\n", encoding="utf-8")


def read_json(path: str | Path) -> SDFGraph:
    """Read a JSON graph file written by :func:`write_json`."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ParseError(f"malformed JSON: {error}") from error
    return graph_from_dict(data)
