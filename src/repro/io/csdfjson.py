"""JSON format for cyclo-static dataflow graphs.

Mirrors :mod:`repro.io.jsonio` with per-phase rate lists::

    {
      "name": "decimator",
      "model": "csdf",
      "actors": [{"name": "decim", "execution_times": [2, 1]}, ...],
      "channels": [
        {"name": "b", "source": "decim", "destination": "snk",
         "productions": [1, 0], "consumptions": [1],
         "initial_tokens": 0},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Mapping

from repro.csdf.graph import CSDFGraph
from repro.exceptions import ParseError


def csdf_to_dict(graph: CSDFGraph) -> dict:
    """Serialise *graph* to a JSON-compatible dictionary."""
    return {
        "name": graph.name,
        "model": "csdf",
        "actors": [
            {"name": actor.name, "execution_times": list(actor.execution_times)}
            for actor in graph.actors.values()
        ],
        "channels": [
            {
                "name": channel.name,
                "source": channel.source,
                "destination": channel.destination,
                "productions": list(channel.productions),
                "consumptions": list(channel.consumptions),
                "initial_tokens": channel.initial_tokens,
            }
            for channel in graph.channels.values()
        ],
    }


def csdf_from_dict(data: Mapping) -> CSDFGraph:
    """Reconstruct a :class:`CSDFGraph` from :func:`csdf_to_dict` output.

    Scalar rates and execution times are accepted and treated as
    single-phase sequences, so plain-SDF JSON files load as one-phase
    CSDF graphs.
    """

    def as_sequence(value) -> tuple[int, ...]:
        if isinstance(value, int):
            return (value,)
        return tuple(int(entry) for entry in value)

    try:
        graph = CSDFGraph(data.get("name", "csdf"))
        for actor in data["actors"]:
            times = actor.get("execution_times", actor.get("execution_time", 1))
            graph.add_actor(actor["name"], as_sequence(times))
        for channel in data["channels"]:
            graph.add_channel(
                channel["source"],
                channel["destination"],
                as_sequence(channel.get("productions", channel.get("production", 1))),
                as_sequence(channel.get("consumptions", channel.get("consumption", 1))),
                int(channel.get("initial_tokens", 0)),
                channel.get("name"),
            )
    except (KeyError, TypeError, ValueError) as error:
        raise ParseError(f"malformed CSDF graph dictionary: {error}") from error
    return graph


def write_csdf_json(graph: CSDFGraph, path: str | Path) -> None:
    """Write *graph* to *path* as JSON."""
    Path(path).write_text(json.dumps(csdf_to_dict(graph), indent=2) + "\n", encoding="utf-8")


def read_csdf_json(path: str | Path) -> CSDFGraph:
    """Read a CSDF JSON file written by :func:`write_csdf_json`."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ParseError(f"malformed JSON: {error}") from error
    return csdf_from_dict(data)
