"""Graphviz DOT export.

Renders SDF graphs the way the paper draws them: execution times above
the actors, port rates as edge-end labels and initial tokens as a dot
annotation on the channel.
"""

from __future__ import annotations

from repro.graph.graph import SDFGraph


def to_dot(graph: SDFGraph, *, rankdir: str = "LR") -> str:
    """A DOT digraph for *graph*."""
    lines = [
        f"digraph \"{graph.name}\" {{",
        f"  rankdir={rankdir};",
        "  node [shape=circle];",
    ]
    for actor in graph.actors.values():
        lines.append(
            f"  \"{actor.name}\" [label=\"{actor.name}\\nt={actor.execution_time}\"];"
        )
    for channel in graph.channels.values():
        label = channel.name
        if channel.initial_tokens:
            label += f" ({channel.initial_tokens}•)"
        lines.append(
            f"  \"{channel.source}\" -> \"{channel.destination}\""
            f" [label=\"{label}\", taillabel=\"{channel.production}\","
            f" headlabel=\"{channel.consumption}\"];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
