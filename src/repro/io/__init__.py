"""Reading and writing SDF graphs.

The paper's tool ``buffy`` "takes an XML description of an SDF graph
as input" (Sec. 10).  This package provides that XML dialect (a
compatible subset of the SDF3 format), a plain JSON format, and DOT
export for visualisation.
"""

from repro.io.dot import to_dot
from repro.io.jsonio import graph_from_dict, graph_to_dict, read_json, write_json
from repro.io.sadfjson import (
    read_sadf_json,
    sadf_from_dict,
    sadf_to_dict,
    write_sadf_json,
)
from repro.io.sdfxml import read_xml, read_xml_string, write_xml, write_xml_string
from repro.io.vcd import schedule_to_vcd, states_to_vcd

__all__ = [
    "graph_from_dict",
    "graph_to_dict",
    "read_json",
    "read_sadf_json",
    "read_xml",
    "read_xml_string",
    "sadf_from_dict",
    "sadf_to_dict",
    "schedule_to_vcd",
    "states_to_vcd",
    "to_dot",
    "write_json",
    "write_sadf_json",
    "write_xml",
    "write_xml_string",
]
