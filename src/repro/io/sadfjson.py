"""Versioned JSON format for FSM-SADF graphs.

The schema (version :data:`SADF_SCHEMA_VERSION`)::

    {
      "schema": 1,
      "model": "sadf",
      "name": "modem-modes",
      "actors": ["in", "filt", ...],
      "channels": [
        {"name": "m1", "source": "in", "destination": "filt",
         "initial_tokens": 0},
        ...
      ],
      "scenarios": {
        "tracking": {
          "execution_times": {"in": 1, ...},
          "productions": {"m1": 1, ...},
          "consumptions": {"m1": 1, ...}
        },
        ...
      },
      "fsm": {
        "initial": "acquisition",
        "transitions": [
          {"source": "acquisition", "target": "tracking", "delay": 4},
          ...
        ]
      }
    }

``fsm`` may be ``null`` (any scenario order, zero delays).  Per-
scenario rate/time mappings may be partial — unmentioned actors and
channels default to 1 exactly as in
:meth:`~repro.sadf.graph.SADFGraph.add_scenario`.  Readers reject
unknown schema versions, unknown models, and FSM states that name no
scenario with :class:`~repro.exceptions.ParseError` — never by failing
on whatever key happens to be missing.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from collections.abc import Mapping

from repro.exceptions import GraphError, ParseError, ValidationError
from repro.sadf.fsm import ScenarioFSM
from repro.sadf.graph import SADFGraph

#: Version written into (and required from) every sadfjson document.
SADF_SCHEMA_VERSION = 1

#: The ``model`` discriminator distinguishing sadfjson documents from
#: the plain SDF JSON of :mod:`repro.io.jsonio` (which has no such
#: field) in shared input paths (CLI detection, service graph store).
SADF_MODEL = "sadf"


def sadf_to_dict(sadf: SADFGraph) -> dict:
    """Serialise *sadf* to a JSON-compatible dictionary."""
    document: dict = {
        "schema": SADF_SCHEMA_VERSION,
        "model": SADF_MODEL,
        "name": sadf.name,
        "actors": list(sadf.actor_names),
        "channels": [
            {
                "name": channel.name,
                "source": channel.source,
                "destination": channel.destination,
                "initial_tokens": channel.initial_tokens,
            }
            for channel in sadf.channels.values()
        ],
        "scenarios": {
            scenario.name: {
                "execution_times": dict(scenario.execution_times),
                "productions": dict(scenario.productions),
                "consumptions": dict(scenario.consumptions),
            }
            for scenario in sadf.scenarios.values()
        },
        "fsm": None,
    }
    fsm = sadf.fsm
    if fsm is not None:
        document["fsm"] = {
            "initial": fsm.initial,
            "transitions": [
                {"source": t.source, "target": t.target, "delay": t.delay}
                for t in fsm.transitions
            ],
        }
    return document


def sadf_from_dict(data: Mapping) -> SADFGraph:
    """Reconstruct an :class:`~repro.sadf.graph.SADFGraph` from
    :func:`sadf_to_dict` output (:class:`~repro.exceptions.ParseError`
    on any malformed document)."""
    if not isinstance(data, Mapping):
        raise ParseError("sadfjson document must be a JSON object")
    version = data.get("schema")
    if version != SADF_SCHEMA_VERSION:
        raise ParseError(
            f"unsupported sadfjson schema version {version!r}; this build"
            f" reads version {SADF_SCHEMA_VERSION}"
        )
    model = data.get("model")
    if model != SADF_MODEL:
        raise ParseError(
            f"not an SADF document: model is {model!r}, expected {SADF_MODEL!r}"
        )
    try:
        sadf = SADFGraph(data.get("name", "sadf"))
        for actor in data["actors"]:
            sadf.add_actor(actor)
        for channel in data["channels"]:
            sadf.add_channel(
                channel["source"],
                channel["destination"],
                int(channel.get("initial_tokens", 0)),
                channel.get("name"),
            )
        scenarios = data["scenarios"]
        if not isinstance(scenarios, Mapping):
            raise ParseError("'scenarios' must map scenario names to bindings")
        for name, binding in scenarios.items():
            sadf.add_scenario(
                name,
                execution_times=binding.get("execution_times"),
                productions=binding.get("productions"),
                consumptions=binding.get("consumptions"),
            )
        fsm_data = data.get("fsm")
        if fsm_data is not None:
            fsm = ScenarioFSM(fsm_data["initial"])
            for transition in fsm_data.get("transitions", ()):
                fsm.add_transition(
                    transition["source"],
                    transition["target"],
                    int(transition.get("delay", 0)),
                )
            sadf.set_fsm(fsm)
    except (KeyError, TypeError, AttributeError) as error:
        raise ParseError(f"malformed sadfjson document: {error}") from error
    except (GraphError, ValidationError) as error:
        # Unknown scenario refs in the FSM, rate inconsistencies,
        # duplicate names, ... — construction-level rejections surface
        # as parse errors of the document.
        raise ParseError(f"invalid SADF graph in document: {error}") from error
    sadf.validate()
    return sadf


def sadf_fingerprint(sadf: SADFGraph) -> str:
    """Stable content hash of *sadf* — the service graph-registry key.

    Mirrors :func:`repro.io.jsonio.graph_fingerprint`: everything that
    determines analysis results (skeleton, per-scenario bindings, FSM
    with delays) is covered canonically; the display name is not.
    """
    fsm = sadf.fsm
    canonical = {
        "model": SADF_MODEL,
        "actors": sorted(sadf.actor_names),
        "channels": sorted(
            (c.name, c.source, c.destination, c.initial_tokens)
            for c in sadf.channels.values()
        ),
        "scenarios": sorted(
            (
                s.name,
                sorted(s.execution_times.items()),
                sorted(s.productions.items()),
                sorted(s.consumptions.items()),
            )
            for s in sadf.scenarios.values()
        ),
        "fsm": None
        if fsm is None
        else [
            fsm.initial,
            sorted((t.source, t.target, t.delay) for t in fsm.transitions),
        ],
    }
    digest = hashlib.sha256(
        json.dumps(canonical, separators=(",", ":")).encode("utf-8")
    )
    return digest.hexdigest()


def is_sadf_document(data: object) -> bool:
    """Whether a decoded JSON value claims to be an SADF document
    (regardless of whether it parses cleanly)."""
    return isinstance(data, Mapping) and data.get("model") == SADF_MODEL


def write_sadf_json(sadf: SADFGraph, path: str | Path) -> None:
    """Write *sadf* to *path* as sadfjson."""
    Path(path).write_text(
        json.dumps(sadf_to_dict(sadf), indent=2) + "\n", encoding="utf-8"
    )


def read_sadf_json(path: str | Path) -> SADFGraph:
    """Read a sadfjson file written by :func:`write_sadf_json`."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ParseError(f"malformed JSON: {error}") from error
    return sadf_from_dict(data)
