"""SDF3-compatible XML input/output.

The dialect written and read here is the subset of the SDF3
``sdf3/applicationGraph`` schema needed for buffer-sizing: actors with
rate-annotated ports, channels with initial tokens, and per-actor
execution times in the ``sdfProperties`` section.  Files written by
:func:`write_xml` are accepted by SDF3's own tools for plain SDF
graphs, and SDF3-produced files with a single processor type load
unchanged.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.exceptions import ParseError
from repro.graph.graph import SDFGraph
from repro.graph.validation import validate_graph


def write_xml_string(graph: SDFGraph) -> str:
    """Serialise *graph* to an SDF3-style XML document string."""
    root = ET.Element("sdf3", {"type": "sdf", "version": "1.0"})
    app = ET.SubElement(root, "applicationGraph", {"name": graph.name})
    sdf = ET.SubElement(app, "sdf", {"name": graph.name, "type": graph.name})
    for actor in graph.actors.values():
        actor_el = ET.SubElement(sdf, "actor", {"name": actor.name, "type": actor.name})
        for port in actor.ports.values():
            ET.SubElement(
                actor_el,
                "port",
                {"name": port.name, "type": port.direction.value, "rate": str(port.rate)},
            )
    for channel in graph.channels.values():
        attributes = {
            "name": channel.name,
            "srcActor": channel.source,
            "srcPort": channel.source_port,
            "dstActor": channel.destination,
            "dstPort": channel.destination_port,
        }
        if channel.initial_tokens:
            attributes["initialTokens"] = str(channel.initial_tokens)
        ET.SubElement(sdf, "channel", attributes)

    properties = ET.SubElement(app, "sdfProperties")
    for actor in graph.actors.values():
        actor_props = ET.SubElement(properties, "actorProperties", {"actor": actor.name})
        processor = ET.SubElement(actor_props, "processor", {"type": "cpu", "default": "true"})
        ET.SubElement(processor, "executionTime", {"time": str(actor.execution_time)})

    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def write_xml(graph: SDFGraph, path: str | Path) -> None:
    """Write *graph* to *path* as SDF3-style XML."""
    Path(path).write_text(write_xml_string(graph), encoding="utf-8")


def read_xml_string(text: str) -> SDFGraph:
    """Parse an SDF3-style XML document into an :class:`SDFGraph`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as error:
        raise ParseError(f"malformed XML: {error}") from error

    if root.tag != "sdf3":
        raise ParseError(f"expected <sdf3> root element, found <{root.tag}>")
    app = root.find("applicationGraph")
    if app is None:
        raise ParseError("missing <applicationGraph> element")
    sdf = app.find("sdf")
    if sdf is None:
        raise ParseError("missing <sdf> element")

    graph = SDFGraph(app.get("name") or sdf.get("name") or "sdf")

    execution_times = _parse_execution_times(app)
    port_rates: dict[tuple[str, str], int] = {}
    for actor_el in sdf.findall("actor"):
        name = actor_el.get("name")
        if not name:
            raise ParseError("actor without a name")
        graph.add_actor(name, execution_times.get(name, 1))
        for port_el in actor_el.findall("port"):
            port_name = port_el.get("name")
            rate = port_el.get("rate", "1")
            if not port_name:
                raise ParseError(f"actor {name!r}: port without a name")
            port_rates[(name, port_name)] = _parse_int(rate, f"rate of port {port_name!r}")

    for channel_el in sdf.findall("channel"):
        name = channel_el.get("name")
        source = channel_el.get("srcActor")
        destination = channel_el.get("dstActor")
        source_port = channel_el.get("srcPort")
        destination_port = channel_el.get("dstPort")
        if not (name and source and destination and source_port and destination_port):
            raise ParseError(f"channel {name!r}: missing endpoint attributes")
        try:
            production = port_rates[(source, source_port)]
        except KeyError:
            raise ParseError(f"channel {name!r}: unknown source port {source}.{source_port}") from None
        try:
            consumption = port_rates[(destination, destination_port)]
        except KeyError:
            raise ParseError(
                f"channel {name!r}: unknown destination port {destination}.{destination_port}"
            ) from None
        tokens = _parse_int(channel_el.get("initialTokens", "0"), f"initial tokens of {name!r}")
        graph.add_channel(source, destination, production, consumption, tokens, name)

    validate_graph(graph)
    return graph


def read_xml(path: str | Path) -> SDFGraph:
    """Read an SDF3-style XML file into an :class:`SDFGraph`."""
    return read_xml_string(Path(path).read_text(encoding="utf-8"))


def _parse_execution_times(app: ET.Element) -> dict[str, int]:
    times: dict[str, int] = {}
    properties = app.find("sdfProperties")
    if properties is None:
        return times
    for actor_props in properties.findall("actorProperties"):
        actor = actor_props.get("actor")
        if not actor:
            continue
        for processor in actor_props.findall("processor"):
            execution = processor.find("executionTime")
            if execution is not None:
                times[actor] = _parse_int(
                    execution.get("time", "1"), f"execution time of {actor!r}"
                )
    return times


def _parse_int(value: str, what: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ParseError(f"{what}: {value!r} is not an integer") from None
