"""JSON export of exploration results.

Downstream tools (mappers, code generators, dashboards) consume the
Pareto front; this module serialises a
:class:`~repro.buffers.explorer.DesignSpaceResult` (or a bare front)
to a stable JSON document.  Throughputs are exact fractions rendered
as ``"p/q"`` strings to avoid floating-point loss; a ``float``
rendering is included for convenience.

The schema is owned by the model classes —
:meth:`~repro.buffers.pareto.ParetoFront.to_dicts` and
:meth:`~repro.buffers.explorer.DesignSpaceResult.to_dict` — so
checkpoints, the CLI and this module cannot drift apart; the functions
here are thin file-level conveniences kept for compatibility, plus the
inverse readers.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from collections.abc import Mapping

from repro.buffers.explorer import RESULT_SCHEMA_VERSION, DesignSpaceResult
from repro.buffers.pareto import ParetoFront
from repro.exceptions import ParseError


def front_to_dict(front: ParetoFront) -> list[dict]:
    """Serialise the Pareto points with all witnesses."""
    return front.to_dicts()


def front_from_dict(items: list[dict]) -> ParetoFront:
    """Inverse of :func:`front_to_dict` (validates the front invariant)."""
    return ParetoFront.from_dicts(items)


def result_to_dict(result: DesignSpaceResult) -> dict:
    """Serialise a full exploration result."""
    return result.to_dict()


def result_from_dict(data: dict) -> DesignSpaceResult:
    """Inverse of :func:`result_to_dict`.

    Malformed payloads — a missing section, a non-integer capacity, an
    unsupported ``"schema"`` version — raise
    :class:`~repro.exceptions.ParseError` naming the problem.
    """
    if not isinstance(data, Mapping):
        raise ParseError(
            f"exploration result must be a JSON object, not {type(data).__name__}"
        )
    try:
        return DesignSpaceResult.from_dict(data)
    except ParseError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ParseError(
            f"malformed exploration result (schema {RESULT_SCHEMA_VERSION}): {error!r}"
        ) from error


def write_result_json(result: DesignSpaceResult, path: str | Path) -> None:
    """Write an exploration result to *path* as JSON."""
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2) + "\n", encoding="utf-8"
    )


def read_result_json(path: str | Path) -> DesignSpaceResult:
    """Load a :func:`write_result_json` document back into a result.

    Raises :class:`~repro.exceptions.ParseError` for truncated or
    otherwise invalid JSON and for structurally malformed payloads.
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ParseError(f"{path}: not valid result JSON ({error})") from None
    return result_from_dict(data)


def parse_throughput(value: str) -> Fraction:
    """Inverse of the ``"p/q"`` rendering used in the export."""
    return Fraction(value)
