"""JSON export of exploration results.

Downstream tools (mappers, code generators, dashboards) consume the
Pareto front; this module serialises a
:class:`~repro.buffers.explorer.DesignSpaceResult` (or a bare front)
to a stable JSON document.  Throughputs are exact fractions rendered
as ``"p/q"`` strings to avoid floating-point loss; a ``float``
rendering is included for convenience.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path

from repro.buffers.explorer import DesignSpaceResult
from repro.buffers.pareto import ParetoFront


def front_to_dict(front: ParetoFront) -> list[dict]:
    """Serialise the Pareto points with all witnesses."""
    return [
        {
            "size": point.size,
            "throughput": str(point.throughput),
            "throughput_float": float(point.throughput),
            "witnesses": [dict(witness) for witness in point.witnesses],
        }
        for point in front
    ]


def result_to_dict(result: DesignSpaceResult) -> dict:
    """Serialise a full exploration result."""
    return {
        "graph": result.graph_name,
        "observe": result.observe,
        "max_throughput": str(result.max_throughput),
        "lower_bounds": dict(result.lower_bounds),
        "upper_bounds": dict(result.upper_bounds),
        "pareto_front": front_to_dict(result.front),
        "stats": {
            "strategy": result.stats.strategy,
            "evaluations": result.stats.evaluations,
            "max_states_stored": result.stats.max_states_stored,
            "wall_time_s": result.stats.wall_time_s,
            "cache_hits": result.stats.cache_hits,
            "prunes": result.stats.prunes,
            "workers": result.stats.workers,
            "parallel_batches": result.stats.parallel_batches,
        },
    }


def write_result_json(result: DesignSpaceResult, path: str | Path) -> None:
    """Write an exploration result to *path* as JSON."""
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2) + "\n", encoding="utf-8"
    )


def parse_throughput(value: str) -> Fraction:
    """Inverse of the ``"p/q"`` rendering used in the export."""
    return Fraction(value)
