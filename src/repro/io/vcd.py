"""Value-Change-Dump (VCD) export of execution traces.

Schedules and state sequences can be inspected in any waveform viewer
(GTKWave etc.): each actor becomes a 1-bit "busy" wire driven by its
firings, and each channel an integer signal carrying its token count.
One VCD time unit is one SDF time step.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.engine.schedule import Schedule
from repro.engine.state import SDFState
from repro.graph.graph import SDFGraph

#: Printable VCD identifier characters (short codes for signals).
_ID_ALPHABET = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """A compact VCD identifier for signal *index*."""
    code = ""
    index += 1
    while index > 0:
        index, digit = divmod(index - 1, len(_ID_ALPHABET))
        code = _ID_ALPHABET[digit] + code
    return code


def schedule_to_vcd(schedule: Schedule, until: int | None = None) -> str:
    """Render *schedule* as a VCD document with one busy-wire per actor.

    Zero-duration firings appear as a 1-0 pulse within one time unit
    (the fall is emitted at the same timestamp).
    """
    names = schedule.graph.actor_names
    identifiers = {name: _identifier(index) for index, name in enumerate(names)}
    horizon = schedule.horizon if until is None else min(until, schedule.horizon)

    lines = [
        "$comment repro SDF schedule trace $end",
        "$timescale 1 ns $end",
        f"$scope module {schedule.graph.name} $end",
    ]
    for name in names:
        lines.append(f"$var wire 1 {identifiers[name]} busy_{name} $end")
    lines += ["$upscope $end", "$enddefinitions $end", "#0"]
    for name in names:
        lines.append(f"0{identifiers[name]}")

    # Collect transitions: +1 at start, -1 at end (nested levels can't
    # occur — no auto-concurrency — so busy is simply start<=t<end).
    changes: dict[int, list[str]] = {}
    for event in schedule.events:
        if event.start >= horizon and event.start != event.end:
            continue
        changes.setdefault(event.start, []).append(f"1{identifiers[event.actor]}")
        changes.setdefault(min(event.end, horizon) if event.duration else event.start, []).append(
            f"0{identifiers[event.actor]}"
        )
    for timestamp in sorted(changes):
        lines.append(f"#{timestamp}")
        lines.extend(changes[timestamp])
    if horizon not in changes:
        lines.append(f"#{horizon}")
    return "\n".join(lines) + "\n"


def states_to_vcd(graph: SDFGraph, states: Sequence[SDFState]) -> str:
    """Render a tick-state sequence as VCD integer token-count signals.

    Pairs naturally with
    :meth:`repro.engine.executor.Executor.explore_full_state_space`,
    whose result is one state per time step.
    """
    channels = graph.channel_names
    identifiers = {name: _identifier(index) for index, name in enumerate(channels)}

    lines = [
        "$comment repro SDF token-count trace $end",
        "$timescale 1 ns $end",
        f"$scope module {graph.name} $end",
    ]
    for name in channels:
        lines.append(f"$var integer 32 {identifiers[name]} tokens_{name} $end")
    lines += ["$upscope $end", "$enddefinitions $end"]

    previous: dict[str, int] = {}
    for step, state in enumerate(states):
        changed = [
            (name, tokens)
            for name, tokens in zip(channels, state.tokens)
            if previous.get(name) != tokens
        ]
        if changed:
            lines.append(f"#{step}")
            for name, tokens in changed:
                lines.append(f"b{tokens:b} {identifiers[name]}")
                previous[name] = tokens
    lines.append(f"#{len(states)}")
    return "\n".join(lines) + "\n"
