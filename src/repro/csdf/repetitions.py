"""CSDF consistency and repetition vectors.

Over one full phase cycle a CSDF actor produces/consumes the *sum* of
its per-phase rates, so the balance equations read

    q[src] * sum(productions) == q[dst] * sum(consumptions)

with ``q`` counting full phase cycles.  The number of individual
firings per iteration is ``q[a] * num_phases(a)``.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from math import gcd, lcm

from repro.csdf.graph import CSDFGraph
from repro.exceptions import InconsistentGraphError


def csdf_repetition_vector(graph: CSDFGraph) -> dict[str, int]:
    """Full-phase-cycle counts per actor (smallest positive solution).

    Raises :class:`InconsistentGraphError` when only the trivial
    solution exists.
    """
    ratios: dict[str, Fraction] = {}
    adjacency: dict[str, list[tuple[str, Fraction]]] = {name: [] for name in graph.actor_names}
    for channel in graph.channels.values():
        forward = Fraction(channel.total_production, channel.total_consumption)
        adjacency[channel.source].append((channel.destination, forward))
        adjacency[channel.destination].append((channel.source, 1 / forward))

    for start in graph.actor_names:
        if start in ratios:
            continue
        ratios[start] = Fraction(1)
        component = [start]
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbour, multiplier in adjacency[current]:
                expected = ratios[current] * multiplier
                known = ratios.get(neighbour)
                if known is None:
                    ratios[neighbour] = expected
                    component.append(neighbour)
                    queue.append(neighbour)
                elif known != expected:
                    raise InconsistentGraphError(
                        f"CSDF graph {graph.name!r} is inconsistent at actor {neighbour!r}"
                    )
        denominator_lcm = lcm(*(ratios[name].denominator for name in component))
        scaled = [int(ratios[name] * denominator_lcm) for name in component]
        numerator_gcd = gcd(*scaled)
        for name, value in zip(component, scaled):
            ratios[name] = Fraction(value // numerator_gcd)

    return {name: int(ratios[name]) for name in graph.actor_names}


def csdf_is_consistent(graph: CSDFGraph) -> bool:
    """Whether the CSDF balance equations have a non-trivial solution."""
    try:
        csdf_repetition_vector(graph)
    except InconsistentGraphError:
        return False
    return True


def csdf_firings_per_iteration(graph: CSDFGraph) -> dict[str, int]:
    """Phase executions per actor per graph iteration."""
    q = csdf_repetition_vector(graph)
    return {name: q[name] * graph.actor(name).num_phases for name in graph.actor_names}
