"""Deterministic self-timed execution of CSDF graphs.

The execution model extends the SDF engine of :mod:`repro.engine`
phase-wise: a *firing* executes the actor's current phase — it may
start when the phase's input rates are available and the phase's
output space can be claimed — and advances the phase counter on
completion.  Phases with zero rates simply skip the corresponding
condition.  Everything else (claim-at-start semantics, ASAP firing,
determinism, the reduced state space with the ``d`` dimension, cycle
detection, deadlock and starvation handling, tick/event equivalence,
blocking tracking with minimal deficits) carries over unchanged; see
:mod:`repro.engine.executor` for the shared reasoning.

Throughput is counted in *phase executions* of the observed actor per
time step, which coincides with the SDF notion for single-phase
actors.  Divide by ``num_phases`` for full phase-cycles per time step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from collections.abc import Mapping

from repro.csdf.graph import CSDFGraph
from repro.engine.schedule import Schedule
from repro.engine.statestore import StateStore
from repro.exceptions import CapacityError, EngineError, GraphError

_MAX_FIRINGS_PER_INSTANT = 1_000_000
_DEFAULT_STALL_THRESHOLD = 50_000


@dataclass(frozen=True)
class CSDFState:
    """A CSDF execution state: clocks, phase counters, token counts."""

    clocks: tuple[int, ...]
    phases: tuple[int, ...]
    tokens: tuple[int, ...]

    def as_tuple(self) -> tuple[int, ...]:
        """Flat tuple representation (clocks, phases, tokens)."""
        return self.clocks + self.phases + self.tokens


@dataclass(frozen=True)
class CSDFExecutionResult:
    """Outcome of one CSDF execution (mirrors the SDF result)."""

    observe: str
    throughput: Fraction
    deadlocked: bool
    deadlock_time: int | None
    first_firing_time: int | None
    cycle_duration: int
    firings_in_cycle: int
    states_stored: int
    schedule: Schedule | None = None
    space_blocked: frozenset[str] = frozenset()
    token_blocked: frozenset[str] = frozenset()
    space_deficits: Mapping[str, int] = field(default_factory=dict)


@dataclass
class _PhaseInfo:
    name: str
    execution_times: tuple[int, ...]
    # Per phase: list of (channel index, rate), zero rates omitted.
    inputs: list[list[tuple[int, int]]] = field(default_factory=list)
    outputs: list[list[tuple[int, int]]] = field(default_factory=list)


class CSDFExecutor:
    """Runs one CSDF graph under one storage distribution."""

    def __init__(
        self,
        graph: CSDFGraph,
        capacities: Mapping[str, int] | None = None,
        observe: str | None = None,
        *,
        mode: str = "event",
        record_schedule: bool = False,
        track_blocking: bool = False,
        max_instants: int | None = None,
        stall_threshold: int = _DEFAULT_STALL_THRESHOLD,
    ):
        if graph.num_actors == 0:
            raise GraphError("cannot execute an empty graph")
        if mode not in ("event", "tick"):
            raise EngineError(f"unknown execution mode {mode!r}")
        self.graph = graph
        self.mode = mode
        self.record_schedule = record_schedule
        self.track_blocking = track_blocking
        self.max_instants = max_instants
        self.stall_threshold = stall_threshold

        self.actor_names = graph.actor_names
        self.channel_names = graph.channel_names
        if observe is None:
            observe = self.actor_names[-1]
        if observe not in graph.actors:
            raise GraphError(f"unknown observed actor {observe!r}")
        self.observe = observe
        self._observe_idx = self.actor_names.index(observe)

        channel_index = {name: j for j, name in enumerate(self.channel_names)}
        self._initial_tokens = [graph.channels[name].initial_tokens for name in self.channel_names]
        self._capacities: list[int | None] = [None] * len(self.channel_names)
        if capacities is not None:
            for name, capacity in dict(capacities).items():
                if name not in channel_index:
                    raise CapacityError(f"capacity given for unknown channel {name!r}")
                if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 0:
                    raise CapacityError(f"channel {name!r}: capacity must be a non-negative int")
                if capacity < graph.channels[name].initial_tokens:
                    raise CapacityError(
                        f"channel {name!r}: capacity {capacity} is below its initial tokens"
                    )
                self._capacities[channel_index[name]] = capacity

        self._actors: list[_PhaseInfo] = []
        for name in self.actor_names:
            actor = graph.actor(name)
            info = _PhaseInfo(name, actor.execution_times)
            for phase in range(actor.num_phases):
                inputs = [
                    (channel_index[channel.name], channel.consumptions[phase])
                    for channel in graph.incoming(name)
                    if channel.consumptions[phase] > 0
                ]
                outputs = [
                    (channel_index[channel.name], channel.productions[phase])
                    for channel in graph.outgoing(name)
                    if channel.productions[phase] > 0
                ]
                info.inputs.append(inputs)
                info.outputs.append(outputs)
            self._actors.append(info)

        self._reset()

    # ------------------------------------------------------------------
    def _reset(self) -> None:
        self.time = 0
        self.clocks = [0] * len(self._actors)
        self.phases = [0] * len(self._actors)
        self.tokens = list(self._initial_tokens)
        self.schedule = Schedule_shim(self.graph) if self.record_schedule else None
        self._space_blocked: set[int] = set()
        self._token_blocked: set[int] = set()
        self._space_deficits: dict[int, int] = {}

    def state(self) -> CSDFState:
        """The current execution state."""
        return CSDFState(tuple(self.clocks), tuple(self.phases), tuple(self.tokens))

    def _finish_firing(self, idx: int, info: _PhaseInfo) -> None:
        phase = self.phases[idx]
        for channel, rate in info.inputs[phase]:
            self.tokens[channel] -= rate
        for channel, rate in info.outputs[phase]:
            self.tokens[channel] += rate
        self.phases[idx] = (phase + 1) % len(info.execution_times)

    def _complete_due_firings(self) -> int:
        observed = 0
        for idx, info in enumerate(self._actors):
            if self.clocks[idx] == -1:
                self.clocks[idx] = 0
                self._finish_firing(idx, info)
                if idx == self._observe_idx:
                    observed += 1
        return observed

    def _can_start(self, idx: int, info: _PhaseInfo) -> bool:
        phase = self.phases[idx]
        collect = self.track_blocking
        token_failures: list[int] = []
        for channel, rate in info.inputs[phase]:
            if self.tokens[channel] < rate:
                if not collect:
                    return False
                token_failures.append(channel)
        space_failures: list[tuple[int, int]] = []
        for channel, rate in info.outputs[phase]:
            capacity = self._capacities[channel]
            if capacity is not None and self.tokens[channel] + rate > capacity:
                if not collect:
                    return False
                space_failures.append((channel, self.tokens[channel] + rate - capacity))
        if token_failures:
            self._token_blocked.update(token_failures)
            return False
        if space_failures:
            for channel, deficit in space_failures:
                self._space_blocked.add(channel)
                known = self._space_deficits.get(channel)
                if known is None or deficit < known:
                    self._space_deficits[channel] = deficit
            return False
        return True

    def _start_enabled_firings(self) -> int:
        observed = 0
        fired = 0
        progress = True
        while progress:
            progress = False
            for idx, info in enumerate(self._actors):
                if self.clocks[idx] != 0:
                    continue
                if not self._can_start(idx, info):
                    continue
                fired += 1
                if fired > _MAX_FIRINGS_PER_INSTANT:
                    raise EngineError("zero-execution-time cascade diverges")
                execution_time = info.execution_times[self.phases[idx]]
                if self.schedule is not None:
                    self.schedule.record(info.name, self.time, self.time + execution_time)
                if execution_time == 0:
                    self._finish_firing(idx, info)
                    if idx == self._observe_idx:
                        observed += 1
                    progress = True
                else:
                    self.clocks[idx] = execution_time
        return observed

    def _process_instant(self) -> int:
        observed = self._complete_due_firings()
        observed += self._start_enabled_firings()
        return observed

    def _advance_time(self) -> bool:
        busy = [clock for clock in self.clocks if clock > 0]
        if not busy:
            return False
        delta = 1 if self.mode == "tick" else min(busy)
        self.time += delta
        for idx, clock in enumerate(self.clocks):
            if clock > 0:
                remaining = clock - delta
                self.clocks[idx] = remaining if remaining > 0 else -1
        return True

    def run(self) -> CSDFExecutionResult:
        """Execute until the periodic phase closes or a deadlock occurs."""
        self._reset()
        store: StateStore[tuple] = StateStore()
        records: list[tuple[CSDFState, int, int]] = []
        full_store: StateStore[CSDFState] | None = None
        instants_since_firing = 0
        last_firing_time: int | None = None
        first_firing_time: int | None = None
        instants = 0

        observed = self._process_instant()
        while True:
            if observed:
                if first_firing_time is None:
                    first_firing_time = self.time
                distance = self.time - (last_firing_time if last_firing_time is not None else 0)
                last_firing_time = self.time
                instants_since_firing = 0
                full_store = None
                record = (self.state(), distance, observed)
                records.append(record)
                cycle_start = store.add(record)
                if cycle_start is not None:
                    cycle = records[cycle_start + 1 :]
                    duration = sum(d for _state, d, _n in cycle)
                    firings = sum(n for _state, _d, n in cycle)
                    return CSDFExecutionResult(
                        observe=self.observe,
                        throughput=Fraction(firings, duration),
                        deadlocked=False,
                        deadlock_time=None,
                        first_firing_time=first_firing_time,
                        cycle_duration=duration,
                        firings_in_cycle=firings,
                        states_stored=len(store),
                        schedule=self.schedule,
                        space_blocked=self._blocked_names(self._space_blocked),
                        token_blocked=self._blocked_names(self._token_blocked),
                        space_deficits=self._deficit_names(),
                    )
            else:
                instants_since_firing += 1
                if instants_since_firing >= self.stall_threshold:
                    if full_store is None:
                        full_store = StateStore()
                    if full_store.add(self.state()) is not None:
                        return self._stopped_result(first_firing_time, len(store), None)

            if not self._advance_time():
                return self._stopped_result(first_firing_time, len(store), self.time)
            instants += 1
            if self.max_instants is not None and instants > self.max_instants:
                raise EngineError(f"execution exceeded {self.max_instants} time instants")
            observed = self._process_instant()

    def _stopped_result(
        self, first_firing_time: int | None, states_stored: int, deadlock_time: int | None
    ) -> CSDFExecutionResult:
        return CSDFExecutionResult(
            observe=self.observe,
            throughput=Fraction(0),
            deadlocked=True,
            deadlock_time=deadlock_time,
            first_firing_time=first_firing_time,
            cycle_duration=0,
            firings_in_cycle=0,
            states_stored=states_stored,
            schedule=self.schedule,
            space_blocked=self._blocked_names(self._space_blocked),
            token_blocked=self._blocked_names(self._token_blocked),
            space_deficits=self._deficit_names(),
        )

    def _blocked_names(self, indices: set[int]) -> frozenset[str]:
        return frozenset(self.channel_names[index] for index in indices)

    def _deficit_names(self) -> dict[str, int]:
        return {self.channel_names[index]: deficit for index, deficit in self._space_deficits.items()}


class Schedule_shim(Schedule):
    """Schedule recorder accepting a CSDF graph.

    :class:`~repro.engine.schedule.Schedule` only needs the actor-name
    list from its graph, which CSDF graphs also provide.
    """

    def __init__(self, graph: CSDFGraph):
        self.graph = graph
        self._events = []
        self._by_actor = {name: [] for name in graph.actor_names}
