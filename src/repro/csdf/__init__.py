"""Cyclo-Static Dataflow (CSDF) extension.

The paper's conclusions announce generalising the exact
buffer/throughput exploration "to more general data flow models"; the
SDF3 line of work did exactly that for cyclo-static dataflow
(Stuijk et al., IEEE TC 2008).  This package provides that
generalisation on top of the same machinery:

* :mod:`repro.csdf.graph` — actors with *phase-dependent* execution
  times and port rates (rates may be zero in individual phases),
* :mod:`repro.csdf.repetitions` — consistency and the phase-aware
  repetition vector,
* :mod:`repro.csdf.executor` — deterministic self-timed execution with
  the same claim-at-start storage semantics, tick/event modes, reduced
  state space and blocking tracking,
* :mod:`repro.csdf.bounds` — sound (conservative) storage bounds,
* :mod:`repro.csdf.explorer` — the dependency-guided exact Pareto
  exploration, returning the same
  :class:`~repro.buffers.pareto.ParetoFront` objects as the SDF path.

An SDF graph is exactly a CSDF graph whose actors all have one phase;
the test suite checks behavioural equivalence of the two engines on
such graphs.
"""

from repro.csdf.bounds import csdf_lower_bound_distribution, csdf_upper_bound_distribution
from repro.csdf.executor import CSDFExecutor, CSDFExecutionResult
from repro.csdf.explorer import (
    CSDFDesignSpaceResult,
    csdf_max_throughput,
    csdf_minimal_distribution_for_throughput,
    explore_csdf_design_space,
)
from repro.csdf.graph import CSDFActor, CSDFChannel, CSDFGraph, from_sdf
from repro.csdf.repetitions import (
    csdf_firings_per_iteration,
    csdf_is_consistent,
    csdf_repetition_vector,
)

__all__ = [
    "CSDFActor",
    "CSDFChannel",
    "CSDFDesignSpaceResult",
    "CSDFExecutionResult",
    "CSDFExecutor",
    "CSDFGraph",
    "csdf_firings_per_iteration",
    "csdf_is_consistent",
    "csdf_lower_bound_distribution",
    "csdf_max_throughput",
    "csdf_minimal_distribution_for_throughput",
    "csdf_repetition_vector",
    "csdf_upper_bound_distribution",
    "explore_csdf_design_space",
    "from_sdf",
]
