"""Cyclo-static dataflow graphs.

A CSDF actor cycles through a fixed sequence of *phases*; each phase
has its own execution time and its own production/consumption rates
(which may be zero — a phase that does not touch a channel).  Over one
full phase cycle the actor behaves like an SDF actor with the summed
rates, which is what consistency is defined against.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Mapping, Sequence

from repro.exceptions import GraphError, ValidationError
from repro.graph.graph import SDFGraph


def _check_sequence(name: str, what: str, values: Sequence[int], allow_zero: bool) -> tuple[int, ...]:
    values = tuple(values)
    if not values:
        raise GraphError(f"{name}: {what} sequence must be non-empty")
    for value in values:
        if not isinstance(value, int) or isinstance(value, bool):
            raise GraphError(f"{name}: {what} must be integers")
        if value < 0 or (value == 0 and not allow_zero):
            raise GraphError(f"{name}: {what} must be {'non-negative' if allow_zero else 'positive'}")
    return values


@dataclass(frozen=True)
class CSDFActor:
    """A CSDF actor: one execution time per phase."""

    name: str
    execution_times: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("actor name must be non-empty")
        object.__setattr__(
            self,
            "execution_times",
            _check_sequence(self.name, "execution time", self.execution_times, allow_zero=True),
        )

    @property
    def num_phases(self) -> int:
        """Length of the actor's phase cycle."""
        return len(self.execution_times)


@dataclass(frozen=True)
class CSDFChannel:
    """A CSDF channel: one rate per endpoint phase.

    ``productions`` has one entry per phase of the source actor,
    ``consumptions`` one per phase of the destination actor; zero
    entries mean the phase does not touch the channel.  At least one
    entry of each sequence must be positive.
    """

    name: str
    source: str
    destination: str
    productions: tuple[int, ...]
    consumptions: tuple[int, ...]
    initial_tokens: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("channel name must be non-empty")
        object.__setattr__(
            self, "productions", _check_sequence(self.name, "production rate", self.productions, True)
        )
        object.__setattr__(
            self, "consumptions", _check_sequence(self.name, "consumption rate", self.consumptions, True)
        )
        if sum(self.productions) == 0:
            raise GraphError(f"channel {self.name!r}: all production phases are zero")
        if sum(self.consumptions) == 0:
            raise GraphError(f"channel {self.name!r}: all consumption phases are zero")
        if not isinstance(self.initial_tokens, int) or isinstance(self.initial_tokens, bool):
            raise GraphError(f"channel {self.name!r}: initial tokens must be int")
        if self.initial_tokens < 0:
            raise GraphError(f"channel {self.name!r}: initial tokens must be >= 0")

    @property
    def total_production(self) -> int:
        """Tokens produced over one full source phase cycle."""
        return sum(self.productions)

    @property
    def total_consumption(self) -> int:
        """Tokens consumed over one full destination phase cycle."""
        return sum(self.consumptions)


class CSDFGraph:
    """A cyclo-static dataflow graph ``(A, C)``."""

    def __init__(self, name: str = "csdf"):
        if not name:
            raise GraphError("graph name must be non-empty")
        self.name = name
        self._actors: dict[str, CSDFActor] = {}
        self._channels: dict[str, CSDFChannel] = {}
        self._outgoing: dict[str, list[CSDFChannel]] = {}
        self._incoming: dict[str, list[CSDFChannel]] = {}

    # -- construction -----------------------------------------------------
    def add_actor(self, name: str, execution_times: Sequence[int]) -> CSDFActor:
        """Add an actor with the given per-phase execution times."""
        if name in self._actors:
            raise GraphError(f"duplicate actor name {name!r}")
        actor = CSDFActor(name, tuple(execution_times))
        self._actors[name] = actor
        self._outgoing[name] = []
        self._incoming[name] = []
        return actor

    def add_channel(
        self,
        source: str,
        destination: str,
        productions: Sequence[int],
        consumptions: Sequence[int],
        initial_tokens: int = 0,
        name: str | None = None,
    ) -> CSDFChannel:
        """Connect *source* to *destination* with per-phase rates."""
        if source not in self._actors:
            raise GraphError(f"unknown source actor {source!r}")
        if destination not in self._actors:
            raise GraphError(f"unknown destination actor {destination!r}")
        if name is None:
            index = len(self._channels)
            while f"ch{index}" in self._channels:
                index += 1
            name = f"ch{index}"
        if name in self._channels:
            raise GraphError(f"duplicate channel name {name!r}")
        channel = CSDFChannel(name, source, destination, tuple(productions), tuple(consumptions), initial_tokens)
        if len(channel.productions) != self._actors[source].num_phases:
            raise ValidationError(
                f"channel {name!r}: {len(channel.productions)} production phases but actor"
                f" {source!r} has {self._actors[source].num_phases}"
            )
        if len(channel.consumptions) != self._actors[destination].num_phases:
            raise ValidationError(
                f"channel {name!r}: {len(channel.consumptions)} consumption phases but actor"
                f" {destination!r} has {self._actors[destination].num_phases}"
            )
        self._channels[name] = channel
        self._outgoing[source].append(channel)
        self._incoming[destination].append(channel)
        return channel

    # -- access ------------------------------------------------------------
    @property
    def actors(self) -> Mapping[str, CSDFActor]:
        """Actors by name, in insertion order."""
        return self._actors

    @property
    def channels(self) -> Mapping[str, CSDFChannel]:
        """Channels by name, in insertion order."""
        return self._channels

    def actor(self, name: str) -> CSDFActor:
        """Look up an actor by name."""
        try:
            return self._actors[name]
        except KeyError:
            raise GraphError(f"unknown actor {name!r}") from None

    def channel(self, name: str) -> CSDFChannel:
        """Look up a channel by name."""
        try:
            return self._channels[name]
        except KeyError:
            raise GraphError(f"unknown channel {name!r}") from None

    def incoming(self, actor: str) -> list[CSDFChannel]:
        """Channels consumed from by *actor*."""
        if actor not in self._incoming:
            raise GraphError(f"unknown actor {actor!r}")
        return list(self._incoming[actor])

    def outgoing(self, actor: str) -> list[CSDFChannel]:
        """Channels produced onto by *actor*."""
        if actor not in self._outgoing:
            raise GraphError(f"unknown actor {actor!r}")
        return list(self._outgoing[actor])

    @property
    def actor_names(self) -> list[str]:
        """Actor names in insertion order."""
        return list(self._actors)

    @property
    def channel_names(self) -> list[str]:
        """Channel names in insertion order."""
        return list(self._channels)

    @property
    def num_actors(self) -> int:
        """``|A|``."""
        return len(self._actors)

    @property
    def num_channels(self) -> int:
        """``|C|``."""
        return len(self._channels)

    def __iter__(self) -> Iterator[CSDFActor]:
        return iter(self._actors.values())

    def describe(self) -> str:
        """Multi-line human-readable description."""
        lines = [f"CSDFGraph {self.name!r}: {self.num_actors} actors, {self.num_channels} channels"]
        for actor in self._actors.values():
            lines.append(f"  actor   {actor.name} t={list(actor.execution_times)}")
        for channel in self._channels.values():
            tokens = f" [{channel.initial_tokens} tok]" if channel.initial_tokens else ""
            lines.append(
                f"  channel {channel.name}: {channel.source} -{list(channel.productions)}->"
                f" {list(channel.consumptions)}- {channel.destination}{tokens}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"CSDFGraph({self.name!r}, actors={self.num_actors}, channels={self.num_channels})"


def from_sdf(graph: SDFGraph) -> CSDFGraph:
    """Lift an SDF graph into the CSDF model (one phase per actor)."""
    lifted = CSDFGraph(graph.name)
    for actor in graph.actors.values():
        lifted.add_actor(actor.name, (actor.execution_time,))
    for channel in graph.channels.values():
        lifted.add_channel(
            channel.source,
            channel.destination,
            (channel.production,),
            (channel.consumption,),
            channel.initial_tokens,
            name=channel.name,
        )
    return lifted
