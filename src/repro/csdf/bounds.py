"""Storage bounds for CSDF graphs.

Unlike the SDF case, tight per-channel lower bounds for CSDF involve
phase interleavings; for the exploration only *soundness* matters (the
seed must not exceed any positive-throughput distribution), so a
simple conservative bound is used:

    lb(c) = max(initial tokens, max production phase, max consumption phase)

— the channel must hold its initial tokens, admit the largest single
production burst, and be able to accumulate the largest consumption
requirement.  The upper bound mirrors the SDF [GGD02] form with the
summed phase rates; the explorer verifies and enlarges it exactly as
in the SDF path.
"""

from __future__ import annotations

from repro.buffers.distribution import StorageDistribution
from repro.csdf.graph import CSDFChannel, CSDFGraph
from repro.csdf.repetitions import csdf_repetition_vector


def csdf_channel_lower_bound(channel: CSDFChannel) -> int:
    """Sound (conservative) minimal capacity for positive throughput."""
    return max(channel.initial_tokens, max(channel.productions), max(channel.consumptions))


def csdf_lower_bound_distribution(graph: CSDFGraph) -> StorageDistribution:
    """Per-channel sound lower bounds."""
    return StorageDistribution(
        {channel.name: csdf_channel_lower_bound(channel) for channel in graph.channels.values()}
    )


def csdf_upper_bound_distribution(graph: CSDFGraph) -> StorageDistribution:
    """Conservative per-channel upper bounds (one iteration per side)."""
    q = csdf_repetition_vector(graph)
    return StorageDistribution(
        {
            channel.name: channel.initial_tokens
            + channel.total_production * q[channel.source]
            + channel.total_consumption * q[channel.destination]
            for channel in graph.channels.values()
        }
    )
