"""Exact buffer/throughput exploration for CSDF graphs.

The storage-dependency-guided sweep of
:mod:`repro.buffers.dependencies` transfers verbatim: the CSDF
execution is deterministic, enlarging a channel that never blocked a
firing cannot change it, and a blocked channel must grow by at least
its minimal observed deficit before any decision changes.  The sweep
therefore reaches a witness for every Pareto point, and the
size-ordered frontier with the throughput ceiling terminates exactly
as in the SDF case.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from fractions import Fraction

from repro.buffers.distribution import StorageDistribution
from repro.buffers.pareto import ParetoFront
from repro.csdf.bounds import csdf_lower_bound_distribution, csdf_upper_bound_distribution
from repro.csdf.executor import CSDFExecutor
from repro.csdf.graph import CSDFGraph
from repro.csdf.repetitions import csdf_repetition_vector
from repro.exceptions import ExplorationError


@dataclass(frozen=True)
class CSDFDesignSpaceResult:
    """Outcome of :func:`explore_csdf_design_space`."""

    graph_name: str
    observe: str
    front: ParetoFront
    evaluations: int
    max_states_stored: int
    wall_time_s: float
    lower_bounds: StorageDistribution
    upper_bounds: StorageDistribution
    max_throughput: Fraction


def csdf_max_throughput(
    graph: CSDFGraph, observe: str | None = None, confirmations: int = 2
) -> Fraction:
    """Maximal throughput over all storage distributions.

    Computed with the adaptive state-space method: execute at the
    conservative upper bound and double until the value is stable for
    *confirmations* consecutive doublings.
    """
    csdf_repetition_vector(graph)  # consistency guard
    capacities = dict(csdf_upper_bound_distribution(graph))
    best = CSDFExecutor(graph, capacities, observe).run().throughput
    stable = 0
    while stable < confirmations:
        capacities = {name: 2 * value for name, value in capacities.items()}
        enlarged = CSDFExecutor(graph, capacities, observe).run().throughput
        if enlarged == best:
            stable += 1
        else:
            best = enlarged
            stable = 0
    return best


def explore_csdf_design_space(
    graph: CSDFGraph,
    observe: str | None = None,
    *,
    max_size: int | None = None,
) -> CSDFDesignSpaceResult:
    """Chart the storage/throughput Pareto space of a CSDF graph."""
    if observe is None:
        observe = graph.actor_names[-1]
    started = time.perf_counter()
    lower = csdf_lower_bound_distribution(graph)
    upper = csdf_upper_bound_distribution(graph)
    max_thr = csdf_max_throughput(graph, observe)

    order = graph.channel_names
    evaluations: dict[StorageDistribution, Fraction] = {}
    heap: list[tuple[int, tuple[int, ...], StorageDistribution]] = []
    queued: set[StorageDistribution] = set()
    max_states = 0
    ceiling: int | None = None

    def push(distribution: StorageDistribution) -> None:
        if distribution in queued or distribution in evaluations:
            return
        if max_size is not None and distribution.size > max_size:
            return
        if ceiling is not None and distribution.size > ceiling:
            return
        queued.add(distribution)
        heapq.heappush(heap, (distribution.size, tuple(distribution[n] for n in order), distribution))

    push(lower)
    while heap:
        size, _vector, distribution = heapq.heappop(heap)
        if ceiling is not None and size > ceiling:
            break
        queued.discard(distribution)
        result = CSDFExecutor(graph, distribution, observe, track_blocking=True).run()
        evaluations[distribution] = result.throughput
        max_states = max(max_states, result.states_stored)
        if max_thr > 0 and result.throughput >= max_thr:
            if ceiling is None or size < ceiling:
                ceiling = size
            continue
        if max_thr == 0:
            # The graph deadlocks at every distribution; nothing to grow.
            break
        for channel in result.space_blocked:
            push(distribution.incremented(channel, result.space_deficits.get(channel, 1)))

    front = ParetoFront.from_evaluations(evaluations)
    return CSDFDesignSpaceResult(
        graph_name=graph.name,
        observe=observe,
        front=front,
        evaluations=len(evaluations),
        max_states_stored=max_states,
        wall_time_s=time.perf_counter() - started,
        lower_bounds=lower,
        upper_bounds=upper,
        max_throughput=max_thr,
    )


def csdf_minimal_distribution_for_throughput(
    graph: CSDFGraph, constraint: Fraction, observe: str | None = None
) -> tuple[StorageDistribution, Fraction] | None:
    """Smallest CSDF storage distribution meeting *constraint*."""
    if constraint <= 0:
        raise ExplorationError("the throughput constraint must be positive")
    if constraint > csdf_max_throughput(graph, observe):
        return None
    result = explore_csdf_design_space(graph, observe)
    point = result.front.smallest_for(constraint)
    if point is None:
        return None
    return point.distribution, point.throughput
