"""Graph transformations.

* :func:`~repro.transform.hsdf_as_sdf.hsdf_as_sdf` — materialise an
  HSDF expansion as an ordinary rate-1 SDF graph, so the execution
  engine (and every analysis) runs on it directly; the test suite uses
  this to cross-validate the expansion against the original graph.
* :func:`~repro.transform.reverse.reverse_graph` — the edge-reversed
  graph, which shares the repetition vector and consistency with the
  original (a classical duality).
* :func:`~repro.transform.unfold.unfold` — the J-unfolded graph whose
  one iteration equals J iterations of the original.
"""

from repro.transform.hsdf_as_sdf import hsdf_as_sdf
from repro.transform.reverse import reverse_graph
from repro.transform.unfold import unfold

__all__ = ["hsdf_as_sdf", "reverse_graph", "unfold"]
