"""Materialise an HSDF expansion as an executable SDF graph.

:func:`repro.analysis.hsdf.to_hsdf` produces a lightweight node/edge
structure for the MCM computation; this transformation turns it into a
full :class:`~repro.graph.graph.SDFGraph` with rate-1 channels whose
initial tokens encode the expansion's delays.  Because the
serialisation cycles of the expansion already forbid overlapping
firings of one actor's copies, executing the materialised graph under
generous buffers reproduces the original graph's self-timed timing —
a strong cross-validation exercised by the test suite.
"""

from __future__ import annotations

from repro.analysis.hsdf import HSDFGraph
from repro.graph.graph import SDFGraph


def hsdf_as_sdf(hsdf: HSDFGraph) -> SDFGraph:
    """Build the rate-1 SDF graph equivalent to *hsdf*.

    Node ``(actor, copy)`` becomes actor ``actor__copy``; edge delays
    become initial tokens.
    """
    graph = SDFGraph(hsdf.name)
    for (actor, copy), execution_time in hsdf.nodes.items():
        graph.add_actor(_name(actor, copy), execution_time)
    for index, (((src, si), (dst, di)), delay) in enumerate(hsdf.edges.items()):
        graph.add_channel(
            _name(src, si),
            _name(dst, di),
            1,
            1,
            initial_tokens=delay,
            name=f"e{index}",
        )
    return graph


def copy_name(actor: str, copy: int) -> str:
    """The materialised actor name of HSDF node ``(actor, copy)``."""
    return _name(actor, copy)


def _name(actor: str, copy: int) -> str:
    return f"{actor}__{copy}"
