"""Edge reversal.

Reversing every channel (swapping producer/consumer and the two
rates) preserves consistency and the repetition vector: the balance
equation ``q[src]·p == q[dst]·c`` is symmetric under the swap.  Data
now flows "backwards", so initial tokens keep their channel.  The
reversed graph is a classical construction for reasoning about
backward slack and appears here mainly as a property-testing tool.
"""

from __future__ import annotations

from repro.graph.graph import SDFGraph


def reverse_graph(graph: SDFGraph, name: str | None = None) -> SDFGraph:
    """The graph with every channel's direction flipped."""
    reversed_graph = SDFGraph(name or f"{graph.name}-rev")
    for actor in graph.actors.values():
        reversed_graph.add_actor(actor.name, actor.execution_time)
    for channel in graph.channels.values():
        reversed_graph.add_channel(
            channel.destination,
            channel.source,
            channel.consumption,
            channel.production,
            channel.initial_tokens,
            name=channel.name,
        )
    return reversed_graph
