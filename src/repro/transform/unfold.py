"""Graph unfolding.

The J-unfolding of an SDF graph scales every channel's rates by J; one
iteration of the unfolded graph corresponds to J iterations of the
original (its repetition vector divides by J where possible).  With
*actor-level* unfolding kept out of scope (it would duplicate actors),
this rate-level unfolding is the standard trick for coarsening the
granularity of an analysis: schedules of the unfolded graph move J
iterations' worth of data per firing decision.

Note the *timing* of the unfolded graph differs (an actor still fires
once per J logical firings and takes one execution time), so this
transformation is for structural analyses — repetition vectors,
bounds, consistency — not for throughput equivalence.
"""

from __future__ import annotations

from repro.exceptions import GraphError
from repro.graph.graph import SDFGraph


def unfold(graph: SDFGraph, factor: int, name: str | None = None) -> SDFGraph:
    """Scale all channel rates (and initial tokens) by *factor*."""
    if not isinstance(factor, int) or isinstance(factor, bool) or factor < 1:
        raise GraphError(f"unfolding factor must be a positive int, got {factor!r}")
    unfolded = SDFGraph(name or f"{graph.name}-x{factor}")
    for actor in graph.actors.values():
        unfolded.add_actor(actor.name, actor.execution_time)
    for channel in graph.channels.values():
        unfolded.add_channel(
            channel.source,
            channel.destination,
            channel.production * factor,
            channel.consumption * factor,
            channel.initial_tokens * factor,
            name=channel.name,
        )
    return unfolded
