"""CLI coverage for the scenario-aware (SADF) code paths."""

import json

import pytest

from repro.cli import main
from repro.gallery import h263_frames
from repro.io.sadfjson import write_sadf_json


def run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_list_gallery_marks_scenario_graphs(capsys):
    code, out = run(capsys, "--list-gallery")
    assert code == 0
    assert "h263-frames  (scenarios)" in out
    assert "modem-modes  (scenarios)" in out


def test_gallery_sadf_exploration(capsys):
    code, out = run(capsys, "gallery:h263-frames", "--observe", "mc")
    assert code == 0
    assert "design space of 'h263-frames'" in out
    assert "maximal throughput: 1/11" in out
    assert "Pareto points: 2" in out
    assert "size=9 throughput=1/13" in out
    assert "(sadf-dependency)" in out


def test_gallery_sadf_worst_case_summary(capsys):
    code, out = run(
        capsys, "gallery:h263-frames", "--observe", "mc",
        "--capacities", "h1=8,h2=2,h3=8",
    )
    assert code == 0
    assert "worst-case throughput of 'mc': 1/11" in out
    assert "binding constraint: switching cycle i -> p" in out


def test_gallery_sadf_minimal_distribution(capsys):
    code, out = run(
        capsys, "gallery:h263-frames", "--observe", "mc", "--throughput", "1/13"
    )
    assert code == 0
    assert "size 9" in out and "(throughput 1/13)" in out
    code, out = run(
        capsys, "gallery:h263-frames", "--observe", "mc", "--throughput", "2/3"
    )
    assert code == 1
    assert "not achievable" in out


def test_sadfjson_file_is_autodetected(tmp_path, capsys):
    path = tmp_path / "frames.json"
    write_sadf_json(h263_frames(), path)
    code, out = run(capsys, str(path), "--observe", "mc")
    assert code == 0
    assert "(sadf-dependency)" in out
    assert "Pareto points: 2" in out


def test_scenarios_flag_forces_sadf_path(tmp_path, capsys):
    # Even with a generic filename the explicit flag selects the SADF
    # pipeline; a plain SDF document then fails to parse as sadfjson.
    path = tmp_path / "frames.dat"
    write_sadf_json(h263_frames(), path)
    code, out = run(capsys, str(path), "--scenarios", "--observe", "mc")
    assert code == 0
    assert "maximal throughput: 1/11" in out


def test_sadf_output_json(tmp_path, capsys):
    target = tmp_path / "front.json"
    code, out = run(
        capsys, "gallery:h263-frames", "--observe", "mc",
        "--output-json", str(target),
    )
    assert code == 0
    payload = json.loads(target.read_text(encoding="utf-8"))
    assert [point["size"] for point in payload["pareto_front"]] == [9, 10]
    assert payload["max_throughput"] == "1/11"


def test_sadf_checkpoint_resume_via_cli(tmp_path, capsys):
    ckpt = tmp_path / "sadf.ckpt.json"
    code, out = run(
        capsys, "gallery:h263-frames", "--observe", "mc",
        "--checkpoint", str(ckpt), "--max-probes", "3",
    )
    assert code == 3
    assert ckpt.exists()
    code, out = run(
        capsys, "gallery:h263-frames", "--observe", "mc", "--resume", str(ckpt)
    )
    assert code == 0
    assert "Pareto points: 2" in out
