"""Unit tests for repro.buffers.explorer — the public DSE API."""

from fractions import Fraction

import pytest

from repro.buffers.explorer import (
    explore_design_space,
    maximal_throughput_point,
    minimal_distribution_for_throughput,
)
from repro.engine.executor import Executor
from repro.exceptions import ExplorationError, InconsistentGraphError
from repro.graph.builder import GraphBuilder

FIG1_FRONT = [
    (6, Fraction(1, 7)),
    (8, Fraction(1, 6)),
    (9, Fraction(1, 5)),
    (10, Fraction(1, 4)),
]


class TestExploreDesignSpace:
    @pytest.mark.parametrize("strategy", ["dependency", "divide", "exhaustive"])
    def test_fig1_front_identical_across_strategies(self, fig1, strategy):
        result = explore_design_space(fig1, "c", strategy=strategy)
        assert [(p.size, p.throughput) for p in result.front] == FIG1_FRONT

    def test_bounds_and_max_throughput_reported(self, fig1):
        result = explore_design_space(fig1, "c")
        assert result.lower_bounds.size == 6
        assert result.upper_bounds.size == 16
        assert result.max_throughput == Fraction(1, 4)
        assert result.observe == "c"

    def test_witnesses_reproduce_their_throughput(self, fig1):
        result = explore_design_space(fig1, "c")
        for point in result.front:
            for witness in point.witnesses:
                assert Executor(fig1, witness, "c").run().throughput == point.throughput

    def test_max_size_restricts_front(self, fig1):
        result = explore_design_space(fig1, "c", max_size=8)
        assert [(p.size, p.throughput) for p in result.front] == FIG1_FRONT[:2]

    def test_quantum_thins_front(self, fig1):
        result = explore_design_space(fig1, "c", quantum=Fraction(1, 10))
        # Levels: 1/7, 1/6 both in [0.1, 0.2); 1/5 = 0.2; 1/4 in [0.2, 0.3).
        assert [p.size for p in result.front] == [6, 9]

    def test_quantized_divide_strategy(self, fig1):
        result = explore_design_space(fig1, "c", strategy="divide", quantum=Fraction(1, 24))
        # All of fig1's throughput levels lie on the 1/24 grid except
        # 1/7 and 1/5; the quantised front must still be achievable and
        # monotone.
        sizes = result.front.sizes()
        assert sizes == sorted(sizes)
        assert result.front.throughputs()[-1] == Fraction(1, 4)

    def test_unknown_strategy_rejected(self, fig1):
        with pytest.raises(ExplorationError, match="unknown strategy"):
            explore_design_space(fig1, "c", strategy="magic")

    def test_inconsistent_graph_rejected(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1})
            .channel("a", "b", 1, 2)
            .channel("b", "a", 1, 1)
            .build()
        )
        with pytest.raises(InconsistentGraphError):
            explore_design_space(graph)

    def test_search_space_counting(self, fig1):
        result = explore_design_space(fig1, "c", count_search_space=True)
        # Box: alpha in [4,12], beta in [2,4] -> 27 distributions.
        assert result.stats.search_space == 27

    def test_summary_mentions_everything(self, fig1):
        text = explore_design_space(fig1, "c").summary()
        assert "Pareto points: 4" in text
        assert "1/4" in text
        assert "size=6" in text

    def test_always_deadlocked_graph_has_empty_front(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1})
            .channel("a", "b", 1, 2)
            .channel("b", "a", 2, 1, initial_tokens=1)
            .build()
        )
        result = explore_design_space(graph, "b")
        assert len(result.front) == 0
        assert result.max_throughput == 0


class TestQueries:
    def test_minimal_distribution_for_throughput(self, fig1):
        point = minimal_distribution_for_throughput(fig1, Fraction(1, 6), "c")
        assert point.size == 8
        assert point.throughput == Fraction(1, 6)

    def test_nonpositive_constraint_rejected(self, fig1):
        with pytest.raises(ExplorationError, match="positive"):
            minimal_distribution_for_throughput(fig1, Fraction(0), "c")

    def test_unachievable_constraint_returns_none(self, fig1):
        assert minimal_distribution_for_throughput(fig1, Fraction(1, 2), "c") is None

    def test_maximal_throughput_point(self, fig1):
        point = maximal_throughput_point(fig1, "c")
        assert point.size == 10
        assert point.throughput == Fraction(1, 4)

    def test_maximal_throughput_point_deadlocked_graph(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1})
            .channel("a", "b", 1, 2)
            .channel("b", "a", 2, 1, initial_tokens=1)
            .build()
        )
        with pytest.raises(ExplorationError, match="deadlocks"):
            maximal_throughput_point(graph, "b")
