"""Unit tests for repro.buffers.search (the paper's Sec. 9 strategies)."""

from fractions import Fraction

from repro.buffers.bounds import lower_bound_distribution, upper_bound_distribution
from repro.buffers.distribution import StorageDistribution
from repro.buffers.search import (
    SizeSearch,
    ThroughputEvaluator,
    divide_and_conquer,
    exhaustive_sweep,
)


def make_search(graph, observe="c"):
    evaluator = ThroughputEvaluator(graph, observe)
    lower = lower_bound_distribution(graph)
    upper = upper_bound_distribution(graph)
    return SizeSearch(graph, observe, lower, upper, evaluator), evaluator, lower, upper


class TestThroughputEvaluator:
    def test_memoisation(self, fig1):
        evaluator = ThroughputEvaluator(fig1, "c")
        distribution = StorageDistribution({"alpha": 4, "beta": 2})
        first = evaluator(distribution)
        second = evaluator(distribution)
        assert first == second == Fraction(1, 7)
        assert evaluator.stats.evaluations == 1
        assert evaluator.stats.cache_hits == 1

    def test_records_max_states(self, fig1):
        evaluator = ThroughputEvaluator(fig1, "c")
        evaluator(StorageDistribution({"alpha": 4, "beta": 2}))
        assert evaluator.stats.max_states_stored >= 2

    def test_evaluations_snapshot(self, fig1):
        evaluator = ThroughputEvaluator(fig1, "c")
        distribution = StorageDistribution({"alpha": 4, "beta": 2})
        evaluator(distribution)
        assert evaluator.evaluations == {distribution: Fraction(1, 7)}


class TestMaxThroughputForSize:
    def test_minimal_size(self, fig1):
        search, *_ = make_search(fig1)
        probe = search.max_throughput_for_size(6)
        assert probe.throughput == Fraction(1, 7)
        assert probe.witnesses[0] == {"alpha": 4, "beta": 2}
        assert probe.exact

    def test_collects_tied_witnesses(self, fig1):
        search, *_ = make_search(fig1)
        probe = search.max_throughput_for_size(8)
        assert probe.throughput == Fraction(1, 6)
        assert {tuple(sorted(w.items())) for w in probe.witnesses} == {
            (("alpha", 5), ("beta", 3)),
            (("alpha", 6), ("beta", 2)),
        }

    def test_stop_at_short_circuits(self, fig1):
        search, evaluator, *_ = make_search(fig1)
        probe = search.max_throughput_for_size(12, stop_at=Fraction(1, 4))
        assert probe.throughput == Fraction(1, 4)
        # The scan ended before enumerating all size-12 distributions.
        assert evaluator.stats.evaluations < 5

    def test_deadlocking_size(self, fig1):
        search, *_ = make_search(fig1)
        # Size 6 exists but shrink the box lower bound artificially:
        probe = search.max_throughput_for_size(7)
        assert probe.throughput == Fraction(1, 7)


class TestThresholdScan:
    def test_finds_distribution(self, fig1):
        search, *_ = make_search(fig1)
        found = search.threshold_scan(8, Fraction(1, 6))
        assert found is not None
        assert found.size == 8

    def test_returns_none_when_unreachable(self, fig1):
        search, *_ = make_search(fig1)
        assert search.threshold_scan(6, Fraction(1, 6)) is None


class TestQuantizedSearch:
    def test_reaches_exact_levels_on_grid(self, fig1):
        search, *_ = make_search(fig1)
        probe = search.quantized_max_for_size(8, Fraction(0), Fraction(1, 4), Fraction(1, 24))
        # 1/6 = 4/24 lies on the grid, so the quantised search finds it.
        assert probe.throughput == Fraction(1, 6)
        assert not probe.exact

    def test_within_one_quantum(self, fig1):
        search, *_ = make_search(fig1)
        quantum = Fraction(1, 10)
        probe = search.quantized_max_for_size(8, Fraction(0), Fraction(1, 4), quantum)
        # Exact max for size 8 is 1/6; the result is achievable and at
        # most one quantum below the true maximum.
        assert Fraction(0) < probe.throughput <= Fraction(1, 6)
        assert Fraction(1, 6) - probe.throughput < quantum


class TestSweeps:
    def test_exhaustive_covers_until_max(self, fig1):
        lower = lower_bound_distribution(fig1)
        upper = upper_bound_distribution(fig1)
        probes, stats = exhaustive_sweep(fig1, "c", lower, upper, Fraction(1, 4))
        assert sorted(probes) == list(range(6, 11))
        assert probes[10].throughput == Fraction(1, 4)
        assert stats.evaluations > 0

    def test_divide_and_conquer_agrees_with_exhaustive(self, fig1):
        lower = lower_bound_distribution(fig1)
        upper = upper_bound_distribution(fig1)
        exhaustive, _ = exhaustive_sweep(fig1, "c", lower, upper, Fraction(1, 4))
        divided, _ = divide_and_conquer(fig1, "c", lower, upper, Fraction(1, 4))
        for size, probe in divided.items():
            if size in exhaustive:
                assert probe.throughput == exhaustive[size].throughput

    def test_divide_and_conquer_probes_fewer_sizes_on_flat_regions(self, fig6):
        from repro.analysis.throughput import max_throughput

        lower = lower_bound_distribution(fig6)
        upper = upper_bound_distribution(fig6)
        target = max_throughput(fig6, "d")
        divided, stats = divide_and_conquer(fig6, "d", lower, upper, target)
        assert stats.sizes_probed <= upper.size - lower.size + 1


class TestAscendingWalk:
    """The bounds-oracle walk of ``divide_and_conquer`` (PR 5)."""

    @staticmethod
    def bounded_service(graph, observe="c"):
        from repro.buffers.evalcache import EvaluationService
        from repro.runtime.config import ExplorationConfig

        return EvaluationService(graph, observe, config=ExplorationConfig(bounds=True))

    def test_promote_rotates_over_channels_with_headroom(self, fig1):
        search, _, lower, upper = make_search(fig1)
        base = StorageDistribution(lower)
        first = search._promote(base, 0)
        second = search._promote(base, 1)
        assert first != second  # rotation seeds different cones
        assert first.size == second.size == base.size + 1
        assert search._promote(StorageDistribution(upper), 0) is None

    def test_promote_skips_saturated_channels(self, fig1):
        search, _, lower, upper = make_search(fig1)
        pinned = dict(upper)
        pinned["alpha"] = upper["alpha"]  # alpha saturated
        pinned["beta"] = lower["beta"]
        grown = search._promote(StorageDistribution(pinned), 0)
        assert grown is not None
        assert grown["alpha"] == upper["alpha"]
        assert grown["beta"] == lower["beta"] + 1

    def test_ascending_probe_value_matches_full_scan(self, fig1):
        service = self.bounded_service(fig1)
        lower = lower_bound_distribution(fig1)
        upper = upper_bound_distribution(fig1)
        walk = SizeSearch(fig1, "c", lower, upper, service)
        full, _, _, _ = make_search(fig1)
        prev = walk.max_throughput_for_size(lower.size).throughput
        for size in range(lower.size + 1, upper.size + 1):
            probe = walk.ascending_probe(size, prev)
            reference = full.max_throughput_for_size(size)
            assert probe.throughput == reference.throughput
            assert probe.exact
            if probe.throughput > prev:
                # The only probes that can reach the front carry the
                # complete tie set, identical to the full scan's.
                assert probe.witnesses == reference.witnesses
            prev = probe.throughput

    def test_ascending_probe_without_oracle_falls_back(self, fig1):
        search, _, lower, _ = make_search(fig1)
        probe = search.ascending_probe(lower.size + 1, Fraction(0))
        reference = search.max_throughput_for_size(lower.size + 1)
        assert probe.throughput == reference.throughput
        assert probe.witnesses == reference.witnesses

    def test_divide_with_bounds_front_is_bit_identical(self, fig1, fig6):
        from repro.buffers.explorer import explore_design_space
        from repro.runtime.config import ExplorationConfig

        for graph, observe in ((fig1, "c"), (fig6, "d")):
            off = explore_design_space(
                graph, observe, strategy="divide", config=ExplorationConfig()
            )
            on = explore_design_space(
                graph, observe, strategy="divide", config=ExplorationConfig(bounds=True)
            )
            assert on.front == off.front  # sizes, throughputs AND witnesses
            assert on.max_throughput == off.max_throughput
            assert on.stats.evaluations <= off.stats.evaluations
