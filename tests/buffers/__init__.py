"""Test package."""
