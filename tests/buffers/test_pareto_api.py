"""Public ParetoFront construction/filtering API and the explorer
regressions that used to poke at ``ParetoFront._points`` directly."""

from fractions import Fraction

import pytest

from repro.buffers.distribution import StorageDistribution
from repro.buffers.explorer import explore_design_space
from repro.buffers.pareto import ParetoFront, ParetoPoint
from repro.gallery import fig1_example


def point(size, throughput, **capacities):
    witnesses = (StorageDistribution(capacities),) if capacities else ()
    return ParetoPoint(size, Fraction(throughput), witnesses)


def test_from_points_roundtrip():
    points = [point(6, "1/7"), point(8, "1/6"), point(10, "1/4")]
    front = ParetoFront.from_points(points)
    assert front.points == points
    assert front.sizes() == [6, 8, 10]


def test_from_points_empty():
    front = ParetoFront.from_points([])
    assert len(front) == 0
    assert front.min_positive is None
    assert front.max_throughput_point is None


@pytest.mark.parametrize(
    "bad",
    [
        [point(6, "1/7"), point(6, "1/6")],  # size not increasing
        [point(6, "1/7"), point(8, "1/7")],  # throughput not increasing
        [point(8, "1/6"), point(6, "1/7")],  # wrong order entirely
    ],
)
def test_from_points_rejects_invariant_violations(bad):
    with pytest.raises(ValueError):
        ParetoFront.from_points(bad)


def test_filtered_keeps_matching_points():
    front = ParetoFront.from_points([point(6, "1/7"), point(8, "1/6"), point(10, "1/4")])
    small = front.filtered(lambda p: p.size <= 8)
    assert small.sizes() == [6, 8]
    # The original front is untouched.
    assert front.sizes() == [6, 8, 10]


def test_filtered_empty_front():
    front = ParetoFront()
    assert len(front.filtered(lambda p: True)) == 0


def test_filtered_to_nothing():
    front = ParetoFront.from_points([point(6, "1/7")])
    assert len(front.filtered(lambda p: False)) == 0


# -- explorer regressions (the former _points pokes) ---------------------


@pytest.mark.parametrize("strategy", ("dependency", "divide", "exhaustive"))
def test_max_size_below_lower_bound_yields_empty_front(strategy):
    graph = fig1_example()
    result = explore_design_space(graph, "c", strategy=strategy, max_size=3)
    assert len(result.front) == 0
    assert result.front.min_positive is None


def test_max_size_restricts_front():
    graph = fig1_example()
    result = explore_design_space(graph, "c", max_size=8)
    assert [(p.size, str(p.throughput)) for p in result.front] == [(6, "1/7"), (8, "1/6")]


def test_throughput_window_on_empty_front():
    graph = fig1_example()
    result = explore_design_space(
        graph, "c", max_size=3, throughput_bounds=(Fraction(1, 7), None)
    )
    assert len(result.front) == 0


def test_throughput_window_clips_both_ends():
    graph = fig1_example()
    result = explore_design_space(
        graph, "c", throughput_bounds=(Fraction(1, 6), Fraction(1, 5))
    )
    assert [(p.size, str(p.throughput)) for p in result.front] == [(8, "1/6"), (9, "1/5")]
