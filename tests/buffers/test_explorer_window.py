"""Throughput-window exploration (the paper's partial-space controls)."""

from fractions import Fraction

import pytest

from repro.buffers.explorer import explore_design_space
from repro.exceptions import ExplorationError


class TestThroughputBounds:
    def test_lower_bound_drops_slow_points(self, fig1):
        result = explore_design_space(fig1, "c", throughput_bounds=(Fraction(1, 6), None))
        assert [(p.size, p.throughput) for p in result.front] == [
            (8, Fraction(1, 6)),
            (9, Fraction(1, 5)),
            (10, Fraction(1, 4)),
        ]

    def test_upper_bound_stops_search_early(self, fig1):
        result = explore_design_space(fig1, "c", throughput_bounds=(None, Fraction(1, 6)))
        assert [(p.size, p.throughput) for p in result.front] == [
            (6, Fraction(1, 7)),
            (8, Fraction(1, 6)),
        ]
        # The search never needed sizes 9 and 10.
        full = explore_design_space(fig1, "c")
        assert result.stats.evaluations <= full.stats.evaluations

    def test_window_combines_both_ends(self, fig1):
        result = explore_design_space(
            fig1, "c", throughput_bounds=(Fraction(1, 6), Fraction(1, 5))
        )
        assert [(p.size, p.throughput) for p in result.front] == [
            (8, Fraction(1, 6)),
            (9, Fraction(1, 5)),
        ]

    def test_upper_bound_above_max_is_harmless(self, fig1):
        windowed = explore_design_space(fig1, "c", throughput_bounds=(None, Fraction(1, 2)))
        full = explore_design_space(fig1, "c")
        assert windowed.front == full.front

    def test_invalid_window_rejected(self, fig1):
        with pytest.raises(ExplorationError, match="low exceeds high"):
            explore_design_space(
                fig1, "c", throughput_bounds=(Fraction(1, 4), Fraction(1, 7))
            )

    @pytest.mark.parametrize("strategy", ["dependency", "divide", "exhaustive"])
    def test_window_consistent_across_strategies(self, fig1, strategy):
        result = explore_design_space(
            fig1,
            "c",
            strategy=strategy,
            throughput_bounds=(Fraction(1, 7), Fraction(1, 5)),
        )
        assert [p.throughput for p in result.front] == [
            Fraction(1, 7),
            Fraction(1, 6),
            Fraction(1, 5),
        ]
