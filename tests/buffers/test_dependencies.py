"""Unit tests for repro.buffers.dependencies."""

from fractions import Fraction

import pytest

from repro.buffers.bounds import lower_bound_distribution
from repro.buffers.dependencies import dependency_sweep, find_minimal_distribution
from repro.buffers.distribution import StorageDistribution
from repro.exceptions import ExplorationError


class TestDependencySweep:
    def test_fig1_full_sweep(self, fig1):
        result = dependency_sweep(fig1, "c", stop_throughput=Fraction(1, 4))
        values = set(result.evaluations.values())
        assert Fraction(1, 7) in values
        assert Fraction(1, 4) in values
        assert result.stats.evaluations == len(result.evaluations)

    def test_seed_is_lower_bound(self, fig1):
        result = dependency_sweep(fig1, "c", stop_throughput=Fraction(1, 4))
        assert lower_bound_distribution(fig1) in result.evaluations

    def test_requires_a_stop_criterion(self, fig1):
        with pytest.raises(ExplorationError, match="stop_throughput"):
            dependency_sweep(fig1, "c")

    def test_max_size_caps_exploration(self, fig1):
        result = dependency_sweep(fig1, "c", max_size=8)
        assert all(d.size <= 8 for d in result.evaluations)
        assert max(result.evaluations.values()) == Fraction(1, 6)

    def test_custom_start(self, fig1):
        start = StorageDistribution({"alpha": 6, "beta": 2})
        result = dependency_sweep(
            fig1, "c", stop_throughput=Fraction(1, 4), start=start
        )
        assert start in result.evaluations
        assert all(d.dominates(start) for d in result.evaluations)

    def test_ceiling_prunes_lattice(self, fig1):
        # Everything explored should stay at or below the first size
        # reaching the target.
        result = dependency_sweep(fig1, "c", stop_throughput=Fraction(1, 4))
        first = result.first_reaching_target
        assert first is not None
        assert all(d.size <= first.size for d in result.evaluations)

    def test_duplicates_are_skipped_not_reevaluated(self, fig1):
        result = dependency_sweep(fig1, "c", stop_throughput=Fraction(1, 4))
        assert result.stats.duplicates_skipped > 0


class TestFindMinimalDistribution:
    def test_paper_constraints(self, fig1):
        cases = {
            Fraction(1, 7): 6,
            Fraction(1, 6): 8,
            Fraction(1, 5): 9,
            Fraction(1, 4): 10,
        }
        for constraint, size in cases.items():
            found = find_minimal_distribution(fig1, constraint, "c")
            assert found is not None
            distribution, value = found
            assert distribution.size == size
            assert value >= constraint

    def test_intermediate_constraint_rounds_up(self, fig1):
        # 0.15 is between 1/7 and 1/6: the witness must reach 1/6.
        found = find_minimal_distribution(fig1, Fraction(3, 20), "c")
        distribution, value = found
        assert distribution.size == 8
        assert value == Fraction(1, 6)

    def test_unachievable_constraint(self, fig1):
        assert find_minimal_distribution(fig1, Fraction(1, 3), "c") is None

    def test_unachievable_within_max_size(self, fig1):
        assert find_minimal_distribution(fig1, Fraction(1, 4), "c", max_size=9) is None

    def test_witness_verifies(self, fig1):
        from repro.engine.executor import Executor

        distribution, value = find_minimal_distribution(fig1, Fraction(1, 6), "c")
        assert Executor(fig1, distribution, "c").run().throughput == value
