"""Unit tests for repro.buffers.bounds (Sec. 8 / Fig. 7)."""

import pytest

from repro.buffers.bounds import (
    channel_lower_bound,
    channel_upper_bound,
    lower_bound_distribution,
    size_bounds,
    upper_bound_distribution,
)
from repro.engine.executor import Executor
from repro.graph.builder import GraphBuilder
from repro.graph.channel import Channel


class TestChannelLowerBound:
    def test_fig1_alpha(self):
        assert channel_lower_bound(Channel("alpha", "a", "b", 2, 3)) == 4

    def test_fig1_beta(self):
        assert channel_lower_bound(Channel("beta", "b", "c", 1, 2)) == 2

    def test_homogeneous(self):
        assert channel_lower_bound(Channel("c", "a", "b", 1, 1)) == 1

    def test_common_divisor(self):
        # p=4, c=6, gcd=2 -> 4+6-2 = 8.
        assert channel_lower_bound(Channel("c", "a", "b", 4, 6)) == 8

    def test_initial_tokens_mod_term(self):
        # d mod gcd(4,6)=2: one leftover token raises the bound by 1.
        assert channel_lower_bound(Channel("c", "a", "b", 4, 6, 1)) == 9

    def test_many_initial_tokens_dominate(self):
        assert channel_lower_bound(Channel("c", "a", "b", 1, 1, 10)) == 10

    def test_bound_is_tight_for_fig1(self, fig1):
        # Capacity lb deadlock-free, lb-1 deadlocks (exactness on a chain).
        lower = lower_bound_distribution(fig1)
        assert Executor(fig1, lower, "c").run().throughput > 0
        for name in fig1.channel_names:
            shrunk = lower.with_capacity(name, lower[name] - 1)
            assert Executor(fig1, shrunk, "c").run().deadlocked


class TestChannelUpperBound:
    def test_needs_repetitions_or_graph(self):
        channel = Channel("c", "a", "b", 2, 3)
        with pytest.raises(ValueError):
            channel_upper_bound(channel)

    def test_formula(self, fig1):
        # alpha: 0 + 2*3 + 3*2 = 12; beta: 0 + 1*2 + 2*1 = 4.
        alpha = fig1.channel("alpha")
        assert channel_upper_bound(alpha, graph=fig1) == 12
        assert channel_upper_bound(fig1.channel("beta"), graph=fig1) == 4

    def test_upper_bound_reaches_max_throughput(self, fig1, fig6, samplerate_graph):
        from repro.analysis.throughput import max_throughput

        for graph in (fig1, fig6, samplerate_graph):
            upper = upper_bound_distribution(graph)
            measured = Executor(graph, upper).run().throughput
            assert measured == max_throughput(graph, method="mcm")


class TestCombinedBounds:
    def test_fig1_box(self, fig1):
        assert dict(lower_bound_distribution(fig1)) == {"alpha": 4, "beta": 2}
        assert dict(upper_bound_distribution(fig1)) == {"alpha": 12, "beta": 4}
        assert size_bounds(fig1) == (6, 16)

    def test_lower_not_above_upper(self, modem_graph, satellite_graph, h263_small):
        for graph in (modem_graph, satellite_graph, h263_small):
            lower = lower_bound_distribution(graph)
            upper = upper_bound_distribution(graph)
            assert all(lower[name] <= upper[name] for name in lower)
