"""Unit tests for repro.buffers.distribution."""

import pytest

from repro.buffers.distribution import StorageDistribution
from repro.exceptions import CapacityError


class TestConstruction:
    def test_size_is_sum(self):
        assert StorageDistribution({"alpha": 4, "beta": 2}).size == 6

    def test_empty_distribution(self):
        assert StorageDistribution({}).size == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(CapacityError, match=">= 0"):
            StorageDistribution({"alpha": -1})

    def test_non_integer_rejected(self):
        with pytest.raises(CapacityError, match="int"):
            StorageDistribution({"alpha": 1.5})

    def test_bool_rejected(self):
        with pytest.raises(CapacityError, match="int"):
            StorageDistribution({"alpha": True})

    def test_uniform(self, fig1):
        distribution = StorageDistribution.uniform(fig1, 3)
        assert dict(distribution) == {"alpha": 3, "beta": 3}


class TestMappingBehaviour:
    def test_getitem_and_len(self):
        distribution = StorageDistribution({"alpha": 4, "beta": 2})
        assert distribution["alpha"] == 4
        assert len(distribution) == 2
        assert set(distribution) == {"alpha", "beta"}

    def test_hashable_and_equal(self):
        first = StorageDistribution({"alpha": 4, "beta": 2})
        second = StorageDistribution({"beta": 2, "alpha": 4})
        assert first == second
        assert hash(first) == hash(second)
        assert first == {"alpha": 4, "beta": 2}

    def test_usable_as_dict_key(self):
        table = {StorageDistribution({"a": 1}): "x"}
        assert table[StorageDistribution({"a": 1})] == "x"


class TestOperations:
    def test_dominates(self):
        big = StorageDistribution({"a": 3, "b": 2})
        small = StorageDistribution({"a": 2, "b": 2})
        assert big.dominates(small)
        assert not small.dominates(big)
        assert big.dominates(big)

    def test_dominates_requires_same_channels(self):
        with pytest.raises(CapacityError, match="different channel sets"):
            StorageDistribution({"a": 1}).dominates(StorageDistribution({"b": 1}))

    def test_incremented(self):
        distribution = StorageDistribution({"a": 1, "b": 1})
        bumped = distribution.incremented("a", 3)
        assert bumped == {"a": 4, "b": 1}
        assert distribution == {"a": 1, "b": 1}

    def test_with_capacity_unknown_channel(self):
        with pytest.raises(CapacityError, match="unknown channel"):
            StorageDistribution({"a": 1}).with_capacity("z", 2)

    def test_scaled(self):
        assert StorageDistribution({"a": 2, "b": 3}).scaled(2) == {"a": 4, "b": 6}

    def test_merged_max(self):
        first = StorageDistribution({"a": 1, "b": 5})
        second = StorageDistribution({"a": 3, "b": 2})
        assert first.merged_max(second) == {"a": 3, "b": 5}

    def test_vector_follows_graph_order(self, fig1):
        distribution = StorageDistribution({"beta": 2, "alpha": 4})
        assert distribution.vector(fig1) == (4, 2)

    def test_str(self):
        assert str(StorageDistribution({"alpha": 4, "beta": 2})) == "(alpha: 4, beta: 2)"
