"""Unit tests for repro.buffers.hybrid and repro.buffers.explain."""

import pytest

from repro.buffers.explain import explain_front, render_explanations
from repro.buffers.explorer import explore_design_space
from repro.buffers.hybrid import bank_peaks
from repro.buffers.shared import shared_memory_requirement
from repro.exceptions import ExplorationError

CAPS = {"alpha": 4, "beta": 2}


class TestBankPeaks:
    def test_one_bank_per_channel_bounded_by_capacity(self, fig1):
        report = bank_peaks(fig1, CAPS, {"alpha": "m0", "beta": "m1"}, "c")
        assert report.peaks["m0"] <= 4
        assert report.peaks["m1"] <= 2
        assert report.throughput.denominator == 7

    def test_single_bank_equals_shared_model(self, fig1):
        hybrid = bank_peaks(fig1, CAPS, {"alpha": "mem", "beta": "mem"}, "c")
        shared = shared_memory_requirement(fig1, CAPS, "c")
        assert hybrid.peaks["mem"] == shared.peak_shared_tokens
        assert hybrid.total == shared.peak_shared_tokens

    def test_total_between_shared_and_distributed(self, fig1):
        split = bank_peaks(fig1, CAPS, {"alpha": "m0", "beta": "m1"}, "c")
        shared = shared_memory_requirement(fig1, CAPS, "c")
        assert shared.peak_shared_tokens <= split.total <= sum(CAPS.values())

    def test_missing_assignment_rejected(self, fig1):
        with pytest.raises(ExplorationError, match="without a bank"):
            bank_peaks(fig1, CAPS, {"alpha": "m0"}, "c")

    def test_unknown_channel_rejected(self, fig1):
        with pytest.raises(ExplorationError, match="unknown channels"):
            bank_peaks(fig1, CAPS, {"alpha": "m0", "beta": "m1", "zz": "m2"}, "c")

    def test_samplerate_bank_partition(self, samplerate_graph):
        banks = {
            name: ("front" if name in ("c1", "c2") else "back")
            for name in samplerate_graph.channel_names
        }
        caps = {"c1": 1, "c2": 4, "c3": 8, "c4": 14, "c5": 5}
        report = bank_peaks(samplerate_graph, caps, banks)
        assert set(report.peaks) == {"front", "back"}
        assert report.total <= sum(caps.values())


class TestExplainFront:
    def test_interior_points_are_storage_limited(self, fig1):
        front = explore_design_space(fig1, "c").front
        explanations = explain_front(fig1, front, "c")
        # Every point below maximal throughput must have a space-blocked
        # channel (otherwise a larger buffer couldn't help).
        for explanation in explanations[:-1]:
            assert explanation.storage_limited
            for channel in explanation.space_blocked:
                assert explanation.deficits[channel] >= 1

    def test_top_point_not_storage_limited_or_at_max(self, fig1):
        result = explore_design_space(fig1, "c")
        explanations = explain_front(fig1, result.front, "c")
        top = explanations[-1]
        assert top.point.throughput == result.max_throughput

    def test_render(self, fig1):
        front = explore_design_space(fig1, "c").front
        text = render_explanations(explain_front(fig1, front, "c"))
        assert "space-blocked" in text
        assert "1/7" in text
