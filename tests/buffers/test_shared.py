"""Shared-memory storage model (Sec. 3 alternative)."""

from fractions import Fraction

import pytest

from repro.buffers.explorer import explore_design_space
from repro.buffers.shared import compare_storage_models, shared_memory_requirement


class TestSharedMemoryRequirement:
    def test_never_exceeds_distribution_size(self, fig1):
        """Sec. 3: per-channel memories are a conservative bound — a
        shared memory never needs more."""
        report = shared_memory_requirement(fig1, {"alpha": 4, "beta": 2}, "c")
        assert report.peak_shared_tokens <= report.distribution_size
        assert report.saving >= 0

    def test_fig1_running_distribution(self, fig1):
        report = shared_memory_requirement(fig1, {"alpha": 4, "beta": 2}, "c")
        assert report.throughput == Fraction(1, 7)
        # The schedule keeps alpha and beta jointly below the full 6.
        assert 4 <= report.peak_shared_tokens <= 6

    def test_peak_reflects_actual_concurrency(self, fig1):
        generous = shared_memory_requirement(fig1, {"alpha": 12, "beta": 4}, "c")
        tight = shared_memory_requirement(fig1, {"alpha": 4, "beta": 2}, "c")
        assert generous.peak_shared_tokens >= tight.peak_shared_tokens

    def test_deadlocked_distribution_reports_prefix_peak(self, fig1):
        report = shared_memory_requirement(fig1, {"alpha": 3, "beta": 2}, "c")
        assert report.throughput == 0
        assert report.peak_shared_tokens >= 2


class TestCompareStorageModels:
    def test_reports_parallel_the_front(self, fig1):
        result = explore_design_space(fig1, "c")
        reports = compare_storage_models(fig1, result.front, "c")
        assert len(reports) == len(result.front)
        for point, report in zip(result.front, reports):
            assert report.distribution_size == point.size
            assert report.throughput == point.throughput
            assert report.peak_shared_tokens <= point.size

    @pytest.mark.slow
    def test_savings_on_samplerate(self, samplerate_graph):
        result = explore_design_space(samplerate_graph)
        reports = compare_storage_models(samplerate_graph, result.front)
        # The multirate chain's channels never peak simultaneously at
        # full capacity, so sharing saves memory somewhere on the front.
        assert any(report.saving > 0 for report in reports)
