"""Unit tests for repro.buffers.pareto."""

from fractions import Fraction

import pytest

from repro.buffers.distribution import StorageDistribution
from repro.buffers.pareto import ParetoFront, ParetoPoint


def dist(**caps):
    return StorageDistribution(caps)


def build_front():
    return ParetoFront.from_evaluations(
        {
            dist(a=4, b=2): Fraction(1, 7),
            dist(a=5, b=2): Fraction(1, 7),  # dominated (same thr, larger)
            dist(a=6, b=2): Fraction(1, 6),
            dist(a=5, b=3): Fraction(1, 6),  # same point, second witness
            dist(a=8, b=2): Fraction(1, 4),
            dist(a=3, b=2): Fraction(0),  # deadlock, ignored
        }
    )


class TestFromEvaluations:
    def test_points_strictly_increasing(self):
        front = build_front()
        assert front.sizes() == [6, 8, 10]
        assert front.throughputs() == [Fraction(1, 7), Fraction(1, 6), Fraction(1, 4)]

    def test_witnesses_grouped(self):
        front = build_front()
        middle = front[1]
        assert len(middle.witnesses) == 2
        assert {tuple(sorted(w.items())) for w in middle.witnesses} == {
            (("a", 5), ("b", 3)),
            (("a", 6), ("b", 2)),
        }

    def test_zero_throughput_excluded(self):
        front = ParetoFront.from_evaluations({dist(a=1): Fraction(0)})
        assert len(front) == 0
        assert front.min_positive is None
        assert front.max_throughput_point is None

    def test_equal_size_keeps_best_throughput(self):
        front = ParetoFront.from_evaluations(
            {dist(a=2, b=2): Fraction(1, 8), dist(a=3, b=1): Fraction(1, 5)}
        )
        assert len(front) == 1
        assert front[0].throughput == Fraction(1, 5)


class TestQueries:
    def test_smallest_for(self):
        front = build_front()
        assert front.smallest_for(Fraction(1, 7)).size == 6
        assert front.smallest_for(Fraction(1, 6)).size == 8
        assert front.smallest_for(Fraction(3, 20)).size == 8
        assert front.smallest_for(Fraction(1, 2)) is None

    def test_throughput_at(self):
        front = build_front()
        assert front.throughput_at(5) == 0
        assert front.throughput_at(6) == Fraction(1, 7)
        assert front.throughput_at(9) == Fraction(1, 6)
        assert front.throughput_at(100) == Fraction(1, 4)

    def test_is_feasible(self):
        front = build_front()
        assert front.is_feasible(8, Fraction(1, 6))
        assert not front.is_feasible(7, Fraction(1, 6))

    def test_iteration_and_equality(self):
        assert build_front() == build_front()
        other = ParetoFront.from_evaluations({dist(a=4, b=2): Fraction(1, 7)})
        assert build_front() != other
        assert [point.size for point in build_front()] == [6, 8, 10]


class TestParetoPoint:
    def test_distribution_accessor(self):
        point = ParetoPoint(6, Fraction(1, 7), (dist(a=4, b=2),))
        assert point.distribution == {"a": 4, "b": 2}

    def test_distribution_without_witness_raises(self):
        with pytest.raises(ValueError):
            ParetoPoint(6, Fraction(1, 7)).distribution

    def test_str(self):
        point = ParetoPoint(6, Fraction(1, 7), (dist(a=4, b=2),))
        assert "size=6" in str(point)
        assert "1/7" in str(point)
