"""Weighted distribution sizes (per-channel token widths)."""

from fractions import Fraction

import pytest

from repro.buffers.distribution import StorageDistribution
from repro.buffers.enumerate import distributions_of_size
from repro.buffers.explorer import explore_design_space, minimal_distribution_for_throughput
from repro.engine.executor import Executor
from repro.exceptions import ExplorationError

WEIGHTS = {"alpha": 2, "beta": 1}


class TestWeightedSize:
    def test_weighted_size(self):
        distribution = StorageDistribution({"alpha": 4, "beta": 2})
        assert distribution.weighted_size(WEIGHTS) == 10
        assert distribution.weighted_size(None) == 6

    def test_missing_weights_default_to_one(self):
        distribution = StorageDistribution({"alpha": 4, "beta": 2})
        assert distribution.weighted_size({"alpha": 3}) == 14


class TestWeightedExploration:
    def test_front_uses_weighted_axis(self, fig1):
        result = explore_design_space(fig1, "c", token_sizes=WEIGHTS)
        sizes = result.front.sizes()
        assert sizes == sorted(set(sizes))
        # Smallest positive point is (4, 2): weighted 2*4 + 2 = 10.
        assert result.front.min_positive.size == 10
        assert result.front.min_positive.throughput == Fraction(1, 7)

    def test_weighted_witness_prefers_cheap_channels(self, fig1):
        """For throughput 1/6 the unweighted optimum can use (6,2) or
        (5,3); with alpha twice as wide, (5,3) (weighted 13) beats
        (6,2) (weighted 14)."""
        point = minimal_distribution_for_throughput(fig1, Fraction(1, 6), "c", WEIGHTS)
        assert point.size == 13
        assert dict(point.distribution) == {"alpha": 5, "beta": 3}

    def test_weighted_minimality_against_brute_force(self, fig1):
        """No distribution in the bound box with a smaller weighted
        cost reaches 1/6."""
        from repro.buffers.bounds import lower_bound_distribution, upper_bound_distribution

        point = minimal_distribution_for_throughput(fig1, Fraction(1, 6), "c", WEIGHTS)
        lower = lower_bound_distribution(fig1)
        upper = upper_bound_distribution(fig1)
        for size in range(lower.size, upper.size + 1):
            for distribution in distributions_of_size(
                fig1.channel_names, size, lower, upper
            ):
                if distribution.weighted_size(WEIGHTS) < point.size:
                    thr = Executor(fig1, distribution, "c").run().throughput
                    assert thr < Fraction(1, 6)

    def test_weighted_front_matches_unweighted_with_unit_weights(self, fig1):
        unit = {name: 1 for name in fig1.channel_names}
        weighted = explore_design_space(fig1, "c", token_sizes=unit)
        plain = explore_design_space(fig1, "c")
        assert weighted.front == plain.front

    def test_only_dependency_strategy(self, fig1):
        with pytest.raises(ExplorationError, match="dependency"):
            explore_design_space(fig1, "c", strategy="divide", token_sizes=WEIGHTS)

    def test_nonpositive_weights_rejected(self, fig1):
        with pytest.raises(ExplorationError, match="positive"):
            explore_design_space(fig1, "c", token_sizes={"alpha": 0})

    def test_weighted_max_size_cap(self, fig1):
        result = explore_design_space(fig1, "c", token_sizes=WEIGHTS, max_size=13)
        assert all(point.size <= 13 for point in result.front)
        assert result.front.max_throughput_point.throughput == Fraction(1, 6)
