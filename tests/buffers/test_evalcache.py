"""Unit tests for the shared evaluation service (memo + pruning)."""

from fractions import Fraction

import pytest

from repro.buffers.distribution import StorageDistribution
from repro.buffers.evalcache import EvaluationService
from repro.engine.executor import Executor
from repro.exceptions import CapacityError
from repro.gallery import fig1_example
from repro.runtime.config import ExplorationConfig


@pytest.fixture()
def graph():
    return fig1_example()


def dist(**capacities):
    return StorageDistribution(capacities)


def test_memo_answers_repeat_queries_without_rerunning(graph):
    service = EvaluationService(graph, "c")
    d = dist(alpha=4, beta=2)
    first = service(d)
    second = service(d)
    assert first == second == Executor(graph, d, "c").run().throughput
    assert service.stats.evaluations == 1
    assert service.stats.cache_hits == 1
    assert service.cache_size == 1


def test_ceiling_squeeze_prunes_supersets(graph):
    ceiling = Fraction(1, 4)  # the example's maximal throughput
    service = EvaluationService(graph, "c", ceiling=ceiling)
    witness = dist(alpha=7, beta=3)
    assert service(witness) == ceiling
    superset = dist(alpha=8, beta=4)
    assert service(superset) == ceiling
    assert service.stats.prunes_superset == 1
    assert service.stats.evaluations == 1  # the superset never ran
    assert service(superset) == Executor(graph, superset, "c").run().throughput


def test_ceiling_squeeze_never_fires_below_the_ceiling(graph):
    service = EvaluationService(graph, "c", ceiling=Fraction(1, 4))
    below = dist(alpha=4, beta=2)  # throughput 1/7 < ceiling
    assert service(below) < Fraction(1, 4)
    superset = dist(alpha=5, beta=2)
    service(superset)
    assert service.stats.prunes_superset == 0
    assert service.stats.evaluations == 2


def test_deadlock_cover_prunes_subsets(graph):
    service = EvaluationService(graph, "c")
    big_deadlock = dist(alpha=2, beta=3)
    assert service(big_deadlock) == 0
    subset = dist(alpha=2, beta=2)
    assert service(subset) == 0
    assert service.stats.prunes_subset == 1
    assert service.stats.evaluations == 1
    assert Executor(graph, subset, "c").run().throughput == 0


def test_set_ceiling_promotes_cached_results_retroactively(graph):
    service = EvaluationService(graph, "c")
    witness = dist(alpha=7, beta=3)
    value = service(witness)
    superset = dist(alpha=8, beta=3)
    service.set_ceiling(value)
    assert service(superset) == value
    assert service.stats.prunes_superset == 1
    assert service.stats.evaluations == 1


def test_cache_disabled_reruns_everything(graph):
    service = EvaluationService(graph, "c", config=ExplorationConfig(cache=False))
    d = dist(alpha=4, beta=2)
    assert service(d) == service(d)
    assert service.stats.evaluations == 2
    assert service.stats.cache_hits == 0
    assert service.cache_size == 0


def test_evaluate_many_preserves_input_order(graph):
    service = EvaluationService(graph, "c")
    batch = [dist(alpha=2, beta=2), dist(alpha=4, beta=2), dist(alpha=4, beta=6)]
    values = service.evaluate_many(batch)
    assert values == [Executor(graph, d, "c").run().throughput for d in batch]


def test_blocking_query_reruns_pruned_records(graph):
    """A prune synthesises a record without blocking data; a blocking
    caller that still needs to expand the distribution must trigger a
    real execution."""
    ceiling = Fraction(1, 4)
    service = EvaluationService(graph, "c", ceiling=ceiling)
    service(dist(alpha=7, beta=3))  # ceiling witness
    superset = dist(alpha=7, beta=4)

    # Pruning is allowed: reaching the ceiling ends expansion anyway.
    record = service.evaluate_blocking(superset, reached=lambda value: value >= ceiling)
    assert record.throughput == ceiling
    assert not record.has_blocking
    assert service.stats.evaluations == 1

    # Without a reached() that covers the ceiling, blocking info is
    # needed, so the query must execute.
    record = service.evaluate_blocking(superset, reached=lambda value: False)
    assert record.has_blocking
    assert service.stats.evaluations == 2
    assert record.throughput == ceiling


def test_blocking_record_not_replaced_by_thinner_one(graph):
    service = EvaluationService(graph, "c", ceiling=Fraction(1, 4))
    d = dist(alpha=3, beta=3)
    full = service.evaluate_blocking(d, reached=lambda value: False)
    assert full.has_blocking
    again = service.evaluate_blocking(d, reached=lambda value: False)
    assert again is full
    assert service.stats.evaluations == 1


def test_missing_channel_raises_capacity_error(graph):
    service = EvaluationService(graph, "c")
    with pytest.raises(CapacityError):
        service(StorageDistribution({"alpha": 4}))


def test_evaluations_property_dumps_the_cache(graph):
    service = EvaluationService(graph, "c")
    d = dist(alpha=4, beta=2)
    value = service(d)
    assert service.evaluations == {d: value}


def test_context_manager_closes_pool(graph):
    with EvaluationService(graph, "c", config=ExplorationConfig(workers=2)) as service:
        batch = [dist(alpha=2, beta=2), dist(alpha=4, beta=2)]
        values = service.evaluate_many(batch)
        assert values == [Executor(graph, d, "c").run().throughput for d in batch]
    assert service._prober is None
