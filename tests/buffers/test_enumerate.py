"""Unit tests for repro.buffers.enumerate."""

import pytest

from repro.buffers.enumerate import count_distributions_of_size, distributions_of_size
from repro.exceptions import ExplorationError


CHANNELS = ["alpha", "beta"]
LOWER = {"alpha": 4, "beta": 2}
UPPER = {"alpha": 12, "beta": 4}


class TestDistributionsOfSize:
    def test_minimal_size_single_vector(self):
        result = list(distributions_of_size(CHANNELS, 6, LOWER, UPPER))
        assert len(result) == 1
        assert result[0] == {"alpha": 4, "beta": 2}

    def test_all_compositions_of_size_8(self):
        result = {tuple(sorted(d.items())) for d in distributions_of_size(CHANNELS, 8, LOWER, UPPER)}
        assert result == {
            (("alpha", 4), ("beta", 4)),
            (("alpha", 5), ("beta", 3)),
            (("alpha", 6), ("beta", 2)),
        }

    def test_sizes_respected(self):
        for size in range(6, 17):
            for distribution in distributions_of_size(CHANNELS, size, LOWER, UPPER):
                assert distribution.size == size
                assert 4 <= distribution["alpha"] <= 12
                assert 2 <= distribution["beta"] <= 4

    def test_out_of_range_size_yields_nothing(self):
        assert list(distributions_of_size(CHANNELS, 5, LOWER, UPPER)) == []
        assert list(distributions_of_size(CHANNELS, 17, LOWER, UPPER)) == []

    def test_empty_channel_list(self):
        assert list(distributions_of_size([], 0, {}, {})) == [dict()]
        assert list(distributions_of_size([], 1, {}, {})) == []

    def test_single_channel(self):
        result = list(distributions_of_size(["c"], 3, {"c": 1}, {"c": 5}))
        assert result == [{"c": 3}]

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ExplorationError, match="exceeds"):
            list(distributions_of_size(["c"], 3, {"c": 5}, {"c": 1}))


class TestCountDistributions:
    def test_count_matches_enumeration(self):
        for size in range(5, 18):
            counted = count_distributions_of_size(CHANNELS, size, LOWER, UPPER)
            enumerated = len(list(distributions_of_size(CHANNELS, size, LOWER, UPPER)))
            assert counted == enumerated

    def test_count_is_cheap_for_large_boxes(self):
        channels = [f"c{i}" for i in range(20)]
        lower = {name: 1 for name in channels}
        upper = {name: 50 for name in channels}
        count = count_distributions_of_size(channels, 300, lower, upper)
        assert count > 10**20  # astronomically large, computed instantly

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ExplorationError, match="exceeds"):
            count_distributions_of_size(["c"], 3, {"c": 5}, {"c": 1})
