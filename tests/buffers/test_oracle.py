"""Unit tests for the monotone throughput-bounds oracle.

Covers the :class:`~repro.buffers.shared.DominanceFront` level
antichains, the interval/cut queries of
:class:`~repro.buffers.oracle.ThroughputBoundsOracle`, and the
service-level plumbing (``bounds_exact`` answers, ``cuts_below`` and
checkpoint round-trips with the oracle enabled).
"""

from fractions import Fraction

import pytest

from repro.buffers.distribution import StorageDistribution
from repro.buffers.evalcache import EvaluationService
from repro.buffers.oracle import ThroughputBoundsOracle
from repro.buffers.shared import DominanceFront
from repro.engine.executor import Executor
from repro.runtime.config import ExplorationConfig


class TestDominanceFront:
    def test_minimal_keeps_the_floor_antichain(self):
        front = DominanceFront("minimal")
        assert front.add((2, 2))
        assert not front.add((3, 3))  # dominated by (2, 2): redundant
        assert front.add((1, 4))  # incomparable: kept
        assert sorted(front) == [(1, 4), (2, 2)]

    def test_maximal_keeps_the_ceiling_antichain(self):
        front = DominanceFront("maximal")
        assert front.add((3, 3))
        assert not front.add((2, 2))  # below (3, 3): redundant
        assert front.add((4, 1))
        assert sorted(front) == [(3, 3), (4, 1)]

    def test_insert_evicts_newly_covered_members(self):
        front = DominanceFront("minimal")
        front.add((2, 3))
        front.add((3, 2))
        assert front.add((2, 2))  # covers both earlier members
        assert list(front) == [(2, 2)]

    def test_duplicate_insert_is_redundant(self):
        front = DominanceFront("maximal")
        assert front.add((2, 2))
        assert not front.add((2, 2))
        assert len(front) == 1

    def test_any_below_and_any_above(self):
        floor = DominanceFront("minimal")
        floor.add((2, 2))
        assert floor.any_below((2, 3))
        assert floor.any_below((2, 2))
        assert not floor.any_below((1, 5))
        ceil = DominanceFront("maximal")
        ceil.add((2, 2))
        assert ceil.any_above((1, 2))
        assert not ceil.any_above((3, 1))

    def test_distant_buckets_fall_back_to_dominance_scans(self):
        front = DominanceFront("minimal")
        front.add((1, 1))
        assert front.any_below((5, 5))  # four totals away
        assert not front.any_below((0, 9))

    def test_limit_evicts_oldest_member(self):
        front = DominanceFront("minimal", limit=2)
        front.add((0, 4))
        front.add((1, 3))
        front.add((2, 2))  # pairwise incomparable: eviction must fire
        assert len(front) == 2
        assert (0, 4) not in set(front)


class TestOracleIntervals:
    def test_exact_record_closes_the_interval(self):
        oracle = ThroughputBoundsOracle()
        oracle.observe((4, 2), Fraction(1, 7))
        assert oracle.interval((4, 2)) == (Fraction(1, 7), Fraction(1, 7))
        assert oracle.records == 1
        assert oracle.levels == 1

    def test_observe_is_idempotent_per_vector(self):
        oracle = ThroughputBoundsOracle()
        oracle.observe((4, 2), Fraction(1, 7))
        oracle.observe((4, 2), Fraction(1, 3))  # ignored
        assert oracle.index[(4, 2)] == Fraction(1, 7)

    def test_neighbour_records_bound_adjacent_slices(self):
        oracle = ThroughputBoundsOracle()
        oracle.observe((4, 2), Fraction(1, 7))
        oracle.observe((6, 3), Fraction(1, 4))
        # (5, 2) sits one token above (4, 2): floor from the shrunk
        # neighbour, ceiling from the level scan over (6, 3).
        low, high = oracle.interval((5, 2))
        assert low == Fraction(1, 7)
        assert high == Fraction(1, 4)

    def test_sandwich_between_equal_levels_is_exact(self):
        oracle = ThroughputBoundsOracle()
        oracle.observe((4, 2), Fraction(1, 7))
        oracle.observe((6, 4), Fraction(1, 7))
        low, high = oracle.interval((5, 3))
        assert low == high == Fraction(1, 7)

    def test_min_total_short_circuits_lower(self):
        oracle = ThroughputBoundsOracle()
        oracle.observe((4, 2), Fraction(1, 7))
        # Equal total but incomparable: nothing recorded can sit below.
        assert oracle.lower((2, 4)) == 0

    def test_max_total_short_circuits_upper(self):
        oracle = ThroughputBoundsOracle()
        oracle.observe((4, 2), Fraction(1, 7))
        assert oracle.upper((2, 4)) is None  # no ceiling known yet
        oracle.ceiling = Fraction(1, 4)
        assert oracle.upper((2, 4)) == Fraction(1, 4)

    def test_deadlock_records_never_enter_the_floor(self):
        oracle = ThroughputBoundsOracle()
        oracle.observe((2, 2), Fraction(0))
        oracle.observe((9, 9), Fraction(1, 4))
        # A zero floor level would be useless; lower() must not report
        # "provably >= 0" via the level scan, and the ceil side must
        # still serve the deadlock cover.
        assert oracle.lower((3, 3)) == 0
        assert oracle.ceil_covers(Fraction(0), (1, 2))
        assert not oracle.ceil_covers(Fraction(0), (3, 2))

    def test_floor_reaches_is_the_ceiling_squeeze(self):
        oracle = ThroughputBoundsOracle(ceiling=Fraction(1, 4))
        oracle.observe((7, 3), Fraction(1, 4))
        assert oracle.floor_reaches(Fraction(1, 4), (8, 4))
        assert not oracle.floor_reaches(Fraction(1, 4), (7, 2))


class TestOracleCuts:
    def test_upper_below_strict_and_non_strict(self):
        oracle = ThroughputBoundsOracle()
        oracle.observe((6, 3), Fraction(1, 7))
        query = (5, 3)  # dominated by the record via a grown neighbour
        assert oracle.upper_below(query, Fraction(1, 4))
        assert not oracle.upper_below(query, Fraction(1, 7))  # tie, strict
        assert oracle.upper_below(query, Fraction(1, 7), strict=False)
        assert not oracle.upper_below(query, Fraction(1, 8), strict=False)

    def test_ceiling_alone_cuts(self):
        oracle = ThroughputBoundsOracle(ceiling=Fraction(1, 7))
        assert oracle.upper_below((100, 100), Fraction(1, 4))
        assert not oracle.upper_below((100, 100), Fraction(1, 7))
        assert oracle.upper_below((100, 100), Fraction(1, 7), strict=False)

    def test_level_scan_cut_beyond_neighbours(self):
        oracle = ThroughputBoundsOracle()
        oracle.observe((6, 6), Fraction(1, 7))
        # (4, 4) is two slices below the record: only the level scan
        # (not the grown-neighbour lookup) can prove the cut.
        assert oracle.upper_below((4, 4), Fraction(1, 4))

    def test_eviction_only_loosens_never_misclassifies(self):
        oracle = ThroughputBoundsOracle(limit=1)
        oracle.observe((0, 9), Fraction(1, 7))
        oracle.observe((9, 0), Fraction(1, 7))  # evicts the first witness
        low, high = oracle.interval((9, 9))
        assert low in (Fraction(0), Fraction(1, 7))  # maybe lost, never wrong
        assert high is None


@pytest.fixture()
def graph():
    from repro.gallery import fig1_example

    return fig1_example()


def dist(**capacities):
    return StorageDistribution(capacities)


class TestServiceBounds:
    def config(self, **changes):
        return ExplorationConfig(bounds=True).replaced(**changes)

    def test_closed_interval_answers_without_simulating(self, graph):
        service = EvaluationService(graph, "c", config=self.config())
        inner = dist(alpha=4, beta=2)
        outer = dist(alpha=4, beta=5)
        assert service(inner) == service(outer) == Fraction(1, 7)
        between = dist(alpha=4, beta=3)
        assert service(between) == Fraction(1, 7)
        assert service.stats.bounds_exact == 1
        assert service.stats.evaluations == 2  # the sandwich never ran
        # The oracle answer matches the simulator exactly.
        assert Executor(graph, between, "c").run().throughput == Fraction(1, 7)

    def test_bounds_disabled_by_default(self, graph):
        service = EvaluationService(graph, "c")
        assert not service.bounds_enabled
        service(dist(alpha=4, beta=2))
        service(dist(alpha=4, beta=5))
        service(dist(alpha=4, beta=3))
        assert service.stats.bounds_exact == 0
        assert service.stats.evaluations == 3

    def test_cuts_below_counts_and_spares_the_simulator(self, graph):
        service = EvaluationService(graph, "c", config=self.config())
        service(dist(alpha=6, beta=3))  # 1/5
        candidate = dist(alpha=5, beta=3)  # true 1/6 <= 1/5
        assert service.cuts_below(candidate, Fraction(1, 4))
        assert service.stats.bounds_cut == 1
        assert service.stats.evaluations == 1
        # Non-strict form: ties with the bound are cut too.
        assert service.cuts_below(candidate, Fraction(1, 5), strict=False)
        assert not service.cuts_below(candidate, Fraction(1, 5))

    def test_cuts_below_never_cuts_memoised_vectors(self, graph):
        service = EvaluationService(graph, "c", config=self.config())
        seen = dist(alpha=6, beta=3)
        service(seen)
        # The memo already holds the exact answer; cutting it would
        # hide a free cache hit from the caller.
        assert not service.cuts_below(seen, Fraction(1, 2))

    def test_cuts_below_requires_bounds(self, graph):
        service = EvaluationService(graph, "c")
        service(dist(alpha=6, beta=3))
        assert not service.cuts_below(dist(alpha=5, beta=3), Fraction(1, 2))
        assert service.stats.bounds_cut == 0

    def test_cached_throughput_peeks_without_evaluating(self, graph):
        service = EvaluationService(graph, "c", config=self.config())
        d = dist(alpha=4, beta=2)
        assert service.cached_throughput(d) is None
        assert service.stats.evaluations == 0
        value = service(d)
        assert service.cached_throughput(d) == value
        assert service.stats.cache_hits == 1  # the peek is a real hit

    def test_checkpoint_round_trip_preserves_oracle_and_counters(self, graph):
        service = EvaluationService(graph, "c", config=self.config())
        service(dist(alpha=4, beta=2))
        service(dist(alpha=4, beta=5))
        service(dist(alpha=4, beta=3))  # bounds_exact answer
        state = service.export_state()

        restored = EvaluationService(graph, "c", config=self.config())
        restored.restore_state(state)
        assert restored.stats.bounds_exact == service.stats.bounds_exact == 1
        assert restored.stats.bounds_cut == service.stats.bounds_cut
        # The rebuilt oracle answers the sandwich exactly again, with
        # no fresh simulation on top of the restored tally.
        before = restored.stats.evaluations
        assert restored(dist(alpha=4, beta=4)) == Fraction(1, 7)
        assert restored.stats.evaluations == before
        assert restored.stats.bounds_exact == 2

    def test_bounds_require_cache(self):
        from repro.exceptions import ExplorationError

        with pytest.raises(ExplorationError):
            ExplorationConfig(cache=False, bounds=True)
        with pytest.raises(ExplorationError):
            ExplorationConfig(cache=False, speculate=True)
