"""Unit tests for repro.buffers.quantize."""

from fractions import Fraction

import pytest

from repro.buffers.distribution import StorageDistribution
from repro.buffers.pareto import ParetoFront
from repro.buffers.quantize import quantize_down, quantize_up, thin_front
from repro.exceptions import ExplorationError


class TestGridSnapping:
    def test_quantize_down(self):
        q = Fraction(1, 10)
        assert quantize_down(Fraction(17, 100), q) == Fraction(1, 10)
        assert quantize_down(Fraction(1, 5), q) == Fraction(1, 5)
        assert quantize_down(Fraction(0), q) == 0

    def test_quantize_up(self):
        q = Fraction(1, 10)
        assert quantize_up(Fraction(17, 100), q) == Fraction(1, 5)
        assert quantize_up(Fraction(1, 5), q) == Fraction(1, 5)

    def test_non_positive_quantum_rejected(self):
        with pytest.raises(ExplorationError):
            quantize_down(Fraction(1), Fraction(0))
        with pytest.raises(ExplorationError):
            quantize_up(Fraction(1), Fraction(-1, 2))


class TestThinFront:
    def front(self):
        return ParetoFront.from_evaluations(
            {
                StorageDistribution({"a": size}): thr
                for size, thr in [
                    (4, Fraction(10, 100)),
                    (5, Fraction(11, 100)),
                    (6, Fraction(12, 100)),
                    (7, Fraction(25, 100)),
                    (8, Fraction(26, 100)),
                    (9, Fraction(40, 100)),
                ]
            }
        )

    def test_one_point_per_level(self):
        thinned = thin_front(self.front(), Fraction(1, 10))
        assert thinned.sizes() == [4, 7, 9]
        # Each kept point retains its exact throughput.
        assert thinned.throughputs() == [
            Fraction(10, 100),
            Fraction(25, 100),
            Fraction(40, 100),
        ]

    def test_fine_quantum_keeps_everything(self):
        front = self.front()
        assert thin_front(front, Fraction(1, 100)) == front

    def test_coarse_quantum_keeps_first(self):
        thinned = thin_front(self.front(), Fraction(1))
        assert thinned.sizes() == [4]

    def test_invalid_quantum(self):
        with pytest.raises(ExplorationError):
            thin_front(self.front(), Fraction(0))
