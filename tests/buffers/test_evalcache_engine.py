"""EvaluationService engine selection: fast kernel for plain queries,
reference executor for blocking-aware ones, identical answers."""

from fractions import Fraction

import pytest

from repro.buffers.distribution import StorageDistribution
from repro.buffers.evalcache import EvaluationService
from repro.runtime.config import ExplorationConfig
from repro.exceptions import EngineError


def distributions():
    return [
        StorageDistribution({"alpha": 4 + i, "beta": 2 + j})
        for i in range(3)
        for j in range(2)
    ]


def test_plain_queries_use_fast_kernel_by_default(fig1):
    service = EvaluationService(fig1, "c")
    values = [service(d) for d in distributions()]
    assert service.stats.fast_runs == service.stats.evaluations > 0
    reference = EvaluationService(fig1, "c", config=ExplorationConfig(engine="reference"))
    assert values == [reference(d) for d in distributions()]
    assert reference.stats.fast_runs == 0


def test_blocking_queries_always_run_on_reference(fig1):
    service = EvaluationService(fig1, "c")
    record = service.evaluate_blocking(StorageDistribution({"alpha": 4, "beta": 2}))
    assert record.has_blocking
    assert service.stats.fast_runs == 0


def test_forced_fast_engine_rejects_blocking_queries(fig1):
    service = EvaluationService(fig1, "c", config=ExplorationConfig(engine="fast"))
    assert service(StorageDistribution({"alpha": 4, "beta": 2})) == Fraction(1, 7)
    with pytest.raises(EngineError, match="blocking-aware"):
        service.evaluate_blocking(StorageDistribution({"alpha": 4, "beta": 2}))


def test_unknown_engine_rejected_at_construction(fig1):
    with pytest.raises(EngineError, match="unknown engine"):
        EvaluationService(fig1, "c", config=ExplorationConfig(engine="warp"))


def test_blocking_record_never_replaced_by_thin_one(fig1):
    service = EvaluationService(fig1, "c")
    d = StorageDistribution({"alpha": 4, "beta": 2})
    full = service.evaluate_blocking(d)
    assert service(d) == full.throughput  # served from cache
    assert service.evaluate_blocking(d) is full
    assert service.stats.evaluations == 1


def test_thin_record_upgraded_when_blocking_needed(fig1):
    service = EvaluationService(fig1, "c")
    d = StorageDistribution({"alpha": 4, "beta": 2})
    thin_throughput = service(d)
    assert service.stats.fast_runs == 1
    record = service.evaluate_blocking(d)
    assert record.has_blocking
    assert record.throughput == thin_throughput
    assert service.stats.evaluations == 2  # re-executed for blocking data
