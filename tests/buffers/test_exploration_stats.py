"""ExplorationStats accounting, pinned on the paper's running example.

The expected counts are the pre-service serial baselines (Table 2 /
Fig. 5 context: the example graph explored with all three strategies),
so any accidental change in what gets counted — or in how much work the
strategies do — fails loudly.
"""

import pytest

from repro.buffers.explorer import explore_design_space
from repro.runtime.config import ExplorationConfig
from repro.gallery import fig1_example

#: (strategy, evaluations, sizes_probed) with cache off and one worker —
#: the exact costs of the pre-change serial implementation.
PINNED = (
    ("dependency", 9, 5),
    ("divide", 15, 7),
    ("exhaustive", 12, 5),
)

PINNED_FRONT = [(6, "1/7"), (8, "1/6"), (9, "1/5"), (10, "1/4")]


@pytest.fixture(scope="module")
def graph():
    return fig1_example()


@pytest.mark.parametrize("strategy,evaluations,sizes_probed", PINNED)
def test_serial_baseline_counts_are_pinned(graph, strategy, evaluations, sizes_probed):
    result = explore_design_space(graph, "c", strategy=strategy, config=ExplorationConfig(cache=False))
    assert result.stats.evaluations == evaluations
    assert result.stats.sizes_probed == sizes_probed
    assert result.stats.cache_hits == 0
    assert result.stats.prunes == 0
    assert result.stats.workers == 1
    assert result.stats.parallel_batches == 0
    assert [(p.size, str(p.throughput)) for p in result.front] == PINNED_FRONT


@pytest.mark.parametrize("strategy,evaluations,_sizes", PINNED)
def test_cache_never_increases_work(graph, strategy, evaluations, _sizes):
    result = explore_design_space(graph, "c", strategy=strategy, config=ExplorationConfig(cache=True))
    assert result.stats.evaluations <= evaluations
    assert [(p.size, str(p.throughput)) for p in result.front] == PINNED_FRONT
    # Every saved evaluation is attributed to a hit or a prune.
    saved = evaluations - result.stats.evaluations
    assert result.stats.cache_hits + result.stats.prunes >= saved


def test_dependency_needs_fewest_evaluations(graph):
    counts = {
        strategy: explore_design_space(graph, "c", strategy=strategy).stats.evaluations
        for strategy, _evals, _sizes in PINNED
    }
    assert counts["dependency"] <= counts["divide"]
    assert counts["dependency"] <= counts["exhaustive"]


def test_parallel_run_accounts_workers_and_batches(graph):
    result = explore_design_space(graph, "c", strategy="dependency", config=ExplorationConfig(workers=2))
    assert result.stats.workers == 2
    assert result.stats.parallel_batches >= 1
    # Batch-by-size parallelism never speculates in the dependency
    # sweep, so the evaluation count equals the serial baseline.
    assert result.stats.evaluations == 9
    assert [(p.size, str(p.throughput)) for p in result.front] == PINNED_FRONT


def test_summary_surfaces_cache_counters(graph):
    summary = explore_design_space(graph, "c").summary()
    assert "cache:" in summary
    assert "prunes" in summary
    assert "worker(s)" in summary


def test_result_json_includes_cache_counters(graph, tmp_path):
    import json

    from repro.io.frontjson import write_result_json

    result = explore_design_space(graph, "c", config=ExplorationConfig(workers=1))
    path = tmp_path / "result.json"
    write_result_json(result, path)
    stats = json.loads(path.read_text())["stats"]
    for key in ("cache_hits", "prunes", "workers", "parallel_batches"):
        assert key in stats
    assert stats["workers"] == 1
