"""End-to-end tests for the buffy command line."""

import pytest

from repro.cli import main, parse_capacities, parse_fraction
from repro.io.sdfxml import write_xml
from repro.io.jsonio import write_json


class TestHelpers:
    def test_parse_fraction(self):
        from fractions import Fraction

        assert parse_fraction("1/6") == Fraction(1, 6)
        assert parse_fraction("0.25") == Fraction(1, 4)

    def test_parse_capacities(self):
        assert dict(parse_capacities("alpha=4, beta=2")) == {"alpha": 4, "beta": 2}


class TestExploration:
    def test_gallery_exploration(self, capsys):
        assert main(["gallery:example", "--observe", "c"]) == 0
        out = capsys.readouterr().out
        assert "Pareto points: 4" in out
        assert "1/4" in out

    def test_chart(self, capsys):
        assert main(["gallery:example", "--observe", "c", "--chart"]) == 0
        assert "distribution size" in capsys.readouterr().out

    def test_table(self, capsys):
        assert main(["gallery:example", "--observe", "c", "--table"]) == 0
        assert "#pareto" in capsys.readouterr().out

    def test_strategy_and_max_size(self, capsys):
        assert main(["gallery:example", "--observe", "c", "--strategy", "divide", "--max-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "Pareto points: 2" in out

    def test_quantum(self, capsys):
        assert main(["gallery:example", "--observe", "c", "--quantum", "1/10"]) == 0
        assert "Pareto points: 2" in capsys.readouterr().out


class TestQueries:
    def test_throughput_constraint(self, capsys):
        assert main(["gallery:example", "--observe", "c", "--throughput", "1/6"]) == 0
        out = capsys.readouterr().out
        assert "size 8" in out

    def test_unachievable_constraint_exit_code(self, capsys):
        assert main(["gallery:example", "--observe", "c", "--throughput", "2/3"]) == 1
        assert "not achievable" in capsys.readouterr().out

    def test_capacities_and_schedule(self, capsys):
        assert main(
            ["gallery:example", "--observe", "c", "--capacities", "alpha=4,beta=2", "--schedule", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "throughput of 'c': 1/7" in out
        assert "| time |" in out

    def test_deadlocking_capacities_reported(self, capsys):
        assert main(["gallery:example", "--observe", "c", "--capacities", "alpha=3,beta=2"]) == 0
        assert "deadlocks" in capsys.readouterr().out

    def test_bounds(self, capsys):
        assert main(["gallery:example", "--bounds"]) == 0
        out = capsys.readouterr().out
        assert "(size 6)" in out
        assert "(size 16)" in out


class TestInputsAndExports:
    def test_xml_file_input(self, tmp_path, fig1, capsys):
        path = tmp_path / "g.xml"
        write_xml(fig1, path)
        assert main([str(path), "--observe", "c", "--max-size", "6"]) == 0
        assert "Pareto points: 1" in capsys.readouterr().out

    def test_json_file_input(self, tmp_path, fig1, capsys):
        path = tmp_path / "g.json"
        write_json(fig1, path)
        assert main([str(path), "--observe", "c", "--max-size", "6"]) == 0

    def test_dot_export(self, capsys):
        assert main(["gallery:example", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_export_files(self, tmp_path, capsys):
        xml_path = tmp_path / "out.xml"
        json_path = tmp_path / "out.json"
        assert main(
            ["gallery:example", "--export-xml", str(xml_path), "--export-json", str(json_path), "--bounds"]
        ) == 0
        assert xml_path.exists()
        assert json_path.exists()

    def test_list_gallery(self, capsys):
        assert main(["--list-gallery"]) == 0
        assert "modem" in capsys.readouterr().out


class TestErrors:
    def test_missing_graph_argument(self, capsys):
        assert main([]) == 2
        assert "required" in capsys.readouterr().err

    def test_unknown_gallery_graph(self, capsys):
        assert main(["gallery:nope"]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["/does/not/exist.xml"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_capacities_channel(self, capsys):
        assert main(["gallery:example", "--capacities", "zz=3"]) == 1
        assert "error" in capsys.readouterr().err


class TestBackendFlag:
    def test_backend_selects_probe_backend(self, capsys):
        assert main(["gallery:example", "--observe", "c", "--backend", "batch-numpy", "--batch", "8"]) == 0
        assert "Pareto points: 4" in capsys.readouterr().out

    def test_batched_front_matches_default(self, capsys):
        assert main(["gallery:example", "--observe", "c"]) == 0
        plain = capsys.readouterr().out
        assert main(["gallery:example", "--observe", "c", "--backend", "batch-numpy", "--batch", "4"]) == 0
        batched = capsys.readouterr().out
        pareto = [line for line in plain.splitlines() if "throughput=" in line]
        assert pareto == [line for line in batched.splitlines() if "throughput=" in line]

    def test_unknown_backend_fails_up_front(self, capsys):
        assert main(["gallery:example", "--backend", "warp"]) == 1
        err = capsys.readouterr().err
        assert "unknown probe backend 'warp'" in err
        assert "batch-numpy" in err  # the registry is listed

    def test_capability_mismatch_fails_up_front(self, capsys):
        assert main(["gallery:example", "--engine", "reference", "--backend", "fastcore"]) == 1
        assert "lacks the blocking capability" in capsys.readouterr().err

    def test_negative_batch_rejected(self, capsys):
        assert main(["gallery:example", "--batch", "-3"]) == 1
        assert "batch must be >= 0" in capsys.readouterr().err
