"""Gallery registry lookups."""

import pytest

from repro.exceptions import GraphError
from repro.gallery.registry import gallery_graph, gallery_names


def test_names_sorted_and_complete():
    names = gallery_names()
    assert names == sorted(names)
    for expected in ("example", "fig6", "modem", "samplerate", "satellite", "h263", "h263-small"):
        assert expected in names


def test_every_name_constructs():
    for name in gallery_names():
        graph = gallery_graph(name)
        assert graph.num_actors > 0


def test_unknown_name_lists_alternatives():
    with pytest.raises(GraphError, match="available:"):
        gallery_graph("nope")


def test_h263_small_is_scaled():
    assert gallery_graph("h263-small").channel("h1").production == 99
    assert gallery_graph("h263").channel("h1").production == 2376
