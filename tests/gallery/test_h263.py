"""The H.263 decoder model (Fig. 12 of the paper)."""

import pytest

from repro.analysis.deadlock import is_deadlock_free
from repro.analysis.repetitions import repetition_vector
from repro.gallery.h263 import FULL_BLOCKS, h263_decoder


def test_full_rate_shape():
    graph = h263_decoder()
    assert graph.num_actors == 4
    assert graph.num_channels == 3
    assert graph.channel("h1").production == FULL_BLOCKS == 2376
    assert graph.channel("h3").consumption == 2376


def test_documented_execution_times():
    graph = h263_decoder()
    times = {name: actor.execution_time for name, actor in graph.actors.items()}
    assert times == {"vld": 26018, "iq": 559, "idct": 486, "mc": 10958}


def test_repetition_vector_full_rate():
    q = repetition_vector(h263_decoder())
    assert q == {"vld": 1, "iq": 2376, "idct": 2376, "mc": 1}


def test_scaled_variant(h263_small):
    q = repetition_vector(h263_small)
    assert q == {"vld": 1, "iq": 9, "idct": 9, "mc": 1}
    assert is_deadlock_free(h263_small)


def test_invalid_blocks_rejected():
    with pytest.raises(ValueError):
        h263_decoder(blocks=0)


def test_frame_throughput_bottleneck():
    """For small bursts VLD (26018) dominates the iteration; once the
    per-block IQ work exceeds it (blocks*559 > 26018), the frame rate
    drops accordingly."""
    from fractions import Fraction

    from repro.analysis.throughput import max_throughput

    assert max_throughput(h263_decoder(blocks=4), "mc") == Fraction(1, 26018)
    assert max_throughput(h263_decoder(blocks=99), "mc") == Fraction(1, 99 * 559)
