"""Test package."""
