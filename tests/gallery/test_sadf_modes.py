"""The multi-mode gallery entries and their pinned all-scenario fronts."""

from fractions import Fraction

import pytest

from repro.exceptions import GraphError
from repro.gallery import h263_frames, modem_modes, sadf_gallery_graph, sadf_gallery_names
from repro.sadf.explorer import explore_design_space
from repro.sadf.throughput import worst_case_throughput


class TestRegistry:
    def test_names(self):
        assert sadf_gallery_names() == ["h263-frames", "modem-modes"]

    def test_lookup(self):
        assert sadf_gallery_graph("modem-modes").name == "modem-modes"
        with pytest.raises(GraphError, match="unknown SADF gallery graph"):
            sadf_gallery_graph("nope")


class TestModemModes:
    def test_structure(self):
        sadf = modem_modes()
        assert len(sadf.actors) == 16
        assert len(sadf.channels) == 19
        assert sadf.scenario_names == ["acquisition", "tracking"]
        fsm = sadf.fsm
        assert fsm.initial == "acquisition"
        assert fsm.has_zero_delay_self_loop("acquisition")
        assert fsm.has_zero_delay_self_loop("tracking")
        assert fsm.transition("acquisition", "tracking").delay == 4
        assert fsm.transition("tracking", "acquisition").delay == 2

    def test_worst_case_at_uniform_16(self):
        capacities = {name: 16 for name in modem_modes().channel_names}
        report = worst_case_throughput(modem_modes(), capacities, "out")
        assert report.worst_case == Fraction(32, 131)
        assert "switching cycle" in report.critical
        assert not report.fallback

    @pytest.mark.slow
    def test_all_scenario_front(self):
        result = explore_design_space(modem_modes(), "out")
        assert result.complete
        assert [(p.size, p.throughput) for p in result.front] == [
            (49, Fraction(32, 221)),
            (50, Fraction(32, 191)),
            (51, Fraction(32, 161)),
            (56, Fraction(32, 131)),
        ]
        assert result.max_throughput == Fraction(32, 131)


class TestH263Frames:
    def test_structure(self):
        sadf = h263_frames()
        assert sadf.actor_names == ["vld", "iq", "idct", "mc"]
        assert sadf.scenario_names == ["i", "p"]
        assert not sadf.fsm.transition("p", "p").delay
        assert sadf.fsm.transition("i", "i") is None  # no back-to-back I

    def test_burst_sizes_validated(self):
        with pytest.raises(ValueError, match="i_blocks > p_blocks"):
            h263_frames(i_blocks=2, p_blocks=2)
        custom = h263_frames(i_blocks=6, p_blocks=3)
        assert custom.scenarios["i"].productions["h1"] == 6
        assert custom.scenario_repetitions("p")["vld"] == 1

    def test_all_scenario_front(self):
        result = explore_design_space(h263_frames(), "mc")
        assert result.complete
        assert [(p.size, p.throughput) for p in result.front] == [
            (9, Fraction(1, 13)),
            (10, Fraction(1, 11)),
        ]
