"""The consistent-by-construction random graph generator."""

import random

from repro.analysis.consistency import is_consistent
from repro.analysis.deadlock import is_deadlock_free
from repro.gallery.random_graphs import random_consistent_graph


def test_generated_graphs_are_consistent(rng):
    for _ in range(25):
        assert is_consistent(random_consistent_graph(rng))


def test_generated_graphs_are_deadlock_free(rng):
    for _ in range(25):
        assert is_deadlock_free(random_consistent_graph(rng))


def test_size_limits_respected(rng):
    for _ in range(10):
        graph = random_consistent_graph(rng, max_actors=4, max_execution_time=2)
        assert 2 <= graph.num_actors <= 4
        assert all(a.execution_time <= 2 for a in graph.actors.values())


def test_chain_keeps_graph_connected(rng):
    from repro.graph.properties import is_weakly_connected

    for _ in range(10):
        assert is_weakly_connected(random_consistent_graph(rng))


def test_deterministic_for_fixed_seed():
    first = random_consistent_graph(random.Random(7))
    second = random_consistent_graph(random.Random(7))
    assert first.describe().split("\n")[1:] == second.describe().split("\n")[1:]
