"""The paper's own example graphs reproduce every quoted number."""

from fractions import Fraction

from repro.analysis.repetitions import repetition_vector
from repro.analysis.throughput import max_throughput, throughput
from repro.buffers.bounds import lower_bound_distribution
from repro.buffers.explorer import explore_design_space


class TestFig1:
    """Sec. 2-8 quotes for the running example."""

    def test_shape(self, fig1):
        assert fig1.num_actors == 3
        assert fig1.num_channels == 2
        assert [fig1.actors[a].execution_time for a in "abc"] == [1, 2, 2]

    def test_repetition_vector(self, fig1):
        assert repetition_vector(fig1) == {"a": 3, "b": 2, "c": 1}

    def test_distribution_4_2_gives_one_seventh(self, fig1):
        assert throughput(fig1, {"alpha": 4, "beta": 2}, "c") == Fraction(1, 7)

    def test_increasing_alpha_to_six_gives_one_sixth(self, fig1):
        assert throughput(fig1, {"alpha": 6, "beta": 2}, "c") == Fraction(1, 6)

    def test_four_two_is_smallest_positive(self, fig1):
        front = explore_design_space(fig1, "c").front
        assert front.min_positive.size == 6
        assert {"alpha": 4, "beta": 2} in [dict(w) for w in front.min_positive.witnesses]

    def test_max_throughput_quarter_at_size_ten(self, fig1):
        front = explore_design_space(fig1, "c").front
        top = front.max_throughput_point
        assert top.throughput == Fraction(1, 4)
        assert top.size == 10
        assert max_throughput(fig1, "c") == Fraction(1, 4)

    def test_five_two_is_not_minimal(self, fig1):
        # (5,2) has the same throughput as the smaller (4,2).
        assert throughput(fig1, {"alpha": 5, "beta": 2}, "c") == Fraction(1, 7)

    def test_lower_bounds_match_section_8(self, fig1):
        assert dict(lower_bound_distribution(fig1)) == {"alpha": 4, "beta": 2}


class TestFig6:
    """Reconstruction: non-unique minimal storage distributions."""

    def test_shape(self, fig6):
        assert fig6.num_actors == 4
        assert fig6.num_channels == 4

    def test_minimal_distributions_not_unique(self, fig6):
        """Sec. 8: "minimal storage distributions for a certain
        throughput are not unique" — some Pareto point carries two
        distinct same-size witnesses."""
        result = explore_design_space(
            fig6, "d", strategy="exhaustive", collect_all_witnesses=True
        )
        multi = [point for point in result.front if len(point.witnesses) >= 2]
        assert multi, "expected a Pareto point with several minimal distributions"
        point = multi[0]
        vectors = {w.vector(fig6) for w in point.witnesses}
        assert (2, 2, 2, 1) in vectors
        assert (2, 1, 2, 2) in vectors

    def test_positive_throughput_achievable(self, fig6):
        assert max_throughput(fig6, "d") > 0
