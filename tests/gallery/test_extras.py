"""Tests for the extra (non-paper) gallery workloads."""

from repro.analysis.consistency import is_consistent
from repro.analysis.deadlock import is_deadlock_free
from repro.analysis.repetitions import repetition_vector
from repro.buffers.explorer import explore_design_space
from repro.gallery.extras import bipartite, mp3_decoder


class TestBipartite:
    def test_shape(self):
        graph = bipartite()
        assert graph.num_actors == 4
        assert graph.num_channels == 4

    def test_repetition_vector(self):
        assert repetition_vector(bipartite()) == {"a": 2, "b": 1, "c": 2, "d": 1}

    def test_live(self):
        assert is_consistent(bipartite())
        assert is_deadlock_free(bipartite())

    def test_exploration(self):
        result = explore_design_space(bipartite(), "d")
        assert len(result.front) >= 1
        assert result.max_throughput > 0
        # All four channels interact; the minimal witness uses more
        # than the trivial single-channel bounds somewhere.
        assert result.front.min_positive.size >= result.lower_bounds.size


class TestMp3Decoder:
    def test_shape(self):
        graph = mp3_decoder()
        assert graph.num_actors == 14
        assert graph.num_channels == 14

    def test_stereo_symmetry(self):
        q = repetition_vector(mp3_decoder())
        for actor in ("req", "imdct", "synth"):
            assert q[f"{actor}_l"] == q[f"{actor}_r"]

    def test_live(self):
        assert is_consistent(mp3_decoder())
        assert is_deadlock_free(mp3_decoder())

    def test_exploration_completes(self):
        result = explore_design_space(mp3_decoder())
        assert len(result.front) >= 1
        front = result.front
        assert front.max_throughput_point.throughput == result.max_throughput

    def test_registry_contains_extras(self):
        from repro.gallery.registry import gallery_graph

        assert gallery_graph("bipartite").num_actors == 4
        assert gallery_graph("mp3").num_actors == 14
