"""The BML99 reconstruction graphs (Figs. 9-11 of the paper)."""

import pytest

from repro.analysis.consistency import is_consistent
from repro.analysis.deadlock import is_deadlock_free
from repro.analysis.repetitions import repetition_vector
from repro.gallery.bml99 import modem, sample_rate_converter, satellite_receiver


class TestSampleRateConverter:
    def test_documented_shape(self, samplerate_graph):
        assert samplerate_graph.num_actors == 6
        assert samplerate_graph.num_channels == 5

    def test_cd_to_dat_ratio(self, samplerate_graph):
        q = repetition_vector(samplerate_graph)
        # 147 CD samples in, 160 DAT samples out: the 44.1->48 kHz ratio.
        assert q["cd"] == 147
        assert q["dat"] == 160

    def test_live(self, samplerate_graph):
        assert is_consistent(samplerate_graph)
        assert is_deadlock_free(samplerate_graph)


class TestModem:
    def test_documented_shape(self, modem_graph):
        assert modem_graph.num_actors == 16
        assert modem_graph.num_channels == 19

    def test_rate_change_16(self, modem_graph):
        q = repetition_vector(modem_graph)
        assert q["in"] == 16
        assert q["eqlz"] == 1
        assert q["out"] == 16

    def test_feedback_loops_tokened(self, modem_graph):
        assert modem_graph.channel("m17").initial_tokens == 1
        assert modem_graph.channel("m9").initial_tokens == 1

    def test_live(self, modem_graph):
        assert is_consistent(modem_graph)
        assert is_deadlock_free(modem_graph)


class TestSatelliteReceiver:
    def test_documented_shape(self, satellite_graph):
        assert satellite_graph.num_actors == 22
        assert satellite_graph.num_channels == 26

    def test_downsampling_parameter(self):
        graph = satellite_receiver(downsampling=3)
        q = repetition_vector(graph)
        assert q["src_i"] == 9 * q["mf_i"]

    def test_branches_symmetric(self, satellite_graph):
        q = repetition_vector(satellite_graph)
        for actor in ("src", "flt1", "dwn1", "flt2", "dwn2", "mf"):
            assert q[f"{actor}_i"] == q[f"{actor}_q"]

    def test_invalid_downsampling_rejected(self):
        with pytest.raises(ValueError):
            satellite_receiver(downsampling=1)

    def test_live(self, satellite_graph):
        assert is_consistent(satellite_graph)
        assert is_deadlock_free(satellite_graph)
