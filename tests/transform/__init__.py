"""Test package."""
