"""Unit tests for repro.transform."""

import random

from fractions import Fraction

import pytest

from repro.analysis.hsdf import to_hsdf
from repro.analysis.repetitions import repetition_vector
from repro.analysis.throughput import max_throughput
from repro.engine.executor import Executor
from repro.exceptions import GraphError
from repro.gallery.random_graphs import random_consistent_graph
from repro.transform import hsdf_as_sdf, reverse_graph, unfold
from repro.transform.hsdf_as_sdf import copy_name


class TestHsdfAsSdf:
    def test_structure(self, fig1):
        graph = hsdf_as_sdf(to_hsdf(fig1))
        assert graph.num_actors == 6  # 3 + 2 + 1 copies
        assert all(
            channel.production == channel.consumption == 1
            for channel in graph.channels.values()
        )
        assert repetition_vector(graph) == {name: 1 for name in graph.actor_names}

    def test_copy_names(self, fig1):
        graph = hsdf_as_sdf(to_hsdf(fig1))
        assert copy_name("a", 2) in graph.actors
        assert graph.actor(copy_name("b", 1)).execution_time == 2

    def test_timing_cross_validation(self, fig1):
        """The materialised HSDF runs at the original's maximal rate.

        Copy (c, 0) fires once per original iteration, i.e. at
        throughput max_throughput(c) / q(c)."""
        hsdf_graph = hsdf_as_sdf(to_hsdf(fig1))
        caps = {name: channel.initial_tokens + 2 for name, channel in hsdf_graph.channels.items()}
        measured = Executor(hsdf_graph, caps, copy_name("c", 0)).run().throughput
        assert measured == max_throughput(fig1, "c")  # q(c) == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graph_cross_validation(self, seed):
        graph = random_consistent_graph(
            random.Random(seed), max_actors=4, max_repetition=3, max_rate_factor=1
        )
        q = repetition_vector(graph)
        observe = graph.actor_names[-1]
        hsdf_graph = hsdf_as_sdf(to_hsdf(graph))
        caps = {
            name: channel.initial_tokens + 2
            for name, channel in hsdf_graph.channels.items()
        }
        measured = Executor(hsdf_graph, caps, copy_name(observe, 0)).run().throughput
        assert measured == max_throughput(graph, observe, method="mcm") / q[observe]


class TestReverse:
    def test_structure_flipped(self, fig1):
        reversed_graph = reverse_graph(fig1)
        alpha = reversed_graph.channel("alpha")
        assert (alpha.source, alpha.destination) == ("b", "a")
        assert (alpha.production, alpha.consumption) == (3, 2)

    def test_repetition_vector_preserved(self, fig1):
        assert repetition_vector(reverse_graph(fig1)) == repetition_vector(fig1)

    @pytest.mark.parametrize("seed", range(8))
    def test_consistency_preserved_on_random_graphs(self, seed):
        graph = random_consistent_graph(random.Random(seed))
        assert repetition_vector(reverse_graph(graph)) == repetition_vector(graph)

    def test_involution(self, fig1):
        twice = reverse_graph(reverse_graph(fig1))
        for name in fig1.channel_names:
            original = fig1.channel(name)
            restored = twice.channel(name)
            assert (original.source, original.production) == (restored.source, restored.production)


class TestUnfold:
    def test_rates_scaled(self, fig1):
        unfolded = unfold(fig1, 3)
        assert unfolded.channel("alpha").production == 6
        assert unfolded.channel("alpha").consumption == 9

    def test_repetition_vector_divides(self, fig1):
        # q = (3, 2, 1); unfolding by 6 makes all rates proportional to
        # a single iteration: q becomes (1, ...)-scaled by gcd structure.
        q_original = repetition_vector(fig1)
        q_unfolded = repetition_vector(unfold(fig1, 6))
        # Balance still holds and the vector shrank or stayed equal.
        assert sum(q_unfolded.values()) <= sum(q_original.values())

    def test_factor_one_is_identity(self, fig1):
        unfolded = unfold(fig1, 1)
        assert repetition_vector(unfolded) == repetition_vector(fig1)
        assert unfolded.channel("alpha").production == 2

    def test_invalid_factor_rejected(self, fig1):
        with pytest.raises(GraphError):
            unfold(fig1, 0)
        with pytest.raises(GraphError):
            unfold(fig1, -2)

    def test_tokens_scaled(self):
        from repro.graph.builder import GraphBuilder

        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1})
            .channel("a", "b", 1, 1, initial_tokens=2, name="c")
            .build()
        )
        assert unfold(graph, 4).channel("c").initial_tokens == 8
