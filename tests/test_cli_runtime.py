"""CLI coverage for the run-controller flags.

``--deadline`` / ``--max-probes`` budget the run (exit code 3 flags a
partial result), ``--checkpoint`` / ``--resume`` round-trip it, and
``--stats-json`` dumps the telemetry snapshot.
"""

import json

from repro.cli import main


class TestBudgetFlags:
    def test_max_probes_partial_exit_code(self, capsys):
        code = main(["gallery:example", "--observe", "c", "--max-probes", "4"])
        assert code == 3
        out = capsys.readouterr().out
        assert "INCOMPLETE" in out
        assert "probes" in out

    def test_zero_deadline_partial(self, capsys):
        code = main(["gallery:example", "--observe", "c", "--deadline", "0"])
        assert code == 3
        assert "deadline" in capsys.readouterr().out

    def test_unconstrained_run_still_exits_zero(self, capsys):
        assert main(["gallery:example", "--observe", "c"]) == 0
        assert "Pareto points: 4" in capsys.readouterr().out


class TestCheckpointFlags:
    def test_checkpoint_resume_round_trip(self, tmp_path, capsys):
        checkpoint = tmp_path / "run.ckpt.json"
        code = main(
            [
                "gallery:example",
                "--observe",
                "c",
                "--max-probes",
                "4",
                "--checkpoint",
                str(checkpoint),
            ]
        )
        assert code == 3
        assert checkpoint.exists()
        first = capsys.readouterr().out
        assert "resume checkpoint written" in first

        code = main(
            ["gallery:example", "--observe", "c", "--resume", str(checkpoint)]
        )
        assert code == 0
        resumed = capsys.readouterr().out
        assert "Pareto points: 4" in resumed
        assert "INCOMPLETE" not in resumed

    def test_resume_output_matches_uninterrupted(self, tmp_path, capsys):
        checkpoint = tmp_path / "ck.json"
        main(["gallery:example", "--observe", "c", "--max-probes", "3", "--checkpoint", str(checkpoint)])
        capsys.readouterr()
        direct_json = tmp_path / "direct.json"
        resumed_json = tmp_path / "resumed.json"
        assert main(["gallery:example", "--observe", "c", "--output-json", str(direct_json)]) == 0
        assert (
            main(
                [
                    "gallery:example",
                    "--observe",
                    "c",
                    "--resume",
                    str(checkpoint),
                    "--output-json",
                    str(resumed_json),
                ]
            )
            == 0
        )
        capsys.readouterr()
        direct = json.loads(direct_json.read_text())
        resumed = json.loads(resumed_json.read_text())
        assert resumed["pareto_front"] == direct["pareto_front"]
        assert resumed["max_throughput"] == direct["max_throughput"]

    def test_wrong_graph_checkpoint_is_a_cli_error(self, tmp_path, capsys):
        checkpoint = tmp_path / "ck.json"
        main(["gallery:example", "--observe", "c", "--max-probes", "3", "--checkpoint", str(checkpoint)])
        capsys.readouterr()
        code = main(["gallery:modem", "--resume", str(checkpoint)])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestStatsJson:
    def test_stats_json_written(self, tmp_path, capsys):
        stats = tmp_path / "stats.json"
        assert main(["gallery:example", "--observe", "c", "--stats-json", str(stats)]) == 0
        assert "telemetry snapshot written" in capsys.readouterr().out
        snapshot = json.loads(stats.read_text())
        assert snapshot["counters"]["run_finish"] == 1
        assert snapshot["counters"]["probe_start"] >= 1
        assert "probe" in snapshot["timers"]

    def test_partial_run_stats_include_budget_event(self, tmp_path, capsys):
        stats = tmp_path / "stats.json"
        main(
            [
                "gallery:example",
                "--observe",
                "c",
                "--max-probes",
                "2",
                "--stats-json",
                str(stats),
            ]
        )
        capsys.readouterr()
        snapshot = json.loads(stats.read_text())
        assert snapshot["counters"]["budget_exhausted"] == 1


class TestOutputJsonSchema:
    def test_partial_flagging_round_trips_through_json(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        main(
            [
                "gallery:example",
                "--observe",
                "c",
                "--max-probes",
                "4",
                "--output-json",
                str(target),
            ]
        )
        capsys.readouterr()
        data = json.loads(target.read_text())
        assert data["complete"] is False
        assert data["exhausted"] == "probes"

        from repro.io.frontjson import read_result_json

        result = read_result_json(target)
        assert not result.complete
        assert result.stats.evaluations == 4
