"""CLI tests for the extension flags (VCD/SVG, shared, latency, window, CSDF)."""

import json

import pytest

from repro.cli import main
from repro.csdf.graph import CSDFGraph
from repro.io.csdfjson import write_csdf_json


@pytest.fixture
def csdf_file(tmp_path):
    graph = CSDFGraph("decimator")
    graph.add_actor("src", (1,))
    graph.add_actor("decim", (2, 1))
    graph.add_actor("snk", (1,))
    graph.add_channel("src", "decim", (1,), (1, 1), name="a")
    graph.add_channel("decim", "snk", (1, 0), (1,), name="b")
    path = tmp_path / "decimator.json"
    write_csdf_json(graph, path)
    return path


class TestTraceExports:
    def test_vcd_export(self, tmp_path, capsys):
        target = tmp_path / "trace.vcd"
        code = main(
            ["gallery:example", "--observe", "c", "--capacities", "alpha=4,beta=2", "--vcd", str(target)]
        )
        assert code == 0
        text = target.read_text()
        assert "$enddefinitions $end" in text
        assert "busy_c" in text
        assert "VCD trace written" in capsys.readouterr().out

    def test_svg_export(self, tmp_path, capsys):
        target = tmp_path / "gantt.svg"
        code = main(
            ["gallery:example", "--observe", "c", "--capacities", "alpha=4,beta=2", "--svg", str(target)]
        )
        assert code == 0
        assert target.read_text().startswith("<svg")


class TestSharedFlag:
    def test_with_capacities(self, capsys):
        code = main(
            ["gallery:example", "--observe", "c", "--capacities", "alpha=4,beta=2", "--shared"]
        )
        assert code == 0
        assert "shared-memory requirement" in capsys.readouterr().out

    def test_with_exploration(self, capsys):
        code = main(["gallery:example", "--observe", "c", "--shared"])
        assert code == 0
        out = capsys.readouterr().out
        assert "shared-memory requirement per Pareto point" in out
        assert "size 6:" in out


class TestLatencyFlag:
    def test_latency_report(self, capsys):
        code = main(
            [
                "gallery:example",
                "--observe",
                "c",
                "--capacities",
                "alpha=4,beta=2",
                "--latency",
                "a:c",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "latency a -> c" in out
        assert "initial 9" in out


class TestThroughputWindow:
    def test_min_throughput(self, capsys):
        code = main(["gallery:example", "--observe", "c", "--min-throughput", "1/6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Pareto points: 3" in out

    def test_max_throughput(self, capsys):
        code = main(["gallery:example", "--observe", "c", "--max-throughput", "1/6"])
        assert code == 0
        assert "Pareto points: 2" in capsys.readouterr().out

    def test_invalid_window(self, capsys):
        code = main(
            ["gallery:example", "--observe", "c", "--min-throughput", "1/4", "--max-throughput", "1/7"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestCsdfMode:
    def test_explore(self, csdf_file, capsys):
        code = main([str(csdf_file), "--csdf", "--observe", "snk", "--chart"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CSDF design space" in out
        assert "maximal throughput: 1/3" in out
        assert "distribution size" in out  # chart rendered

    def test_evaluate_distribution(self, csdf_file, capsys):
        code = main([str(csdf_file), "--csdf", "--observe", "snk", "--capacities", "a=2,b=1"])
        assert code == 0
        assert "throughput of 'snk': 1/3" in capsys.readouterr().out

    def test_malformed_csdf_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"actors": []}))
        assert main([str(path), "--csdf"]) == 1
        assert "error" in capsys.readouterr().err
