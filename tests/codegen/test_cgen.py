"""Unit tests for repro.codegen.cgen — Fig.-8-style C output."""

from repro.codegen.cgen import generate_c


def test_macros_match_figure_8(fig1):
    source = generate_c(fig1, "c")
    for macro in ("CH(c)", "CHECK_TOKENS", "CHECK_SPACE", "CONSUME", "PRODUCE", "ACT_CLK", "LOWER_CLK"):
        assert macro in source


def test_actor_start_conditions(fig1):
    source = generate_c(fig1, "c")
    # a: only space on alpha (channel 0, rate 2).
    assert "if (ACT_CLK(0) == 0 && CHECK_SPACE(0,2)) { ACT_CLK(0) = 1; }" in source
    # b: tokens on alpha (3) and space on beta (channel 1, rate 1).
    assert "if (ACT_CLK(1) == 0 && CHECK_TOKENS(0,3) && CHECK_SPACE(1,1)) { ACT_CLK(1) = 2; }" in source
    # c: tokens on beta (2).
    assert "if (ACT_CLK(2) == 0 && CHECK_TOKENS(1,2)) { ACT_CLK(2) = 2; }" in source


def test_actor_end_effects(fig1):
    source = generate_c(fig1, "c")
    assert "if (ACT_CLK(0) == 1) { PRODUCE(0,2); }" in source
    assert "if (ACT_CLK(1) == 1) { CONSUME(0,3); PRODUCE(1,1); }" in source
    assert "CONSUME(1,2); if (storeState(sdfState)) return 1; sdfState.dist = 0;" in source


def test_observed_actor_stores_state(fig1):
    source = generate_c(fig1, "c")
    assert source.count("storeState") == 1
    # Observing a different actor moves the store call.
    source_b = generate_c(fig1, "b")
    assert "PRODUCE(1,1); if (storeState" in source_b


def test_state_struct_sizes(fig1):
    source = generate_c(fig1, "c")
    assert "int act_clk[3];" in source
    assert "int ch[2];" in source
    assert "static int sz[2];" in source


def test_braces_balanced(fig1):
    source = generate_c(fig1, "c")
    assert source.count("{") == source.count("}")
