"""Unit tests for repro.codegen.cgen — Fig.-8-style C output."""

import subprocess
from pathlib import Path

import pytest

from repro.codegen.cgen import generate_c

GOLDEN = Path(__file__).parent / "golden" / "fig1_observe_c.c"


def test_macros_match_figure_8(fig1):
    source = generate_c(fig1, "c")
    for macro in ("CH(c)", "CHECK_TOKENS", "CHECK_SPACE", "CONSUME", "PRODUCE", "ACT_CLK", "LOWER_CLK"):
        assert macro in source


def test_actor_start_conditions(fig1):
    source = generate_c(fig1, "c")
    # a: only space on alpha (channel 0, rate 2).
    assert "if (ACT_CLK(0) == 0 && CHECK_SPACE(0,2)) { ACT_CLK(0) = 1; }" in source
    # b: tokens on alpha (3) and space on beta (channel 1, rate 1).
    assert "if (ACT_CLK(1) == 0 && CHECK_TOKENS(0,3) && CHECK_SPACE(1,1)) { ACT_CLK(1) = 2; }" in source
    # c: tokens on beta (2).
    assert "if (ACT_CLK(2) == 0 && CHECK_TOKENS(1,2)) { ACT_CLK(2) = 2; }" in source


def test_actor_end_effects(fig1):
    source = generate_c(fig1, "c")
    assert "if (ACT_CLK(0) == 1) { PRODUCE(0,2); }" in source
    assert "if (ACT_CLK(1) == 1) { CONSUME(0,3); PRODUCE(1,1); }" in source
    assert "CONSUME(1,2); if (storeState(sdfState)) return 1; sdfState.dist = 0;" in source


def test_observed_actor_stores_state(fig1):
    source = generate_c(fig1, "c")
    # Exactly one call site (the definition itself doesn't count).
    assert source.count("if (storeState(sdfState))") == 1
    # Observing a different actor moves the store call.
    source_b = generate_c(fig1, "b")
    assert "PRODUCE(1,1); if (storeState" in source_b


def test_state_struct_sizes(fig1):
    source = generate_c(fig1, "c")
    assert "int act_clk[3];" in source
    assert "int ch[2];" in source
    assert "static int sz[2];" in source


def test_braces_balanced(fig1):
    source = generate_c(fig1, "c")
    assert source.count("{") == source.count("}")


def test_matches_golden_file(fig1):
    """The fig-1 listing is pinned byte-for-byte.

    Regenerate deliberately after a codegen change::

        PYTHONPATH=src python -c "
        from pathlib import Path
        from repro.codegen.cgen import generate_c
        from repro.gallery import fig1_example
        Path('tests/codegen/golden/fig1_observe_c.c').write_text(
            generate_c(fig1_example(), 'c'))"
    """
    assert generate_c(fig1, "c") == GOLDEN.read_text(encoding="utf-8")


def test_generated_c_compiles_and_runs(fig1, tmp_path):
    """The standalone listing builds with the platform cc and reports
    the known fig-1 result at capacities alpha=4, beta=2."""
    from repro.engine import ccore

    compiler, reason = ccore.compiler_probe()
    if compiler is None:
        pytest.skip(f"no C compiler: {reason}")
    source = tmp_path / "fig1.c"
    binary = tmp_path / "fig1"
    source.write_text(generate_c(fig1, "c"), encoding="utf-8")
    subprocess.run([compiler, "-O1", "-o", str(binary), str(source)], check=True)
    run = subprocess.run(
        [str(binary), "4", "2"], capture_output=True, text=True, check=True
    )
    # Exact fig-1 throughput at the minimal deadlock-free distribution.
    assert "throughput 1/7" in run.stdout

    deadlock = subprocess.run(
        [str(binary), "1", "1"], capture_output=True, text=True, check=True
    )
    assert "deadlock" in deadlock.stdout
