"""Unit tests for repro.codegen.pygen — the runnable buffy output."""

from fractions import Fraction

import pytest

from repro.codegen.pygen import generate_python, load_generated
from repro.engine.executor import Executor
from repro.exceptions import GraphError
from repro.gallery import fig6_example
from repro.graph.builder import GraphBuilder


@pytest.fixture(scope="module")
def generated_fig1():
    from repro.gallery import fig1_example

    return load_generated(generate_python(fig1_example(), "c"), "gen_fig1")


class TestGeneratedModule:
    def test_metadata_constants(self, generated_fig1):
        assert generated_fig1.GRAPH_NAME == "example"
        assert generated_fig1.ACTOR_NAMES == ("a", "b", "c")
        assert generated_fig1.CHANNEL_NAMES == ("alpha", "beta")
        assert generated_fig1.OBSERVE == "c"
        assert generated_fig1.EXECUTION_TIMES == (1, 2, 2)
        assert generated_fig1.LOWER_BOUNDS == (4, 2)
        assert generated_fig1.UPPER_BOUNDS == (12, 4)

    def test_paper_numbers(self, generated_fig1):
        assert generated_fig1.exec_sdf_graph((4, 2)) == Fraction(1, 7)
        assert generated_fig1.exec_sdf_graph((6, 2)) == Fraction(1, 6)
        assert generated_fig1.exec_sdf_graph((3, 2)) == 0

    def test_explore_matches_library_front(self, generated_fig1, fig1):
        from repro.buffers.explorer import explore_design_space

        generated = [(size, thr) for size, thr, _w in generated_fig1.explore()]
        library = [(p.size, p.throughput) for p in explore_design_space(fig1, "c").front]
        assert generated == library

    def test_matches_engine_on_box_sample(self, generated_fig1, fig1):
        for alpha in range(4, 13, 2):
            for beta in range(2, 5):
                expected = Executor(fig1, {"alpha": alpha, "beta": beta}, "c").run().throughput
                assert generated_fig1.exec_sdf_graph((alpha, beta)) == expected


class TestGeneratorInput:
    def test_initial_tokens_supported(self):
        graph = (
            GraphBuilder("loop")
            .actors({"a": 2, "b": 3})
            .channel("a", "b", name="f")
            .channel("b", "a", initial_tokens=1, name="r")
            .build()
        )
        module = load_generated(generate_python(graph, "b"), "gen_loop")
        expected = Executor(graph, {"f": 1, "r": 1}, "b").run().throughput
        assert module.exec_sdf_graph((1, 1)) == expected

    def test_fig6_generated(self):
        graph = fig6_example()
        module = load_generated(generate_python(graph, "d"), "gen_fig6")
        caps = tuple(2 for _ in graph.channel_names)
        expected = Executor(graph, dict(zip(graph.channel_names, caps)), "d").run().throughput
        assert module.exec_sdf_graph(caps) == expected

    def test_unknown_observe_rejected(self, fig1):
        with pytest.raises(GraphError, match="unknown observed"):
            generate_python(fig1, "zz")

    def test_zero_execution_time_rejected(self):
        graph = GraphBuilder().actors({"a": 0, "b": 1}).channel("a", "b").build()
        with pytest.raises(GraphError, match="positive execution times"):
            generate_python(graph, "b")

    def test_source_is_self_contained(self, fig1):
        source = generate_python(fig1, "c")
        assert "import repro" not in source
        assert "from fractions import Fraction" in source
