"""Test package."""
