/* Generated explorer for SDF graph 'example' (observing 'c').
   Style of Fig. 8 of Stuijk/Geilen/Basten, DAC 2006. */

#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define CH(c) (sdfState.ch[c])
#define CHECK_TOKENS(c,n) (CH(c) >= (n))
#define CHECK_SPACE(c,n) (sz[c] - CH(c) >= (n))
#define CONSUME(c,n) CH(c) = CH(c) - (n);
#define PRODUCE(c,n) CH(c) = CH(c) + (n);
#define ACT_CLK(a) (sdfState.act_clk[a])
#define LOWER_CLK(a) if (ACT_CLK(a) > 0) { ACT_CLK(a) = ACT_CLK(a) - 1; }

static int sz[2];  /* storage distribution */

typedef struct State {
    int act_clk[3];
    int ch[2];
    int dist;
} State;

static State sdfState;

/* The paper's figure assumes a framework-provided storeState();
   this self-contained version implements it as a growable
   visited-state store with linear lookup.  Returning 1 closes
   the periodic phase (state recurrence). */
#define MAX_STATES 65536
static State stored[MAX_STATES];
static int storedCount = 0;
static int cycleStart = -1;

static int storeState(State s) {
    for (int i = 0; i < storedCount; i++) {
        if (memcmp(&stored[i], &s, sizeof(State)) == 0) { cycleStart = i; return 1; }
    }
    if (storedCount < MAX_STATES) { stored[storedCount] = s; storedCount = storedCount + 1; }
    return 0;
}

int execSDFgraph() {
    while (1) {
        LOWER_CLK(0); LOWER_CLK(1); LOWER_CLK(2);
        sdfState.dist = sdfState.dist + 1;

        if (ACT_CLK(0) == 0 && CHECK_SPACE(0,2)) { ACT_CLK(0) = 1; }  /* start a */
        if (ACT_CLK(1) == 0 && CHECK_TOKENS(0,3) && CHECK_SPACE(1,1)) { ACT_CLK(1) = 2; }  /* start b */
        if (ACT_CLK(2) == 0 && CHECK_TOKENS(1,2)) { ACT_CLK(2) = 2; }  /* start c */

        if (ACT_CLK(0) == 1) { PRODUCE(0,2); }  /* end a */
        if (ACT_CLK(1) == 1) { CONSUME(0,3); PRODUCE(1,1); }  /* end b */
        if (ACT_CLK(2) == 1) { CONSUME(1,2); if (storeState(sdfState)) return 1; sdfState.dist = 0; }  /* end c */

        if (ACT_CLK(0) == 0 && ACT_CLK(1) == 0 && ACT_CLK(2) == 0) { return 0; }  /* deadlock: nothing running or enabled */
    }
}

int main(int argc, char **argv) {
    for (int c = 0; c < 2; c++) {
        sz[c] = (c + 1 < argc) ? atoi(argv[c + 1]) : (1 << 30);
    }
    memset(&sdfState, 0, sizeof(State));
    if (execSDFgraph()) {
        int firings = storedCount - cycleStart;
        int duration = sdfState.dist;
        for (int i = cycleStart + 1; i < storedCount; i++) { duration += stored[i].dist; }
        printf("throughput %d/%d (%d states)\n", firings, duration, storedCount);
    } else {
        printf("deadlock\n");
    }
    return 0;
}
