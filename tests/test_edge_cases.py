"""Cross-cutting edge-case tests collected from review of the modules."""

from fractions import Fraction

import pytest

from repro.codegen.pygen import generate_python, load_generated
from repro.csdf.executor import CSDFExecutor
from repro.csdf.graph import CSDFGraph
from repro.graph.builder import GraphBuilder
from repro.io.sdfxml import read_xml_string
from repro.io.vcd import schedule_to_vcd


class TestXmlEdgeCases:
    def test_initial_tokens_attribute_roundtrip(self):
        text = """
        <sdf3 type="sdf">
          <applicationGraph name="g">
            <sdf name="g" type="g">
              <actor name="a" type="a"><port name="o" type="out" rate="1"/></actor>
              <actor name="b" type="b"><port name="i" type="in" rate="1"/></actor>
              <channel name="c" srcActor="a" srcPort="o" dstActor="b" dstPort="i"
                       initialTokens="7"/>
            </sdf>
          </applicationGraph>
        </sdf3>
        """
        graph = read_xml_string(text)
        assert graph.channel("c").initial_tokens == 7

    def test_first_processor_execution_time_wins(self):
        text = """
        <sdf3 type="sdf">
          <applicationGraph name="g">
            <sdf name="g" type="g">
              <actor name="a" type="a"/>
            </sdf>
            <sdfProperties>
              <actorProperties actor="a">
                <processor type="arm" default="true"><executionTime time="5"/></processor>
              </actorProperties>
            </sdfProperties>
          </applicationGraph>
        </sdf3>
        """
        assert read_xml_string(text).actor("a").execution_time == 5


class TestGeneratedExplorerEdgeCases:
    def test_explore_respects_max_size(self, fig1):
        module = load_generated(generate_python(fig1, "c"), "gen_edge")
        points = module.explore(max_size=8)
        assert [size for size, _thr, _w in points] == [6, 8]

    def test_generated_deadlock_detection(self, fig1):
        module = load_generated(generate_python(fig1, "c"), "gen_edge2")
        assert module.exec_sdf_graph((3, 2)) == Fraction(0)


class TestCsdfScheduleTooling:
    def test_csdf_schedule_exports_to_vcd(self):
        graph = CSDFGraph("two")
        graph.add_actor("a", (1, 2))
        graph.add_actor("b", (1,))
        graph.add_channel("a", "b", (1, 0), (1,), name="c")
        result = CSDFExecutor(graph, {"c": 1}, "b", record_schedule=True).run()
        vcd = schedule_to_vcd(result.schedule)
        assert "busy_a" in vcd and "busy_b" in vcd
        assert vcd.count("$var wire") == 2

    def test_csdf_zero_execution_phase(self):
        graph = CSDFGraph("zp")
        graph.add_actor("a", (0, 2))
        graph.add_actor("b", (1,))
        graph.add_channel("a", "b", (1, 1), (1,), name="c")
        result = CSDFExecutor(graph, {"c": 2}, "b").run()
        # One phase cycle (0 + 2 steps) delivers 2 tokens; capacity 2
        # lets the zero-time phase overlap, giving 2 firings of b per
        # 3 steps in steady state.
        assert result.throughput == Fraction(2, 3)


class TestQuantizedSearchEdges:
    def test_grid_collapse(self, fig1):
        """When low and high quantise to the same level, no probe runs."""
        from repro.buffers.bounds import lower_bound_distribution, upper_bound_distribution
        from repro.buffers.search import SizeSearch, ThroughputEvaluator

        evaluator = ThroughputEvaluator(fig1, "c")
        search = SizeSearch(
            fig1,
            "c",
            lower_bound_distribution(fig1),
            upper_bound_distribution(fig1),
            evaluator,
        )
        probe = search.quantized_max_for_size(6, Fraction(1, 7), Fraction(1, 4), Fraction(1))
        assert probe.throughput == Fraction(1, 7)
        assert evaluator.stats.threshold_scans == 0


class TestBuilderVsDirectEquivalence:
    def test_builder_and_direct_graphs_behave_identically(self):
        from repro.engine.executor import execute
        from repro.graph.graph import SDFGraph

        built = (
            GraphBuilder("g")
            .actors({"a": 1, "b": 2})
            .channel("a", "b", 2, 3, name="c")
            .build()
        )
        direct = SDFGraph("g")
        direct.add_actor("a", 1)
        direct.add_actor("b", 2)
        direct.add_channel("a", "b", 2, 3, name="c")
        assert (
            execute(built, {"c": 5}, "b").throughput
            == execute(direct, {"c": 5}, "b").throughput
        )
