"""Property tests for the probe-avoidance engine (PR 5).

Invariants:

* oracle intervals always bracket the simulator's exact throughput
  (monotonicity makes every derived bound sound);
* the bounds oracle and speculative probing are pure accelerations —
  fronts, witnesses and max throughput are bit-identical whether they
  are on or off, serial or parallel;
* checkpoint round-trips preserve that identity with the oracle on.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.buffers.bounds import lower_bound_distribution, upper_bound_distribution
from repro.buffers.enumerate import distributions_of_size
from repro.buffers.evalcache import EvaluationService
from repro.buffers.explorer import explore_design_space
from repro.engine.executor import Executor
from repro.gallery.random_graphs import random_consistent_graph
from repro.runtime.config import ExplorationConfig

seeds = st.integers(min_value=0, max_value=10**9)


def small_graph(seed):
    return random_consistent_graph(
        random.Random(seed), max_actors=4, max_repetition=3, max_rate_factor=1
    )


def fingerprint(result):
    """Everything the oracle must not change: the front (sizes,
    throughputs, witnesses), its top, and the bound box."""
    return (
        tuple(result.front),
        result.max_throughput,
        result.lower_bounds,
        result.upper_bounds,
    )


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_oracle_intervals_bracket_the_simulator(seed):
    graph = small_graph(seed)
    service = EvaluationService(graph, None, config=ExplorationConfig(bounds=True))
    lower = lower_bound_distribution(graph)
    upper = upper_bound_distribution(graph)
    box = []
    for size in range(lower.size, upper.size + 1):
        box.extend(distributions_of_size(graph.channel_names, size, lower, upper))
        if len(box) >= 120:  # cap the ground-truth work per example
            break
    box = box[:120]
    # Seed the oracle with a deterministic subset, then check every
    # box member's bracket against ground truth.
    for distribution in box[::3]:
        service(distribution)
    oracle = service._oracle
    for distribution in box:
        vector = tuple(distribution[name] for name in graph.channel_names)
        low, high = oracle.interval(vector)
        truth = Executor(graph, distribution).run().throughput
        assert low <= truth
        assert high is None or truth <= high


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_bounds_oracle_preserves_fronts_everywhere(seed):
    # Per-strategy on/off identity: each strategy keeps its own exact
    # answer (strategies may legitimately differ from one another in
    # which tied witnesses they collect at the stop throughput).
    graph = small_graph(seed)
    for strategy in ("dependency", "divide", "exhaustive"):
        baseline = explore_design_space(
            graph, strategy=strategy, config=ExplorationConfig()
        )
        accelerated = explore_design_space(
            graph, strategy=strategy, config=ExplorationConfig(bounds=True)
        )
        assert fingerprint(accelerated) == fingerprint(baseline)


@given(seeds)
@settings(max_examples=8, deadline=None)
def test_speculation_with_workers_preserves_fronts(seed):
    graph = small_graph(seed)
    baseline = explore_design_space(graph, strategy="divide", config=ExplorationConfig())
    parallel = explore_design_space(
        graph,
        strategy="divide",
        config=ExplorationConfig(workers=2, bounds=True, speculate=True),
    )
    assert fingerprint(parallel) == fingerprint(baseline)


@given(seeds)
@settings(max_examples=10, deadline=None)
def test_checkpoint_round_trip_with_bounds_is_identical(seed):
    graph = small_graph(seed)
    config = ExplorationConfig(bounds=True)
    cold = EvaluationService(graph, None, config=config)
    direct = explore_design_space(
        graph, strategy="divide", config=ExplorationConfig(evaluator=cold)
    )
    state = cold.export_state()

    warm = EvaluationService(graph, None, config=config)
    warm.restore_state(state)
    resumed = explore_design_space(
        graph, strategy="divide", config=ExplorationConfig(evaluator=warm)
    )
    assert fingerprint(resumed) == fingerprint(direct)
    # Everything was memoised (counters restore too): the resumed run
    # simulates nothing beyond the restored tally.
    assert warm.stats.evaluations == cold.stats.evaluations
