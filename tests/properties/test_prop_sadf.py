"""Property tests: the degenerate SADF path is bit-identical to SDF.

A single-scenario SADF graph with a zero-delay self-loop FSM *is* an
SDF graph; :func:`repro.sadf.explorer.explore_design_space` promises
to reproduce the plain SDF exploration on such graphs exactly —
fronts, witness distributions, max throughput and probe counts.  These
tests pin that promise on random consistent graphs and on the gallery
workloads, plus the sadfjson round-trip and the multi-scenario
checkpoint replay property.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.buffers.explorer import explore_design_space as explore_sdf
from repro.gallery import h263_frames, modem
from repro.gallery.paper import fig1_example
from repro.gallery.bml99 import sample_rate_converter
from repro.gallery.random_graphs import random_consistent_graph
from repro.io.sadfjson import sadf_from_dict, sadf_to_dict
from repro.runtime.budget import Budget
from repro.runtime.config import ExplorationConfig
from repro.sadf.explorer import explore_design_space as explore_sadf
from repro.sadf.graph import from_sdf

seeds = st.integers(min_value=0, max_value=10**9)


def identical(sdf_result, sadf_result):
    assert sadf_result.front.to_dicts() == sdf_result.front.to_dicts()
    assert sadf_result.max_throughput == sdf_result.max_throughput
    assert sadf_result.stats.evaluations == sdf_result.stats.evaluations
    assert sadf_result.lower_bounds == sdf_result.lower_bounds
    assert sadf_result.complete and sdf_result.complete


@given(seeds)
@settings(max_examples=15, deadline=None)
def test_degenerate_matches_sdf_on_random_graphs(seed):
    graph = random_consistent_graph(random.Random(seed))
    observe = graph.actor_names[-1]
    identical(
        explore_sdf(graph, observe),
        explore_sadf(from_sdf(graph), observe),
    )


@given(seeds)
@settings(max_examples=15, deadline=None)
def test_lifted_roundtrip_preserves_degenerate_front(seed):
    graph = random_consistent_graph(random.Random(seed))
    observe = graph.actor_names[-1]
    lifted = sadf_from_dict(sadf_to_dict(from_sdf(graph)))
    identical(explore_sdf(graph, observe), explore_sadf(lifted, observe))


@pytest.mark.parametrize(
    "factory,observe",
    [(fig1_example, "c"), (sample_rate_converter, None)],
)
def test_degenerate_matches_sdf_on_gallery(factory, observe):
    graph = factory()
    identical(
        explore_sdf(graph, observe),
        explore_sadf(from_sdf(graph), observe),
    )


@pytest.mark.slow
def test_degenerate_matches_sdf_on_modem():
    graph = modem()
    identical(explore_sdf(graph), explore_sadf(from_sdf(graph)))


@given(st.integers(min_value=1, max_value=8))
@settings(max_examples=8, deadline=None)
def test_checkpoint_replay_is_exact(probes):
    """Interrupting a multi-scenario sweep after any number of probes
    and resuming always lands on the uninterrupted front."""
    full = explore_sadf(h263_frames(), "mc")
    partial = explore_sadf(
        h263_frames(), "mc",
        config=ExplorationConfig(budget=Budget(max_probes=probes)),
    )
    if partial.complete:
        assert partial.front.to_dicts() == full.front.to_dicts()
        return
    resumed = explore_sadf(h263_frames(), "mc", resume=partial.resume_token)
    assert resumed.complete
    assert resumed.front.to_dicts() == full.front.to_dicts()
    assert resumed.max_throughput == full.max_throughput
