"""Property tests: fast kernel is bit-for-bit equivalent to the reference.

Random consistent graphs are executed through both engines and the full
:class:`ExecutionResult` dataclasses compared — with slack above the
lower-bound distribution, with deadlock-prone tightened capacities, and
with randomly zeroed execution times (where both engines must also
agree on raising the per-instant firing guard).
"""

import random
from unittest import mock

from hypothesis import given, settings, strategies as st

import repro.engine.executor as executor_module
from repro.buffers.bounds import lower_bound_distribution
from repro.engine.executor import Executor
from repro.engine.fastcore import FastKernel
from repro.exceptions import EngineError
from repro.gallery.random_graphs import random_consistent_graph

seeds = st.integers(min_value=0, max_value=10**9)


def graph_and_caps(seed, slack_seed, tight=False):
    rng = random.Random(seed)
    graph = random_consistent_graph(rng)
    slack_rng = random.Random(slack_seed)
    lower = lower_bound_distribution(graph)
    if tight:
        caps = {
            name: max(
                graph.channels[name].initial_tokens,
                lower[name] - slack_rng.randint(0, 2),
            )
            for name in graph.channel_names
        }
    else:
        caps = {name: lower[name] + slack_rng.randint(0, 4) for name in graph.channel_names}
    return graph, caps


@given(seeds, seeds)
@settings(max_examples=60, deadline=None)
def test_fast_matches_reference_with_slack(seed, slack_seed):
    graph, caps = graph_and_caps(seed, slack_seed)
    assert FastKernel(graph).run(caps) == Executor(graph, caps).run()


@given(seeds, seeds)
@settings(max_examples=40, deadline=None)
def test_fast_matches_reference_on_tight_capacities(seed, slack_seed):
    graph, caps = graph_and_caps(seed, slack_seed, tight=True)
    assert FastKernel(graph).run(caps) == Executor(graph, caps).run()


@given(seeds, seeds)
@settings(max_examples=40, deadline=None)
def test_fast_matches_reference_under_observe_choice(seed, slack_seed):
    graph, caps = graph_and_caps(seed, slack_seed)
    observe = graph.actor_names[random.Random(seed ^ slack_seed).randrange(len(graph.actor_names))]
    assert FastKernel(graph, observe).run(caps) == Executor(graph, caps, observe).run()


@given(seeds, seeds)
@settings(max_examples=40, deadline=None)
def test_fast_matches_reference_with_zero_execution_times(seed, slack_seed):
    """Zero-duration firings cascade within one instant; both engines
    must produce identical results — or raise the identical
    per-instant firing guard when the cascade diverges."""
    graph, caps = graph_and_caps(seed, slack_seed)
    zero_rng = random.Random(seed ^ 0x5EED)
    times = {
        name: 0 if zero_rng.random() < 0.4 else graph.actors[name].execution_time
        for name in graph.actor_names
    }
    graph = graph.with_execution_times(times)

    def outcome(run):
        try:
            return run()
        except EngineError as error:
            return str(error)

    with mock.patch.object(executor_module, "_MAX_FIRINGS_PER_INSTANT", 10_000):
        reference = outcome(lambda: Executor(graph, caps).run())
        fast = outcome(lambda: FastKernel(graph).run(caps))
    assert fast == reference


@given(seeds, seeds)
@settings(max_examples=25, deadline=None)
def test_fast_respects_max_instants_like_reference(seed, slack_seed):
    graph, caps = graph_and_caps(seed, slack_seed)

    def outcome(run):
        try:
            return run()
        except EngineError as error:
            return str(error)

    reference = outcome(lambda: Executor(graph, caps, max_instants=3).run())
    fast = outcome(lambda: FastKernel(graph).run(caps, max_instants=3))
    assert fast == reference
