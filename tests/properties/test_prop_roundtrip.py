"""Property tests: serialisation round-trips preserve graphs exactly."""

import random

from hypothesis import given, settings, strategies as st

from repro.gallery.random_graphs import random_consistent_graph
from repro.io.jsonio import graph_from_dict, graph_to_dict
from repro.io.sdfxml import read_xml_string, write_xml_string

seeds = st.integers(min_value=0, max_value=10**9)


def structure(graph):
    return (
        graph.name,
        [(a.name, a.execution_time) for a in graph.actors.values()],
        [
            (c.name, c.source, c.destination, c.production, c.consumption, c.initial_tokens)
            for c in graph.channels.values()
        ],
    )


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_xml_roundtrip(seed):
    graph = random_consistent_graph(random.Random(seed))
    assert structure(read_xml_string(write_xml_string(graph))) == structure(graph)


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_json_roundtrip(seed):
    graph = random_consistent_graph(random.Random(seed))
    assert structure(graph_from_dict(graph_to_dict(graph))) == structure(graph)


@given(seeds, seeds)
@settings(max_examples=20, deadline=None)
def test_roundtrip_preserves_behaviour(seed, slack_seed):
    from repro.buffers.bounds import lower_bound_distribution
    from repro.engine.executor import Executor

    graph = random_consistent_graph(random.Random(seed))
    restored = read_xml_string(write_xml_string(graph))
    rng = random.Random(slack_seed)
    lower = lower_bound_distribution(graph)
    caps = {name: lower[name] + rng.randint(0, 3) for name in graph.channel_names}
    assert (
        Executor(graph, caps).run().throughput
        == Executor(restored, caps).run().throughput
    )


@given(seeds)
@settings(max_examples=30, deadline=None)
def test_codegen_matches_engine(seed):
    """Generated buffy explorers compute the same throughput as the
    library engine on the lower-bound distribution."""
    from repro.buffers.bounds import lower_bound_distribution
    from repro.codegen.pygen import generate_python, load_generated
    from repro.engine.executor import Executor

    graph = random_consistent_graph(random.Random(seed))
    module = load_generated(generate_python(graph), f"gen_prop_{seed}")
    lower = lower_bound_distribution(graph)
    caps_tuple = tuple(lower[name] for name in graph.channel_names)
    expected = Executor(graph, lower).run().throughput
    assert module.exec_sdf_graph(caps_tuple) == expected
