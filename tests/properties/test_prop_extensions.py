"""Property tests for the extension features.

* processor constraints never increase throughput and preserve
  determinism;
* the shared-memory metric never exceeds the distribution size and is
  monotone under capacity growth of the same schedule;
* random phase-split CSDF graphs stay consistent, and splitting phases
  never changes the balance totals.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.buffers.bounds import lower_bound_distribution
from repro.csdf.graph import CSDFGraph, from_sdf
from repro.csdf.repetitions import csdf_repetition_vector
from repro.engine.executor import Executor
from repro.gallery.random_graphs import random_consistent_graph

seeds = st.integers(min_value=0, max_value=10**9)


def graph_and_caps(seed, slack_seed):
    rng = random.Random(seed)
    graph = random_consistent_graph(rng)
    slack = random.Random(slack_seed)
    lower = lower_bound_distribution(graph)
    caps = {name: lower[name] + slack.randint(0, 4) for name in graph.channel_names}
    return graph, caps


@given(seeds, seeds)
@settings(max_examples=30, deadline=None)
def test_processor_sharing_never_speeds_up(seed, slack_seed):
    graph, caps = graph_and_caps(seed, slack_seed)
    unconstrained = Executor(graph, caps).run().throughput
    # Map every actor onto one processor: fully serialised execution.
    one_cpu = {name: "cpu" for name in graph.actor_names}
    constrained = Executor(graph, caps, processors=one_cpu).run().throughput
    assert constrained <= unconstrained


@given(seeds, seeds)
@settings(max_examples=25, deadline=None)
def test_processor_constrained_execution_deterministic(seed, slack_seed):
    graph, caps = graph_and_caps(seed, slack_seed)
    assignment = {
        name: f"p{index % 2}" for index, name in enumerate(graph.actor_names)
    }
    runs = [
        Executor(graph, caps, processors=assignment, record_schedule=True).run()
        for _ in range(2)
    ]
    assert runs[0].throughput == runs[1].throughput
    assert runs[0].schedule.events == runs[1].schedule.events


@given(seeds, seeds)
@settings(max_examples=30, deadline=None)
def test_shared_peak_never_exceeds_size(seed, slack_seed):
    graph, caps = graph_and_caps(seed, slack_seed)
    result = Executor(graph, caps, track_occupancy=True).run()
    assert result.peak_shared_tokens is not None
    assert result.peak_shared_tokens <= sum(caps.values())


@given(seeds, seeds)
@settings(max_examples=25, deadline=None)
def test_shared_peak_at_least_initial_tokens(seed, slack_seed):
    graph, caps = graph_and_caps(seed, slack_seed)
    result = Executor(graph, caps, track_occupancy=True).run()
    initial = sum(channel.initial_tokens for channel in graph.channels.values())
    assert result.peak_shared_tokens >= initial


def random_phase_split(graph, rng) -> CSDFGraph:
    """Split each actor's behaviour into random phases.

    An actor with execution time t and rate r per channel becomes a
    k-phase actor whose execution times and per-channel rates sum to
    the original values — the cyclo-static refinement of the same
    computation.
    """
    split = CSDFGraph(graph.name + "-csdf")
    phase_counts = {name: rng.randint(1, 3) for name in graph.actor_names}

    def partition(total, parts):
        cuts = sorted(rng.randint(0, total) for _ in range(parts - 1))
        values = []
        previous = 0
        for cut in cuts + [total]:
            values.append(cut - previous)
            previous = cut
        return tuple(values)

    for actor in graph.actors.values():
        split.add_actor(actor.name, partition(actor.execution_time, phase_counts[actor.name]))
    for channel in graph.channels.values():
        productions = partition(channel.production, phase_counts[channel.source])
        consumptions = partition(channel.consumption, phase_counts[channel.destination])
        split.add_channel(
            channel.source,
            channel.destination,
            productions,
            consumptions,
            channel.initial_tokens,
            name=channel.name,
        )
    return split


@given(seeds, seeds)
@settings(max_examples=30, deadline=None)
def test_phase_split_preserves_consistency(seed, split_seed):
    graph = random_consistent_graph(random.Random(seed))
    rng = random.Random(split_seed)
    try:
        split = random_phase_split(graph, rng)
    except Exception as error:  # all-zero rate partitions are rejected
        from repro.exceptions import GraphError

        assert isinstance(error, GraphError)
        return
    from repro.analysis.repetitions import repetition_vector

    assert csdf_repetition_vector(split) == repetition_vector(graph)


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_lifted_graphs_keep_throughput(seed):
    from repro.csdf.executor import CSDFExecutor

    graph, caps = graph_and_caps(seed, seed ^ 0xABCDEF)
    sdf = Executor(graph, caps).run()
    csdf = CSDFExecutor(from_sdf(graph), caps).run()
    assert csdf.throughput == sdf.throughput
