"""Differential harness for the evaluation service.

The cached/pruned/parallel :class:`~repro.buffers.evalcache
.EvaluationService` is only trustworthy if it is *exact*: every
exploration through it must return bit-identical Pareto fronts —
sizes, throughputs and witness distributions — to the plain serial
path (``workers=1`` with the cache disabled).  These tests assert that
over random consistent graphs for all three strategies, and test the
monotonicity invariant the pruning rules rest on directly.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.buffers.distribution import StorageDistribution
from repro.buffers.evalcache import EvaluationService
from repro.buffers.explorer import explore_design_space
from repro.buffers.bounds import lower_bound_distribution
from repro.engine.executor import Executor
from repro.runtime.config import ExplorationConfig
from repro.gallery.random_graphs import random_consistent_graph

seeds = st.integers(min_value=0, max_value=10**9)

STRATEGIES = ("dependency", "divide", "exhaustive")


def small_graph(seed):
    return random_consistent_graph(
        random.Random(seed), max_actors=4, max_repetition=3, max_rate_factor=1
    )


def front_fingerprint(front):
    """Everything a front asserts: sizes, throughputs AND witnesses."""
    return [(p.size, p.throughput, p.witnesses) for p in front]


@given(seeds)
@settings(max_examples=15, deadline=None)
def test_cache_is_differentially_exact(seed):
    """Cache on vs. the cache-off serial baseline, all strategies."""
    graph = small_graph(seed)
    for strategy in STRATEGIES:
        baseline = explore_design_space(graph, strategy=strategy, config=ExplorationConfig(cache=False))
        cached = explore_design_space(graph, strategy=strategy, config=ExplorationConfig(cache=True))
        assert front_fingerprint(cached.front) == front_fingerprint(baseline.front)
        # Caching and pruning may only ever save work.
        assert cached.stats.evaluations <= baseline.stats.evaluations
        assert baseline.stats.cache_hits == 0
        assert baseline.stats.prunes == 0


@given(seeds)
@settings(max_examples=6, deadline=None)
def test_parallel_is_differentially_exact(seed):
    """workers=2 (process-pool path) vs. the cache-off serial baseline."""
    graph = small_graph(seed)
    for strategy in STRATEGIES:
        baseline = explore_design_space(graph, strategy=strategy, config=ExplorationConfig(cache=False))
        parallel = explore_design_space(graph, strategy=strategy, config=ExplorationConfig(workers=2, cache=True))
        assert front_fingerprint(parallel.front) == front_fingerprint(baseline.front)
        assert parallel.stats.workers == 2


@given(seeds)
@settings(max_examples=10, deadline=None)
def test_quantized_divide_is_differentially_exact(seed):
    """The quantised binary search also survives the shared cache."""
    from fractions import Fraction

    graph = small_graph(seed)
    quantum = Fraction(1, 12)
    baseline = explore_design_space(
        graph, strategy="divide", quantum=quantum, config=ExplorationConfig(cache=False)
    )
    cached = explore_design_space(
        graph, strategy="divide", quantum=quantum, config=ExplorationConfig(cache=True)
    )
    assert front_fingerprint(cached.front) == front_fingerprint(baseline.front)


@given(seeds, seeds)
@settings(max_examples=40, deadline=None)
def test_pruning_invariant_monotone_under_dominance(seed, pick_seed):
    """The dominance short-circuit's premise, tested on comparable pairs:
    component-wise larger capacities never decrease throughput."""
    rng = random.Random(seed)
    graph = random_consistent_graph(rng)
    pick = random.Random(pick_seed)
    lower = lower_bound_distribution(graph)
    small = StorageDistribution(
        {name: lower[name] + pick.randint(0, 3) for name in graph.channel_names}
    )
    large = StorageDistribution(
        {name: small[name] + pick.randint(0, 3) for name in graph.channel_names}
    )
    assert large.dominates(small)
    thr_small = Executor(graph, small).run().throughput
    thr_large = Executor(graph, large).run().throughput
    assert thr_large >= thr_small


@given(seeds, seeds)
@settings(max_examples=25, deadline=None)
def test_service_answers_match_executor(seed, pick_seed):
    """Whatever mix of cache hits, prunes and executions answers a
    query, the answer equals a fresh executor run."""
    rng = random.Random(seed)
    graph = random_consistent_graph(
        rng, max_actors=4, max_repetition=3, max_rate_factor=1
    )
    observe = graph.actor_names[-1]
    pick = random.Random(pick_seed)
    lower = lower_bound_distribution(graph)

    from repro.analysis.throughput import max_throughput

    with EvaluationService(graph, observe, ceiling=max_throughput(graph, observe)) as service:
        for _ in range(12):
            distribution = StorageDistribution(
                {name: lower[name] + pick.randint(0, 2) for name in graph.channel_names}
            )
            expected = Executor(graph, distribution, observe).run().throughput
            assert service(distribution) == expected
