"""Property tests: all exploration strategies find the same Pareto front
(DESIGN.md invariant 7) and front invariants hold (invariant 5)."""

import random

from hypothesis import given, settings, strategies as st

from repro.buffers.explorer import explore_design_space
from repro.engine.executor import Executor
from repro.gallery.random_graphs import random_consistent_graph

seeds = st.integers(min_value=0, max_value=10**9)


def small_graph(seed):
    return random_consistent_graph(
        random.Random(seed), max_actors=4, max_repetition=3, max_rate_factor=1
    )


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_strategies_agree(seed):
    graph = small_graph(seed)
    dependency = explore_design_space(graph, strategy="dependency")
    exhaustive = explore_design_space(graph, strategy="exhaustive")
    divide = explore_design_space(graph, strategy="divide")
    assert dependency.front == exhaustive.front
    assert dependency.front == divide.front


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_front_strictly_monotone(seed):
    graph = small_graph(seed)
    front = explore_design_space(graph).front
    sizes = front.sizes()
    throughputs = front.throughputs()
    assert sizes == sorted(set(sizes))
    assert throughputs == sorted(set(throughputs))


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_witnesses_reproduce_claimed_throughput(seed):
    graph = small_graph(seed)
    result = explore_design_space(graph)
    for point in result.front:
        for witness in point.witnesses:
            assert Executor(graph, witness).run().throughput == point.throughput


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_front_tops_out_at_max_throughput(seed):
    graph = small_graph(seed)
    result = explore_design_space(graph)
    if len(result.front):
        assert result.front.max_throughput_point.throughput == result.max_throughput


@given(seeds)
@settings(max_examples=15, deadline=None)
def test_no_smaller_distribution_beats_a_pareto_point(seed):
    """Exactness spot check: exhaustively verify the first Pareto point
    is truly minimal over the whole bound box."""
    from repro.buffers.bounds import lower_bound_distribution, upper_bound_distribution
    from repro.buffers.enumerate import distributions_of_size

    graph = small_graph(seed)
    result = explore_design_space(graph)
    first = result.front.min_positive
    if first is None:
        return
    lower = lower_bound_distribution(graph)
    upper = upper_bound_distribution(graph)
    for size in range(lower.size, first.size):
        for distribution in distributions_of_size(graph.channel_names, size, lower, upper):
            assert Executor(graph, distribution).run().throughput == 0
