"""Property harness for the batched probe plane.

Three families of invariants over Hypothesis-generated graphs and
capacity waves:

* **Singles equivalence** — for every registered backend,
  ``evaluate_batch(vs)`` equals the per-vector loop over the same
  backend, and equals the reference backend.
* **Wave shape invariance** — permuting or duplicating the lanes of a
  wave permutes/duplicates the results and nothing else (lanes are
  independent; no cross-lane state may leak).
* **Batching transparency** — an :class:`EvaluationService` run with
  ``batch > 0`` leaves *exactly* the same memo cache and bounds-oracle
  contents as the classic per-probe path, with ``workers=2`` in the
  mix and across a checkpoint round-trip.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.buffers.evalcache import EvaluationService
from repro.engine.backends import backend_availability, backend_for, backend_names
from repro.gallery.random_graphs import random_consistent_graph
from repro.runtime.config import ExplorationConfig

seeds = st.integers(min_value=0, max_value=10**9)

# Only backends this host can actually run (e.g. "cc" needs a C
# compiler); the properties loop over the list inside each example.
BACKENDS = tuple(
    name
    for name in backend_names()
    if backend_availability(backend_for(name)) is None
)


def small_graph(seed):
    return random_consistent_graph(
        random.Random(seed), max_actors=4, max_repetition=3, max_rate_factor=1
    )


def random_wave(graph, seed, lanes=6, spread=3):
    """Deterministic random capacity vectors, all channels bounded."""
    rng = random.Random(seed)
    channels = sorted(graph.channel_names)
    base = {
        name: max(
            graph.channels[name].initial_tokens,
            graph.channels[name].production + graph.channels[name].consumption,
        )
        for name in channels
    }
    return [
        {name: base[name] + rng.randrange(0, spread) for name in channels}
        for _ in range(lanes)
    ]


def thin(results):
    return [(r.throughput, r.states_stored, r.deadlocked) for r in results]


@given(seeds, seeds)
@settings(max_examples=25, deadline=None)
def test_batch_equals_singles(graph_seed, wave_seed):
    """(a) evaluate_batch(vs) == [evaluate_batch([v]) for v in vs],
    and every backend equals the reference backend."""
    graph = small_graph(graph_seed)
    wave = random_wave(graph, wave_seed)
    expected = thin(backend_for("reference").evaluate_batch(graph, wave, None))
    for name in BACKENDS:
        backend = backend_for(name)
        batched = thin(backend.evaluate_batch(graph, wave, None))
        singles = [
            thin(backend.evaluate_batch(graph, [vector], None))[0] for vector in wave
        ]
        assert batched == singles, name
        assert batched == expected, name


@given(seeds, seeds, seeds)
@settings(max_examples=20, deadline=None)
def test_batch_is_order_and_duplicate_invariant(graph_seed, wave_seed, shuffle_seed):
    """(b) permuted / duplicated lanes give permuted / duplicated results."""
    graph = small_graph(graph_seed)
    wave = random_wave(graph, wave_seed)
    rng = random.Random(shuffle_seed)
    order = list(range(len(wave)))
    rng.shuffle(order)
    dup = rng.randrange(len(wave))
    shuffled = [wave[i] for i in order] + [wave[dup]]

    for name in BACKENDS:
        backend = backend_for(name)
        base = thin(backend.evaluate_batch(graph, wave, None))
        mixed = thin(backend.evaluate_batch(graph, shuffled, None))
        assert mixed[:-1] == [base[i] for i in order], name
        assert mixed[-1] == base[dup], name


def service_fingerprint(service):
    """Everything the exploration layers read back from a service."""
    memo = {
        vector: (
            record.throughput,
            record.states_stored,
            record.space_blocked,
            tuple(sorted(record.space_deficits.items()))
            if record.space_deficits is not None
            else None,
        )
        for vector, record in service._memo.items()
    }
    return memo, service._oracle.snapshot()


def drive(service, waves):
    """The access pattern of a scan: overlapping demand waves."""
    out = []
    for wave in waves:
        out.extend(service.evaluate_many(wave))
    return out


@given(seeds, seeds)
@settings(max_examples=15, deadline=None)
def test_memo_and_oracle_identical_with_batching(graph_seed, wave_seed):
    """(c) batching on/off: same results, same memo, same oracle."""
    graph = small_graph(graph_seed)
    wave = random_wave(graph, wave_seed, lanes=9)
    waves = [wave[:4], wave[2:7], wave[5:]]

    configs = {
        "classic": ExplorationConfig(bounds=True),
        "batched": ExplorationConfig(backend="batch-numpy", batch=4, bounds=True),
        "batched-pooled": ExplorationConfig(
            backend="batch-numpy", batch=4, bounds=True, workers=2
        ),
    }
    outputs = {}
    fingerprints = {}
    for label, config in configs.items():
        service = EvaluationService(graph, config=config)
        try:
            outputs[label] = drive(service, waves)
            fingerprints[label] = service_fingerprint(service)
        finally:
            service.close()
    assert outputs["batched"] == outputs["classic"]
    assert outputs["batched-pooled"] == outputs["classic"]
    assert fingerprints["batched"] == fingerprints["classic"]
    assert fingerprints["batched-pooled"] == fingerprints["classic"]


@given(seeds, seeds)
@settings(max_examples=10, deadline=None)
def test_checkpoint_roundtrip_preserves_batched_state(graph_seed, wave_seed):
    """(c) a batched service survives export/restore bit-identically.

    The restored service — itself running batched — must answer every
    earlier query from the memo and carry the batch counters forward.
    """
    graph = small_graph(graph_seed)
    wave = random_wave(graph, wave_seed, lanes=8)

    first = EvaluationService(
        graph, config=ExplorationConfig(backend="batch-numpy", batch=4, bounds=True)
    )
    try:
        answers = first.evaluate_many(wave)
        state = first.export_state()
        memo, oracle = service_fingerprint(first)
        counters = (first.stats.batch_calls, first.stats.batch_lanes)
    finally:
        first.close()

    second = EvaluationService(
        graph, config=ExplorationConfig(backend="batch-numpy", batch=4, bounds=True)
    )
    try:
        second.restore_state(state)
        assert service_fingerprint(second) == (memo, oracle)
        assert (second.stats.batch_calls, second.stats.batch_lanes) == counters
        # Every earlier answer is a cache hit now — no new waves run.
        assert second.evaluate_many(wave) == answers
        assert (second.stats.batch_calls, second.stats.batch_lanes) == counters
    finally:
        second.close()
