"""Property tests: execution engine invariants (DESIGN.md invariants 2-3)."""

import random

from hypothesis import given, settings, strategies as st

from repro.buffers.bounds import lower_bound_distribution
from repro.engine.executor import Executor
from repro.gallery.random_graphs import random_consistent_graph
from tests.util import assert_valid_schedule

seeds = st.integers(min_value=0, max_value=10**9)


def graph_and_caps(seed, slack_seed=0):
    rng = random.Random(seed)
    graph = random_consistent_graph(rng)
    slack_rng = random.Random(slack_seed)
    lower = lower_bound_distribution(graph)
    caps = {name: lower[name] + slack_rng.randint(0, 4) for name in graph.channel_names}
    return graph, caps


@given(seeds, seeds)
@settings(max_examples=40, deadline=None)
def test_execution_is_deterministic(seed, slack_seed):
    graph, caps = graph_and_caps(seed, slack_seed)
    first = Executor(graph, caps, record_schedule=True).run()
    second = Executor(graph, caps, record_schedule=True).run()
    assert first.throughput == second.throughput
    assert first.schedule.events == second.schedule.events


@given(seeds, seeds)
@settings(max_examples=40, deadline=None)
def test_tick_and_event_modes_agree(seed, slack_seed):
    graph, caps = graph_and_caps(seed, slack_seed)
    tick = Executor(graph, caps, mode="tick", record_schedule=True).run()
    event = Executor(graph, caps, mode="event", record_schedule=True).run()
    assert tick.throughput == event.throughput
    assert tick.schedule.events == event.schedule.events


@given(seeds, seeds)
@settings(max_examples=40, deadline=None)
def test_schedules_respect_sdf_semantics(seed, slack_seed):
    graph, caps = graph_and_caps(seed, slack_seed)
    result = Executor(graph, caps, record_schedule=True).run()
    assert_valid_schedule(graph, result.schedule, caps)


@given(seeds, seeds)
@settings(max_examples=40, deadline=None)
def test_periodicity_theorem_1(seed, slack_seed):
    """Every bounded execution either deadlocks or closes a cycle with
    a positive, well-defined throughput."""
    graph, caps = graph_and_caps(seed, slack_seed)
    result = Executor(graph, caps).run()
    if result.deadlocked:
        assert result.throughput == 0
    else:
        assert result.throughput > 0
        assert result.cycle_duration > 0
        assert result.firings_in_cycle > 0


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_full_state_space_has_exactly_one_cycle(seed):
    """Property 1 of the paper, on the generator's graphs."""
    graph, caps = graph_and_caps(seed, seed)
    states, cycle_start = Executor(graph, caps).explore_full_state_space(max_states=200_000)
    assert 0 <= cycle_start < len(states)
    assert len(set(states)) == len(states)


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_tokens_bounded_by_capacity_throughout(seed):
    graph, caps = graph_and_caps(seed, seed + 1)
    states, _ = Executor(graph, caps).explore_full_state_space(max_states=200_000)
    for state in states:
        for name, tokens in zip(graph.channel_names, state.tokens):
            assert 0 <= tokens <= caps[name]
