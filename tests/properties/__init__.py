"""Test package."""
