"""Property tests: HSDF/MCM agrees with state-space max throughput
(DESIGN.md invariant 8) and the [GGD02] upper bound suffices
(invariant 6)."""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis.throughput import max_throughput
from repro.buffers.bounds import upper_bound_distribution
from repro.engine.executor import Executor
from repro.gallery.random_graphs import random_consistent_graph

seeds = st.integers(min_value=0, max_value=10**9)


def small_graph(seed):
    return random_consistent_graph(
        random.Random(seed), max_actors=4, max_repetition=3, max_rate_factor=2
    )


@given(seeds)
@settings(max_examples=30, deadline=None)
def test_mcm_equals_statespace_max_throughput(seed):
    graph = small_graph(seed)
    for actor in graph.actor_names:
        assert max_throughput(graph, actor, method="mcm") == max_throughput(
            graph, actor, method="statespace"
        )


@given(seeds)
@settings(max_examples=30, deadline=None)
def test_plain_upper_bound_never_exceeds_max(seed):
    graph = small_graph(seed)
    at_upper = Executor(graph, upper_bound_distribution(graph)).run().throughput
    assert at_upper <= max_throughput(graph, method="mcm")


@given(seeds)
@settings(max_examples=30, deadline=None)
def test_verified_upper_bound_achieves_max(seed):
    from repro.buffers.bounds import verified_upper_bound_distribution

    graph = small_graph(seed)
    verified = verified_upper_bound_distribution(graph)
    assert Executor(graph, verified).run().throughput == max_throughput(graph, method="mcm")


@given(seeds)
@settings(max_examples=30, deadline=None)
def test_mcm_consistent_across_observed_actors(seed):
    """Throughputs of any two actors relate by their repetition counts."""
    from fractions import Fraction

    from repro.analysis.repetitions import repetition_vector

    graph = small_graph(seed)
    q = repetition_vector(graph)
    names = graph.actor_names
    base = max_throughput(graph, names[0], method="mcm") / q[names[0]]
    for name in names[1:]:
        assert max_throughput(graph, name, method="mcm") == base * q[name]
