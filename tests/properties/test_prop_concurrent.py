"""Property tests for the auto-concurrent engine (extension X12)."""

import random

from hypothesis import given, settings, strategies as st

from repro.buffers.bounds import lower_bound_distribution
from repro.engine.concurrent import ConcurrentExecutor
from repro.engine.executor import Executor
from repro.gallery.random_graphs import random_consistent_graph

seeds = st.integers(min_value=0, max_value=10**9)


def graph_and_caps(seed, slack_seed):
    rng = random.Random(seed)
    graph = random_consistent_graph(rng)
    slack = random.Random(slack_seed)
    lower = lower_bound_distribution(graph)
    caps = {name: lower[name] + slack.randint(0, 3) for name in graph.channel_names}
    return graph, caps


@given(seeds, seeds)
@settings(max_examples=30, deadline=None)
def test_auto_concurrency_never_slower(seed, slack_seed):
    graph, caps = graph_and_caps(seed, slack_seed)
    serialised = Executor(graph, caps).run().throughput
    concurrent = ConcurrentExecutor(graph, caps).run().throughput
    assert concurrent >= serialised


@given(seeds, seeds, seeds)
@settings(max_examples=25, deadline=None)
def test_throughput_monotone_in_capacity(seed, slack_seed, pick_seed):
    graph, caps = graph_and_caps(seed, slack_seed)
    pick = random.Random(pick_seed)
    channel = pick.choice(graph.channel_names)
    grown = dict(caps)
    grown[channel] += pick.randint(1, 3)
    before = ConcurrentExecutor(graph, caps).run().throughput
    after = ConcurrentExecutor(graph, grown).run().throughput
    assert after >= before


@given(seeds, seeds)
@settings(max_examples=25, deadline=None)
def test_tick_event_equivalence(seed, slack_seed):
    graph, caps = graph_and_caps(seed, slack_seed)
    tick = ConcurrentExecutor(graph, caps, mode="tick").run()
    event = ConcurrentExecutor(graph, caps, mode="event").run()
    assert tick.throughput == event.throughput
    assert tick.first_firing_time == event.first_firing_time


@given(seeds, seeds)
@settings(max_examples=25, deadline=None)
def test_self_loop_serialisation_equivalence(seed, slack_seed):
    """One-token self-loops reduce the concurrent engine to the
    paper's semantics — the classical encoding, on random graphs."""
    graph, caps = graph_and_caps(seed, slack_seed)
    looped = graph.copy(graph.name + "-looped")
    looped_caps = dict(caps)
    for name in graph.actor_names:
        looped.add_channel(name, name, 1, 1, 1, name=f"__loop_{name}")
        looped_caps[f"__loop_{name}"] = 2

    serialised = Executor(graph, caps).run()
    concurrent = ConcurrentExecutor(looped, looped_caps, serialised.observe).run()
    assert concurrent.throughput == serialised.throughput
    assert concurrent.deadlocked == serialised.deadlocked
