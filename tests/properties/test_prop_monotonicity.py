"""Property tests: throughput monotonicity (DESIGN.md invariant 4).

"An important observation is that throughput is monotonic in the
distribution size, i.e. with increasing distribution size, the
throughput will not decrease." (Sec. 9) — the paper's divide-and-
conquer is only correct because of this, so it is tested directly.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.buffers.bounds import lower_bound_distribution
from repro.buffers.distribution import StorageDistribution
from repro.engine.executor import Executor
from repro.gallery.random_graphs import random_consistent_graph

seeds = st.integers(min_value=0, max_value=10**9)


def base_distribution(graph, rng) -> StorageDistribution:
    lower = lower_bound_distribution(graph)
    return StorageDistribution(
        {name: lower[name] + rng.randint(0, 3) for name in graph.channel_names}
    )


@given(seeds, seeds)
@settings(max_examples=40, deadline=None)
def test_single_channel_increase_never_hurts(seed, pick_seed):
    rng = random.Random(seed)
    graph = random_consistent_graph(rng)
    pick = random.Random(pick_seed)
    distribution = base_distribution(graph, pick)
    channel = pick.choice(graph.channel_names)
    step = pick.randint(1, 3)

    before = Executor(graph, distribution).run().throughput
    after = Executor(graph, distribution.incremented(channel, step)).run().throughput
    assert after >= before


@given(seeds, seeds)
@settings(max_examples=30, deadline=None)
def test_pointwise_dominating_distribution_never_slower(seed, pick_seed):
    rng = random.Random(seed)
    graph = random_consistent_graph(rng)
    pick = random.Random(pick_seed)
    small = base_distribution(graph, pick)
    large = StorageDistribution(
        {name: small[name] + pick.randint(0, 3) for name in graph.channel_names}
    )
    assert Executor(graph, large).run().throughput >= Executor(graph, small).run().throughput


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_fig1_size_sweep_monotone(seed):
    """Max throughput per size is non-decreasing (fig1, random order)."""
    from repro.gallery import fig1_example

    del seed  # sweep is deterministic; hypothesis exercises the harness
    graph = fig1_example()
    best = 0
    for size in range(6, 17):
        from repro.buffers.bounds import upper_bound_distribution
        from repro.buffers.search import SizeSearch, ThroughputEvaluator

        search = SizeSearch(
            graph,
            "c",
            lower_bound_distribution(graph),
            upper_bound_distribution(graph),
            ThroughputEvaluator(graph, "c"),
        )
        value = search.max_throughput_for_size(size).throughput
        assert value >= best
        best = value
