"""Property tests: repetition vector invariants (DESIGN.md invariant 1)."""

import random
from math import gcd

from hypothesis import given, settings, strategies as st

from repro.analysis.repetitions import repetition_vector
from repro.gallery.random_graphs import random_consistent_graph

seeds = st.integers(min_value=0, max_value=10**9)


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_balance_equations_hold(seed):
    graph = random_consistent_graph(random.Random(seed))
    q = repetition_vector(graph)
    for channel in graph.channels.values():
        assert q[channel.source] * channel.production == q[channel.destination] * channel.consumption


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_vector_strictly_positive(seed):
    graph = random_consistent_graph(random.Random(seed))
    assert all(value >= 1 for value in repetition_vector(graph).values())


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_vector_minimal(seed):
    # The generator produces weakly connected graphs, so the whole
    # vector must have gcd 1.
    graph = random_consistent_graph(random.Random(seed))
    values = list(repetition_vector(graph).values())
    assert gcd(*values) == 1


@given(seeds, st.integers(min_value=2, max_value=5))
@settings(max_examples=40, deadline=None)
def test_scaling_rates_preserves_vector(seed, factor):
    """Multiplying both rates of a channel by a constant leaves the
    repetition vector unchanged."""
    from repro.graph.builder import GraphBuilder

    graph = random_consistent_graph(random.Random(seed))
    scaled = GraphBuilder(graph.name + "-scaled")
    for actor in graph.actors.values():
        scaled.actor(actor.name, actor.execution_time)
    for channel in graph.channels.values():
        scaled.channel(
            channel.source,
            channel.destination,
            channel.production * factor,
            channel.consumption * factor,
            channel.initial_tokens,
            name=channel.name,
        )
    assert repetition_vector(graph) == repetition_vector(scaled.build())
