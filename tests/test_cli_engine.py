"""CLI: the --engine flag selects the simulation kernel."""

import io

import pytest

from repro.cli import main


def run_cli(args):
    import contextlib

    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(args)
    return code, out.getvalue()


@pytest.mark.parametrize("engine", ["auto", "fast", "reference"])
def test_explore_output_identical_across_engines(engine):
    code, text = run_cli(
        ["gallery:example", "--observe", "c", "--strategy", "divide", "--engine", engine]
    )
    assert code == 0
    assert "size=6 throughput=1/7" in text
    assert "size=10 throughput=1/4" in text


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_evaluate_distribution_across_engines(engine):
    code, text = run_cli(
        ["gallery:example", "--capacities", "alpha=4,beta=2", "--engine", engine]
    )
    assert code == 0
    assert "throughput of 'c': 1/7" in text


def test_fast_engine_with_schedule_errors_cleanly(capsys):
    code = main(
        [
            "gallery:example",
            "--capacities",
            "alpha=4,beta=2",
            "--schedule",
            "8",
            "--engine",
            "fast",
        ]
    )
    assert code == 1
    assert "does not support record_schedule" in capsys.readouterr().err


def test_unknown_engine_rejected_by_argparse():
    with pytest.raises(SystemExit):
        main(["gallery:example", "--engine", "warp"])
