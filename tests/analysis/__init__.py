"""Test package."""
