"""Unit tests for repro.analysis.latency."""

import pytest

from repro.analysis.latency import LatencyReport, initial_latency, iteration_latency
from repro.exceptions import AnalysisError
from repro.graph.builder import GraphBuilder

CAPS = {"alpha": 4, "beta": 2}


class TestInitialLatency:
    def test_fig1(self, fig1):
        # Sec. 7: c completes its first firing 9 instants after start.
        assert initial_latency(fig1, CAPS, "c") == 9

    def test_shrinks_with_larger_buffers(self, fig1):
        assert initial_latency(fig1, {"alpha": 8, "beta": 4}, "c") <= 9

    def test_deadlock_raises(self, fig1):
        with pytest.raises(AnalysisError, match="never fires"):
            initial_latency(fig1, {"alpha": 3, "beta": 2}, "c")


class TestIterationLatency:
    def test_fig1_report(self, fig1):
        report = iteration_latency(fig1, CAPS, "a", "c")
        assert isinstance(report, LatencyReport)
        assert report.initial_latency == 9
        # One iteration needs at least b's 2 serialized firings plus c.
        assert report.iteration_latency >= 6
        assert report.iterations_measured >= 2

    def test_latency_at_least_critical_path(self, fig1):
        # source firing -> 3 a's worth of tokens -> 2 b firings -> c.
        report = iteration_latency(fig1, {"alpha": 100, "beta": 100}, "a", "c")
        critical_path = 1 + 2 + 2  # a, then one b, then c (pipelined bound)
        assert report.iteration_latency >= critical_path

    def test_stable_across_runs(self, fig1):
        first = iteration_latency(fig1, CAPS, "a", "c")
        second = iteration_latency(fig1, CAPS, "a", "c")
        assert first == second

    def test_unknown_actor_rejected(self, fig1):
        with pytest.raises(AnalysisError, match="unknown source or sink"):
            iteration_latency(fig1, CAPS, "zz", "c")

    def test_pipeline_latency_vs_period(self):
        graph = (
            GraphBuilder("pipe")
            .actors({"x": 3, "y": 4})
            .channel("x", "y", name="ch")
            .build()
        )
        report = iteration_latency(graph, {"ch": 2}, "x", "y")
        # Latency of one token through the two stages is >= 3 + 4.
        assert report.iteration_latency >= 7


class TestRunUntilFirings:
    def test_needs_schedule_recording(self, fig1):
        from repro.engine.executor import Executor
        from repro.exceptions import EngineError

        with pytest.raises(EngineError, match="record_schedule"):
            Executor(fig1, CAPS, "c").run_until_firings(3)

    def test_counts_firings(self, fig1):
        from repro.engine.executor import Executor

        schedule = Executor(fig1, CAPS, "c", record_schedule=True).run_until_firings(5)
        assert schedule.num_firings("c") >= 5

    def test_deadlock_raises(self, fig1):
        from repro.engine.executor import Executor
        from repro.exceptions import DeadlockError

        with pytest.raises(DeadlockError):
            Executor(fig1, {"alpha": 3, "beta": 2}, "c", record_schedule=True).run_until_firings(1)

    def test_invalid_count(self, fig1):
        from repro.engine.executor import Executor
        from repro.exceptions import EngineError

        with pytest.raises(EngineError, match="positive"):
            Executor(fig1, CAPS, "c", record_schedule=True).run_until_firings(0)
