"""Unit tests for repro.analysis.repetitions."""

import pytest

from repro.analysis.repetitions import iteration_token_delta, repetition_vector
from repro.exceptions import InconsistentGraphError
from repro.graph.builder import GraphBuilder


class TestRepetitionVector:
    def test_fig1(self, fig1):
        assert repetition_vector(fig1) == {"a": 3, "b": 2, "c": 1}

    def test_homogeneous_graph_all_ones(self):
        graph = GraphBuilder().actors({"a": 1, "b": 1, "c": 1}).chain("a", "b", "c").build()
        assert repetition_vector(graph) == {"a": 1, "b": 1, "c": 1}

    def test_samplerate(self, samplerate_graph):
        q = repetition_vector(samplerate_graph)
        assert q == {
            "cd": 147,
            "stage1": 147,
            "stage2": 98,
            "stage3": 28,
            "stage4": 32,
            "dat": 160,
        }

    def test_single_actor(self):
        graph = GraphBuilder().actor("a").build()
        assert repetition_vector(graph) == {"a": 1}

    def test_self_loop_does_not_change_vector(self):
        graph = GraphBuilder().actor("a").self_loop("a").build()
        assert repetition_vector(graph) == {"a": 1}

    def test_vector_is_minimal(self):
        # Rates with a common factor must still give the minimal vector.
        graph = GraphBuilder().actors({"a": 1, "b": 1}).channel("a", "b", 4, 6).build()
        assert repetition_vector(graph) == {"a": 3, "b": 2}

    def test_components_normalised_independently(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1, "x": 1, "y": 1})
            .channel("a", "b", 2, 1)
            .channel("x", "y", 1, 3)
            .build()
        )
        q = repetition_vector(graph)
        assert (q["a"], q["b"]) == (1, 2)
        assert (q["x"], q["y"]) == (3, 1)

    def test_inconsistent_two_channel_graph(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1})
            .channel("a", "b", 1, 1)
            .channel("a", "b", 2, 1)
            .build()
        )
        with pytest.raises(InconsistentGraphError):
            repetition_vector(graph)

    def test_inconsistent_cycle(self):
        graph = (
            GraphBuilder()
            .actors({"a": 1, "b": 1, "c": 1})
            .channel("a", "b", 2, 1)
            .channel("b", "c", 2, 1)
            .channel("c", "a", 2, 1, initial_tokens=4)
            .build()
        )
        with pytest.raises(InconsistentGraphError):
            repetition_vector(graph)


class TestIterationTokenDelta:
    def test_consistent_graph_has_zero_delta(self, fig1):
        assert iteration_token_delta(fig1) == {"alpha": 0, "beta": 0}

    def test_samplerate_zero_delta(self, samplerate_graph):
        assert all(delta == 0 for delta in iteration_token_delta(samplerate_graph).values())
