"""Unit tests for repro.analysis.consistency."""

import pytest

from repro.analysis.consistency import assert_consistent, is_consistent
from repro.exceptions import InconsistentGraphError
from repro.graph.builder import GraphBuilder


def test_fig1_consistent(fig1):
    assert is_consistent(fig1)
    assert assert_consistent(fig1) == {"a": 3, "b": 2, "c": 1}


def test_gallery_graphs_consistent(modem_graph, samplerate_graph, satellite_graph, h263_small):
    for graph in (modem_graph, samplerate_graph, satellite_graph, h263_small):
        assert is_consistent(graph)


def test_inconsistent_graph():
    graph = (
        GraphBuilder()
        .actors({"a": 1, "b": 1})
        .channel("a", "b", 1, 2)
        .channel("b", "a", 1, 1)
        .build()
    )
    assert not is_consistent(graph)
    with pytest.raises(InconsistentGraphError):
        assert_consistent(graph)
