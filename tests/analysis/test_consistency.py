"""Unit tests for repro.analysis.consistency."""

import pytest

from repro.analysis.consistency import assert_consistent, consistency_stats, is_consistent
from repro.exceptions import InconsistentGraphError
from repro.graph.builder import GraphBuilder


def test_fig1_consistent(fig1):
    assert is_consistent(fig1)
    assert assert_consistent(fig1) == {"a": 3, "b": 2, "c": 1}


def test_gallery_graphs_consistent(modem_graph, samplerate_graph, satellite_graph, h263_small):
    for graph in (modem_graph, samplerate_graph, satellite_graph, h263_small):
        assert is_consistent(graph)


def test_inconsistent_graph():
    graph = (
        GraphBuilder()
        .actors({"a": 1, "b": 1})
        .channel("a", "b", 1, 2)
        .channel("b", "a", 1, 1)
        .build()
    )
    assert not is_consistent(graph)
    with pytest.raises(InconsistentGraphError):
        assert_consistent(graph)


def test_verdict_memoised_per_graph(fig1):
    consistency_stats.reset()
    first = assert_consistent(fig1)
    assert assert_consistent(fig1) == first
    assert is_consistent(fig1)
    assert consistency_stats.computations == 1
    assert consistency_stats.hits == 2


def test_memoised_vector_is_a_private_copy(fig1):
    assert_consistent(fig1)["a"] = 999
    assert assert_consistent(fig1)["a"] == 3


def test_inconsistent_verdict_memoised():
    graph = (
        GraphBuilder()
        .actors({"a": 1, "b": 1})
        .channel("a", "b", 1, 2)
        .channel("b", "a", 1, 1)
        .build()
    )
    consistency_stats.reset()
    for _ in range(3):
        with pytest.raises(InconsistentGraphError):
            assert_consistent(graph)
    assert consistency_stats.computations == 1
    assert consistency_stats.hits == 2


def test_memo_invalidated_by_structural_growth(fig1):
    consistency_stats.reset()
    assert_consistent(fig1)
    fig1.add_actor("extra", 1)
    fig1.add_channel("c", "extra", 1, 1)
    fig1.add_channel("extra", "c", 1, 1, 1)
    assert_consistent(fig1)
    assert consistency_stats.computations == 2


def test_exploration_verifies_consistency_exactly_once(fig1):
    from repro.buffers.explorer import explore_design_space

    consistency_stats.reset()
    explore_design_space(fig1, "c")
    assert consistency_stats.computations == 1
    assert consistency_stats.hits >= 1
