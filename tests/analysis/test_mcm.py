"""Unit tests for repro.analysis.mcm (maximum cycle ratio)."""

from fractions import Fraction

import pytest

from repro.analysis.hsdf import HSDFGraph, to_hsdf
from repro.analysis.mcm import max_throughput_from_mcr, maximum_cycle_ratio
from repro.exceptions import AnalysisError
from repro.graph.builder import GraphBuilder


def hsdf_from(nodes, edges) -> HSDFGraph:
    graph = HSDFGraph("manual")
    graph.nodes.update(nodes)
    for src, dst, delay in edges:
        graph.add_edge(src, dst, delay)
    return graph


A, B, C = ("a", 0), ("b", 0), ("c", 0)


class TestMaximumCycleRatio:
    def test_single_self_loop(self):
        graph = hsdf_from({A: 3}, [(A, A, 1)])
        assert maximum_cycle_ratio(graph).ratio == 3

    def test_two_node_cycle(self):
        graph = hsdf_from({A: 2, B: 4}, [(A, B, 0), (B, A, 1)])
        assert maximum_cycle_ratio(graph).ratio == 6

    def test_cycle_with_more_delay_is_faster(self):
        graph = hsdf_from({A: 2, B: 4}, [(A, B, 1), (B, A, 1)])
        assert maximum_cycle_ratio(graph).ratio == 3

    def test_max_over_two_cycles(self):
        graph = hsdf_from(
            {A: 1, B: 1, C: 10},
            [(A, B, 0), (B, A, 1), (C, C, 2)],
        )
        result = maximum_cycle_ratio(graph)
        assert result.ratio == 5
        assert result.critical_scc == frozenset({C})

    def test_fractional_ratio(self):
        graph = hsdf_from({A: 1, B: 2}, [(A, B, 1), (B, A, 2)])
        assert maximum_cycle_ratio(graph).ratio == Fraction(1)
        graph = hsdf_from({A: 1, B: 1}, [(A, B, 1), (B, A, 2)])
        assert maximum_cycle_ratio(graph).ratio == Fraction(2, 3)

    def test_zero_delay_cycle_raises(self):
        graph = hsdf_from({A: 1, B: 1}, [(A, B, 0), (B, A, 0)])
        with pytest.raises(AnalysisError, match="deadlock"):
            maximum_cycle_ratio(graph)

    def test_acyclic_graph_raises(self):
        graph = hsdf_from({A: 1, B: 1}, [(A, B, 0)])
        with pytest.raises(AnalysisError, match="no cycle"):
            maximum_cycle_ratio(graph)

    def test_unknown_node_raises(self):
        graph = hsdf_from({A: 1}, [(A, A, 1)])
        with pytest.raises(AnalysisError, match="not in the HSDF"):
            maximum_cycle_ratio(graph, reaching=B)


class TestReachingRestriction:
    def test_upstream_slow_cycle_constrains_downstream(self):
        graph = hsdf_from(
            {A: 10, B: 1},
            [(A, A, 1), (A, B, 0), (B, B, 1)],
        )
        assert maximum_cycle_ratio(graph, reaching=B).ratio == 10

    def test_downstream_cycle_does_not_constrain_upstream(self):
        graph = hsdf_from(
            {A: 1, B: 10},
            [(A, A, 1), (A, B, 0), (B, B, 1)],
        )
        assert maximum_cycle_ratio(graph, reaching=A).ratio == 1
        assert maximum_cycle_ratio(graph, reaching=B).ratio == 10


class TestMaxThroughputFromMcr:
    def test_fig1(self, fig1):
        hsdf = to_hsdf(fig1)
        assert max_throughput_from_mcr(hsdf, ("c", 0)) == Fraction(1, 4)

    def test_zero_ratio_raises(self):
        graph = hsdf_from({A: 0}, [(A, A, 1)])
        with pytest.raises(AnalysisError, match="unbounded"):
            max_throughput_from_mcr(graph, A)

    def test_pipeline_bottleneck(self):
        graph = (
            GraphBuilder()
            .actors({"a": 5, "b": 3})
            .channel("a", "b")
            .build()
        )
        hsdf = to_hsdf(graph)
        assert max_throughput_from_mcr(hsdf, ("b", 0)) == Fraction(1, 5)
        assert max_throughput_from_mcr(hsdf, ("a", 0)) == Fraction(1, 5)
