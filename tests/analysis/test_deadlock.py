"""Unit tests for repro.analysis.deadlock."""

import pytest

from repro.analysis.deadlock import is_deadlock_free, remaining_firings_at_deadlock
from repro.exceptions import InconsistentGraphError
from repro.graph.builder import GraphBuilder


def test_fig1_deadlock_free(fig1):
    assert is_deadlock_free(fig1)


def test_gallery_deadlock_free(modem_graph, samplerate_graph, satellite_graph, h263_small):
    for graph in (modem_graph, samplerate_graph, satellite_graph, h263_small):
        assert is_deadlock_free(graph)


def test_token_free_cycle_deadlocks():
    graph = (
        GraphBuilder()
        .actors({"a": 1, "b": 1})
        .channel("a", "b")
        .channel("b", "a")
        .build()
    )
    assert not is_deadlock_free(graph)
    assert remaining_firings_at_deadlock(graph) == {"a": 1, "b": 1}


def test_undertokened_cycle_deadlocks():
    # The cycle needs 2 tokens for b to ever fire, but carries only 1.
    graph = (
        GraphBuilder()
        .actors({"a": 1, "b": 1})
        .channel("a", "b", 1, 2)
        .channel("b", "a", 2, 1, initial_tokens=1)
        .build()
    )
    assert not is_deadlock_free(graph)


def test_sufficient_tokens_unlock_cycle():
    graph = (
        GraphBuilder()
        .actors({"a": 1, "b": 1})
        .channel("a", "b", 1, 2)
        .channel("b", "a", 2, 1, initial_tokens=2)
        .build()
    )
    assert is_deadlock_free(graph)


def test_partial_progress_reported():
    # a can fire, the b<->c cycle cannot.
    graph = (
        GraphBuilder()
        .actors({"a": 1, "b": 1, "c": 1})
        .channel("a", "b")
        .channel("b", "c")
        .channel("c", "b")
        .build()
    )
    stuck = remaining_firings_at_deadlock(graph)
    assert "a" not in stuck
    assert stuck.keys() == {"b", "c"}


def test_inconsistent_graph_rejected():
    graph = (
        GraphBuilder()
        .actors({"a": 1, "b": 1})
        .channel("a", "b", 1, 2)
        .channel("b", "a", 1, 1)
        .build()
    )
    with pytest.raises(InconsistentGraphError):
        is_deadlock_free(graph)
