"""Unit and property tests for all_actor_throughputs."""

import random

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.analysis.throughput import all_actor_throughputs, throughput
from repro.buffers.bounds import lower_bound_distribution
from repro.gallery.random_graphs import random_consistent_graph
from repro.graph.builder import GraphBuilder

seeds = st.integers(min_value=0, max_value=10**9)


def test_fig1_all_actors(fig1):
    caps = {"alpha": 4, "beta": 2}
    values = all_actor_throughputs(fig1, caps)
    assert values == {
        "a": Fraction(3, 7),
        "b": Fraction(2, 7),
        "c": Fraction(1, 7),
    }


def test_matches_direct_measurement(fig1):
    caps = {"alpha": 6, "beta": 2}
    values = all_actor_throughputs(fig1, caps)
    for actor in fig1.actor_names:
        assert values[actor] == throughput(fig1, caps, actor)


def test_deadlock_gives_zero_everywhere(fig1):
    values = all_actor_throughputs(fig1, {"alpha": 3, "beta": 2})
    assert set(values.values()) == {Fraction(0)}


def test_components_measured_independently():
    graph = (
        GraphBuilder()
        .actors({"a": 1, "b": 1, "x": 2, "y": 2})
        .channel("a", "b", name="c0")
        .channel("x", "y", name="c1")
        .build()
    )
    values = all_actor_throughputs(graph, {"c0": 1, "c1": 1})
    assert values["a"] == values["b"] == Fraction(1, 2)
    assert values["x"] == values["y"] == Fraction(1, 4)


@given(seeds, seeds)
@settings(max_examples=20, deadline=None)
def test_scaling_matches_direct_measurement_on_random_graphs(seed, slack_seed):
    graph = random_consistent_graph(random.Random(seed), max_actors=4)
    slack = random.Random(slack_seed)
    lower = lower_bound_distribution(graph)
    caps = {name: lower[name] + slack.randint(0, 3) for name in graph.channel_names}
    values = all_actor_throughputs(graph, caps)
    for actor in graph.actor_names:
        assert values[actor] == throughput(graph, caps, actor)
